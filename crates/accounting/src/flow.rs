//! Flow identity: the classic 5-tuple, and honest fragment attribution.
//!
//! Clark §10: "a new building block ... the flow ... it would be
//! necessary for the gateways to have flow state ... but the state
//! information would not be critical ... 'soft state' ... could be lost
//! in a crash and reconstructed from the datagrams themselves."
//!
//! The seed implementation attributed every nonzero-offset fragment to
//! the portless bucket of its protocol — the "honest 1988 answer", but
//! a *silent* approximation. This module makes it measurable: datagrams
//! classify into direct, first-fragment, and follow-on-fragment cases,
//! and a small [`FragKey`]-indexed port cache (mirroring what reassembly
//! would know) lets a table attribute follow-on fragments to the flow
//! their first fragment named, counting the ones it still cannot.

use catenet_sim::Instant;
use catenet_wire::{IpProtocol, Ipv4Address, Ipv4Packet, TcpPacket, UdpPacket};

/// The flow key: the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Source address.
    pub src_addr: Ipv4Address,
    /// Destination address.
    pub dst_addr: Ipv4Address,
    /// Transport protocol.
    pub protocol: u8,
    /// Source port (0 for portless protocols).
    pub src_port: u16,
    /// Destination port (0 for portless protocols).
    pub dst_port: u16,
}

/// The reassembly key a follow-on fragment shares with its first
/// fragment: (src, dst, protocol, IP ident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Transport protocol.
    pub protocol: u8,
    /// IP identification field.
    pub ident: u16,
}

/// How a datagram's flow identity was (or was not) determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classified {
    /// Unfragmented (or atomic) datagram with the transport header in
    /// hand: ports read directly.
    Direct(FlowId),
    /// First fragment (offset 0, more-fragments set): ports present,
    /// and the [`FragKey`] names the reassembly group so follow-on
    /// fragments can inherit them.
    FirstFragment(FlowId, FragKey),
    /// Follow-on fragment (offset ≠ 0): no transport header. The
    /// [`FlowId`] is the portless fallback; the [`FragKey`] lets a
    /// port cache upgrade it to the first fragment's flow.
    FollowOn(FlowId, FragKey),
    /// Not parseable as IPv4 at all.
    Unparseable,
}

impl FlowId {
    /// Extract the flow key from an IPv4 datagram, if parseable.
    /// Fragments with nonzero offset have no transport header; they are
    /// attributed to the portless flow of their protocol (the honest
    /// 1988 answer — datagram accounting is approximate, see E7). Use
    /// [`FlowId::classify`] with a port cache for reassembly-aware
    /// attribution that *measures* this approximation instead.
    pub fn of_datagram(datagram: &[u8]) -> Option<FlowId> {
        match FlowId::classify(datagram) {
            Classified::Direct(id)
            | Classified::FirstFragment(id, _)
            | Classified::FollowOn(id, _) => Some(id),
            Classified::Unparseable => None,
        }
    }

    /// Classify a datagram's flow identity, distinguishing the fragment
    /// cases [`of_datagram`](FlowId::of_datagram) collapses.
    pub fn classify(datagram: &[u8]) -> Classified {
        let Ok(packet) = Ipv4Packet::new_checked(datagram) else {
            return Classified::Unparseable;
        };
        let base = |src_port, dst_port| FlowId {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol().into(),
            src_port,
            dst_port,
        };
        let frag_key = || FragKey {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol().into(),
            ident: packet.ident(),
        };
        if packet.frag_offset() != 0 {
            return Classified::FollowOn(base(0, 0), frag_key());
        }
        // First fragments carry a transport header but fail checked
        // parsing (their length fields describe the whole segment, not
        // the fragment), so fall back to the raw port bytes — TCP and
        // UDP both put src/dst ports in the first four octets.
        let raw_ports = |payload: &[u8]| match payload {
            [s1, s2, d1, d2, ..] => (
                u16::from_be_bytes([*s1, *s2]),
                u16::from_be_bytes([*d1, *d2]),
            ),
            _ => (0, 0),
        };
        let fragmented = packet.flags().more_frags;
        let (src_port, dst_port) = match packet.protocol() {
            IpProtocol::Tcp => match TcpPacket::new_checked(packet.payload()) {
                Ok(tcp) => (tcp.src_port(), tcp.dst_port()),
                Err(_) if fragmented => raw_ports(packet.payload()),
                Err(_) => (0, 0),
            },
            IpProtocol::Udp => match UdpPacket::new_checked(packet.payload()) {
                Ok(udp) => (udp.src_port(), udp.dst_port()),
                Err(_) if fragmented => raw_ports(packet.payload()),
                Err(_) => (0, 0),
            },
            _ => (0, 0),
        };
        if packet.flags().more_frags {
            Classified::FirstFragment(base(src_port, dst_port), frag_key())
        } else {
            Classified::Direct(base(src_port, dst_port))
        }
    }
}

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_addr, self.src_port, self.dst_addr, self.dst_port, self.protocol
        )
    }
}

/// Per-flow soft state.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Packets observed.
    pub packets: u64,
    /// Bytes observed (IP datagram bytes).
    pub bytes: u64,
    /// When the flow was first seen (since the last table loss).
    pub first_seen: Instant,
    /// When the flow was last seen.
    pub last_seen: Instant,
    /// EWMA rate estimate in bytes/second.
    pub rate_bps: f64,
}

impl FlowState {
    /// Whether the rate estimate has converged to within `tolerance`
    /// (fractional) of `true_rate`.
    pub fn rate_within(&self, true_rate: f64, tolerance: f64) -> bool {
        if true_rate == 0.0 {
            return self.rate_bps.abs() < 1.0;
        }
        ((self.rate_bps - true_rate) / true_rate).abs() <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos, UdpRepr};

    fn udp_datagram(src_port: u16, dst_port: u16, len: usize) -> Vec<u8> {
        let udp_repr = UdpRepr {
            src_port,
            dst_port,
            payload_len: len,
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 9, 0, 1);
        {
            let mut udp = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp);
            udp.fill_checksum(src, dst);
        }
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            1,
            false,
            &udp_buf,
        )
    }

    #[test]
    fn flow_id_extraction() {
        let dgram = udp_datagram(5000, 6000, 100);
        let id = FlowId::of_datagram(&dgram).unwrap();
        assert_eq!(id.src_port, 5000);
        assert_eq!(id.dst_port, 6000);
        assert_eq!(id.protocol, 17);
        assert_eq!(id.src_addr, Ipv4Address::new(10, 0, 0, 1));
        assert!(matches!(FlowId::classify(&dgram), Classified::Direct(_)));
    }

    #[test]
    fn garbage_is_unparseable() {
        assert_eq!(FlowId::classify(&[0u8; 10]), Classified::Unparseable);
        assert!(FlowId::of_datagram(&[0u8; 10]).is_none());
    }
}
