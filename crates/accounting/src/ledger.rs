//! The billing ledger — the paper's *least* served goal (§9), made
//! reconcilable.
//!
//! A gateway counting datagrams cannot distinguish new data from
//! end-to-end retransmissions, so its ledger systematically *overstates*
//! the traffic a customer usefully received (E7 quantifies that gap as a
//! function of loss rate). Two additions over the seed ledger make the
//! overstatement *bounded and auditable* rather than merely noted:
//!
//! - **Payload accounting.** Besides raw IP bytes, each account carries
//!   the transport-payload byte count — the quantity that can actually
//!   be reconciled against endpoint counters. For any conversation,
//!   `goodput ≤ carried payload ≤ sender payload incl. retransmissions`
//!   holds datagram by datagram, because every carried payload byte is
//!   a byte some sender transmitted, and every byte the receiver acked
//!   was carried at least once.
//! - **Epoch stamping.** A crash wipes the ledger (fate-sharing applies
//!   to the bill too). `clear()` opens a new epoch, and every flushed
//!   [`GatewayReport`] is stamped `(epoch, seq)`, so records from before
//!   and after a reboot never alias and a collector can see exactly
//!   where the crash boundary fell.

use crate::report::GatewayReport;
use catenet_wire::{IpProtocol, Ipv4Address, Ipv4Packet, TcpPacket, UDP_HEADER_LEN};
use std::collections::HashMap;

/// The accounting key: who talked to whom with which protocol.
/// (Coarser than a flow — this is the billing view.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountKey {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// IP protocol number.
    pub protocol: u8,
}

/// Counters for one account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Account {
    /// Datagrams carried.
    pub packets: u64,
    /// IP bytes carried (headers included — the gateway can't know
    /// better; that is part of the accounting problem).
    pub bytes: u64,
    /// Transport-payload bytes carried — the reconcilable quantity.
    /// For fragments past the first this is the whole IP payload (the
    /// transport header went with the first fragment); for unknown
    /// protocols it is the IP payload too. An approximation, but one
    /// that errs the same way on every gateway, so reports still agree.
    pub payload_bytes: u64,
}

impl Account {
    /// Merge another account's counters into this one.
    pub fn absorb(&mut self, other: &Account) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.payload_bytes += other.payload_bytes;
    }
}

/// Transport-payload bytes in one IPv4 datagram, best effort.
fn payload_bytes_of(packet: &Ipv4Packet<&[u8]>) -> u64 {
    let ip_payload = packet.payload();
    if packet.frag_offset() != 0 {
        // Follow-on fragment: all payload, no transport header here.
        return ip_payload.len() as u64;
    }
    let len = match packet.protocol() {
        IpProtocol::Tcp => match TcpPacket::new_checked(ip_payload) {
            Ok(tcp) => tcp.payload().len(),
            Err(_) => ip_payload.len(),
        },
        IpProtocol::Udp => ip_payload.len().saturating_sub(UDP_HEADER_LEN),
        _ => ip_payload.len(),
    };
    len as u64
}

/// A gateway's (or host's) traffic ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    accounts: HashMap<AccountKey, Account>,
    /// Datagrams that could not be attributed (unparseable).
    pub unattributed: u64,
    /// Crash epoch: bumped by every [`Ledger::clear`]. Reports flushed
    /// in different epochs never alias.
    pub epoch: u64,
    /// Sequence number of the next flushed report within this ledger's
    /// lifetime (monotone across epochs — a reboot must not reuse one).
    next_seq: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Record one carried datagram.
    pub fn record(&mut self, datagram: &[u8]) {
        match Ipv4Packet::new_checked(datagram) {
            Ok(packet) => {
                let key = AccountKey {
                    src: packet.src_addr(),
                    dst: packet.dst_addr(),
                    protocol: packet.protocol().into(),
                };
                let payload = payload_bytes_of(&packet);
                let account = self.accounts.entry(key).or_default();
                account.packets += 1;
                account.bytes += datagram.len() as u64;
                account.payload_bytes += payload;
            }
            Err(_) => self.unattributed += 1,
        }
    }

    /// The account for a given key.
    pub fn account(&self, key: &AccountKey) -> Account {
        self.accounts.get(key).copied().unwrap_or_default()
    }

    /// Total bytes between two hosts for a protocol, both directions.
    pub fn conversation_bytes(&self, a: Ipv4Address, b: Ipv4Address, protocol: IpProtocol) -> u64 {
        let protocol = u8::from(protocol);
        self.account(&AccountKey {
            src: a,
            dst: b,
            protocol,
        })
        .bytes
            + self
                .account(&AccountKey {
                    src: b,
                    dst: a,
                    protocol,
                })
                .bytes
    }

    /// Total transport-payload bytes between two hosts for a protocol,
    /// both directions — the quantity endpoint counters can check.
    pub fn conversation_payload_bytes(
        &self,
        a: Ipv4Address,
        b: Ipv4Address,
        protocol: IpProtocol,
    ) -> u64 {
        let protocol = u8::from(protocol);
        self.account(&AccountKey {
            src: a,
            dst: b,
            protocol,
        })
        .payload_bytes
            + self
                .account(&AccountKey {
                    src: b,
                    dst: a,
                    protocol,
                })
                .payload_bytes
    }

    /// All accounts in deterministic order.
    pub fn iter_sorted(&self) -> Vec<(AccountKey, Account)> {
        let mut entries: Vec<_> = self.accounts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }

    /// Total packets across all accounts.
    pub fn total_packets(&self) -> u64 {
        self.accounts.values().map(|a| a.packets).sum()
    }

    /// Total bytes across all accounts.
    pub fn total_bytes(&self) -> u64 {
        self.accounts.values().map(|a| a.bytes).sum()
    }

    /// Whether there is anything to flush.
    pub fn has_tail(&self) -> bool {
        !self.accounts.is_empty() || self.unattributed != 0
    }

    /// Flush everything recorded since the last flush into a report for
    /// the collector, or `None` if there is nothing to say. The ledger
    /// empties but keeps its epoch: flushing is bookkeeping, not a crash.
    pub fn flush(&mut self, gateway: &str) -> Option<GatewayReport> {
        if !self.has_tail() {
            return None;
        }
        let report = GatewayReport {
            gateway: gateway.to_string(),
            epoch: self.epoch,
            seq: self.next_seq,
            accounts: self.iter_sorted(),
            unattributed: self.unattributed,
        };
        self.next_seq += 1;
        self.accounts.clear();
        self.unattributed = 0;
        Some(report)
    }

    /// The report [`Ledger::flush`] *would* produce right now, without
    /// draining anything — the live tail, for reconciling mid-period.
    pub fn peek_tail(&self, gateway: &str) -> Option<GatewayReport> {
        if !self.has_tail() {
            return None;
        }
        Some(GatewayReport {
            gateway: gateway.to_string(),
            epoch: self.epoch,
            seq: self.next_seq,
            accounts: self.iter_sorted(),
            unattributed: self.unattributed,
        })
    }

    /// Reset (gateway reboot loses the ledger too — accounting shares
    /// the fate-sharing weakness the paper notes). Opens a new epoch;
    /// whatever was recorded but not flushed is gone from *this* ledger,
    /// which is exactly why the collector tracks forfeited tails.
    pub fn clear(&mut self) {
        self.accounts.clear();
        self.unattributed = 0;
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos};

    fn dgram(src: Ipv4Address, dst: Ipv4Address, len: usize) -> Vec<u8> {
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: len,
                hop_limit: 64,
                tos: Tos::default(),
            },
            0,
            false,
            &vec![0u8; len],
        )
    }

    const A: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const B: Ipv4Address = Ipv4Address::new(10, 9, 0, 1);

    #[test]
    fn records_per_key() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(B, A, 50));
        let ab = ledger.account(&AccountKey {
            src: A,
            dst: B,
            protocol: 17,
        });
        assert_eq!(ab.packets, 2);
        assert_eq!(ab.bytes, 240); // 2 × (100 + 20-byte header)
        assert_eq!(ledger.conversation_bytes(A, B, IpProtocol::Udp), 240 + 70);
        assert_eq!(ledger.total_packets(), 3);
        assert_eq!(ledger.total_bytes(), 310);
    }

    #[test]
    fn payload_bytes_strip_headers() {
        let mut ledger = Ledger::new();
        // The 100-byte argument to dgram is the whole UDP segment
        // (header + payload), so the payload is 100 − 8.
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(B, A, 50));
        let ab = ledger.account(&AccountKey {
            src: A,
            dst: B,
            protocol: 17,
        });
        assert_eq!(ab.payload_bytes, 92);
        assert_eq!(
            ledger.conversation_payload_bytes(A, B, IpProtocol::Udp),
            92 + 42
        );
    }

    #[test]
    fn unattributed_counted() {
        let mut ledger = Ledger::new();
        ledger.record(&[0xFF; 8]);
        assert_eq!(ledger.unattributed, 1);
        assert_eq!(ledger.total_packets(), 0);
    }

    #[test]
    fn sorted_iteration_deterministic() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(B, A, 10));
        ledger.record(&dgram(A, B, 10));
        let keys: Vec<_> = ledger.iter_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys[0].src, A);
        assert_eq!(keys[1].src, B);
    }

    #[test]
    fn clear_resets_and_opens_new_epoch() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 10));
        assert_eq!(ledger.epoch, 0);
        ledger.clear();
        assert_eq!(ledger.total_packets(), 0);
        assert_eq!(ledger.iter_sorted().len(), 0);
        assert_eq!(ledger.epoch, 1);
    }

    #[test]
    fn flush_drains_and_stamps() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 10));
        let first = ledger.flush("g1").expect("tail to flush");
        assert_eq!(first.gateway, "g1");
        assert_eq!((first.epoch, first.seq), (0, 0));
        assert_eq!(first.accounts.len(), 1);
        assert!(!ledger.has_tail());
        assert!(ledger.flush("g1").is_none(), "nothing left");
        // Next period, after a crash: new epoch, seq keeps climbing.
        ledger.record(&dgram(A, B, 10));
        ledger.clear();
        ledger.record(&dgram(B, A, 10));
        let second = ledger.flush("g1").expect("post-crash tail");
        assert_eq!((second.epoch, second.seq), (1, 1));
    }

    #[test]
    fn peek_matches_flush_without_draining() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 10));
        let peeked = ledger.peek_tail("g1").unwrap();
        let flushed = ledger.flush("g1").unwrap();
        assert_eq!(peeked, flushed);
        assert!(ledger.peek_tail("g1").is_none());
    }
}
