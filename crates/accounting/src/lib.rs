//! # catenet-accounting
//!
//! Goal 7 made concrete — the accountability subsystem Clark's paper
//! admits the architecture serves worst ("the Internet architecture
//! contains few tools for accounting for packet flows ... research is
//! needed", §9) built along the lines its closing section proposes:
//!
//! - **[`FlowTable`]** — the paper's §10 "flow" building block: soft
//!   per-flow gateway state keyed by the 5-tuple, *sharded* (power-of-two
//!   shards under a deterministic hash) with bounded per-shard capacity,
//!   exact-LRU eviction and idle evaporation, sized for ~10⁵ concurrent
//!   flows. Everything in it is reconstructible from the datagrams
//!   themselves, so a crash costs a re-learning transient and nothing
//!   more (experiments E8 and E16 measure the transient).
//! - **[`Ledger`]** — the billing view (who talked to whom, with which
//!   protocol), now *epoch-stamped*: every crash opens a new epoch, so
//!   records from before and after a reboot never alias.
//! - **[`GatewayReport`] / [`ReportCollector`] / [`Reconciliation`]** —
//!   periodic usage reports flushed out of the volatile ledger into an
//!   administrative collector, merged into a network-wide reconciliation
//!   that attributes every carried byte to an (origin, flow) pair or an
//!   explicit unattributed/forfeited bucket. The conservation identity
//!   (reports + live tail + crash-forfeited tail = everything ever
//!   recorded) is what lets crash-storm runs still reconcile against
//!   endpoint counts — E16 prices it.
//!
//! The crate is deliberately free of simulator or stack dependencies
//! beyond wire formats and virtual time: a gateway, a host, or an
//! offline report processor can all use it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flow;
pub mod ledger;
pub mod report;
pub mod table;

pub use flow::{Classified, FlowId, FlowState, FragKey};
pub use ledger::{Account, AccountKey, Ledger};
pub use report::{GatewayReport, Reconciliation, ReportCollector};
pub use table::{FlowTable, ShardStats};
