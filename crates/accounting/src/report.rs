//! Usage reports across administrative boundaries.
//!
//! Clark §9 wants accountability between *administrations*, not inside
//! one box. The pieces here model that boundary: each gateway
//! periodically [`flush`](crate::Ledger::flush)es its volatile ledger
//! into a [`GatewayReport`] and hands it to a [`ReportCollector`] that
//! belongs to the administration, not the gateway — so a gateway crash
//! loses at most one unflushed period, never the reports already
//! delivered.
//!
//! The collector distinguishes three fates for a recorded byte:
//!
//! 1. **Attributed** — flushed in a normal periodic report.
//! 2. **Forfeited** — recorded, but the gateway crashed before the next
//!    flush. The simulator captures the dying ledger's tail at the
//!    crash instant (an omniscient-oracle convenience a real network
//!    buys with battery-backed counters or a neighbor's estimate).
//! 3. **Unattributed** — carried but unparseable; counted, not keyed.
//!
//! [`Reconciliation`] merges all three into a network-wide view with a
//! conservation identity: for every gateway,
//! `attributed + forfeited (+ live tail, if supplied) = everything that
//! gateway ever recorded`, epoch by epoch, with no byte in two buckets.

use crate::ledger::{Account, AccountKey};
use catenet_wire::{IpProtocol, Ipv4Address};
use std::collections::{BTreeMap, BTreeSet};

/// One flushed (or forfeited) accounting period from one gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayReport {
    /// Reporting gateway's name — the administrative identity.
    pub gateway: String,
    /// Crash epoch the period was recorded in.
    pub epoch: u64,
    /// Per-gateway report sequence number (monotone across epochs).
    pub seq: u64,
    /// Accounts recorded this period, in deterministic sorted order.
    pub accounts: Vec<(AccountKey, Account)>,
    /// Datagrams carried but unparseable this period.
    pub unattributed: u64,
}

impl GatewayReport {
    /// Total transport-payload bytes in this report.
    pub fn payload_bytes(&self) -> u64 {
        self.accounts.iter().map(|(_, a)| a.payload_bytes).sum()
    }

    /// Total datagrams in this report.
    pub fn packets(&self) -> u64 {
        self.accounts.iter().map(|(_, a)| a.packets).sum()
    }
}

/// The administration's mailbox for gateway reports.
#[derive(Debug, Default)]
pub struct ReportCollector {
    flushed: Vec<GatewayReport>,
    forfeited: Vec<GatewayReport>,
}

impl ReportCollector {
    /// An empty collector.
    pub fn new() -> ReportCollector {
        ReportCollector::default()
    }

    /// Accept a periodic report flushed by a live gateway.
    pub fn absorb(&mut self, report: GatewayReport) {
        self.flushed.push(report);
    }

    /// Capture the tail a crashing gateway was about to lose.
    pub fn forfeit(&mut self, report: GatewayReport) {
        self.forfeited.push(report);
    }

    /// Number of periodic reports received.
    pub fn flushed_count(&self) -> usize {
        self.flushed.len()
    }

    /// Number of crash-forfeited tails captured.
    pub fn forfeited_count(&self) -> usize {
        self.forfeited.len()
    }

    /// Sequence numbers missing from a gateway's flushed report stream
    /// (gaps mean a report was lost in transit — distinct from a crash,
    /// which forfeits a period *before* it gets a number... except the
    /// captured tail keeps its seq, so crashes leave no gap either).
    pub fn missing_seqs(&self, gateway: &str) -> Vec<u64> {
        let mut seen: Vec<u64> = self
            .flushed
            .iter()
            .chain(&self.forfeited)
            .filter(|r| r.gateway == gateway)
            .map(|r| r.seq)
            .collect();
        seen.sort_unstable();
        match seen.last() {
            None => Vec::new(),
            Some(&last) => (0..=last).filter(|seq| !seen.contains(seq)).collect(),
        }
    }

    /// Merge everything collected (plus any live, unflushed tails the
    /// caller peeked from still-running gateways) into one network-wide
    /// reconciliation.
    pub fn reconcile<I>(&self, live_tails: I) -> Reconciliation
    where
        I: IntoIterator<Item = GatewayReport>,
    {
        let mut rec = Reconciliation::default();
        for report in &self.flushed {
            rec.merge(report, Bucket::Attributed);
        }
        for report in &self.forfeited {
            rec.merge(report, Bucket::Forfeited);
        }
        for report in live_tails {
            rec.merge(&report, Bucket::Attributed);
        }
        rec
    }
}

enum Bucket {
    Attributed,
    Forfeited,
}

/// Per-gateway merged totals inside a [`Reconciliation`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GatewayTotals {
    /// Accounts from periodic reports and live tails.
    pub attributed: BTreeMap<AccountKey, Account>,
    /// Accounts from crash-forfeited tails.
    pub forfeited: BTreeMap<AccountKey, Account>,
    /// Unparseable-datagram count across all buckets.
    pub unattributed: u64,
    /// Highest epoch seen — how many times this gateway crashed, plus
    /// error if reports are missing.
    pub max_epoch: u64,
    /// Number of report periods merged.
    pub periods: u64,
}

impl GatewayTotals {
    /// The carried account for a key, attributed and forfeited combined
    /// — "every carried byte lands somewhere".
    pub fn carried(&self, key: &AccountKey) -> Account {
        let mut total = self.attributed.get(key).copied().unwrap_or_default();
        if let Some(f) = self.forfeited.get(key) {
            total.absorb(f);
        }
        total
    }

    /// Transport-payload bytes carried between two hosts for a protocol,
    /// both directions, attributed and forfeited combined.
    pub fn conversation_payload(
        &self,
        a: Ipv4Address,
        b: Ipv4Address,
        protocol: IpProtocol,
    ) -> u64 {
        let protocol = u8::from(protocol);
        let one = |src, dst| {
            self.carried(&AccountKey {
                src,
                dst,
                protocol,
            })
            .payload_bytes
        };
        one(a, b) + one(b, a)
    }

    /// Total payload bytes this gateway carried (all keys, both buckets).
    pub fn total_payload_bytes(&self) -> u64 {
        self.attributed
            .values()
            .chain(self.forfeited.values())
            .map(|a| a.payload_bytes)
            .sum()
    }

    /// Total datagrams this gateway carried (all keys, both buckets).
    pub fn total_packets(&self) -> u64 {
        self.attributed
            .values()
            .chain(self.forfeited.values())
            .map(|a| a.packets)
            .sum()
    }
}

/// The network-wide merge of every report: who carried what for whom.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Reconciliation {
    /// Per-gateway totals, in deterministic (name) order.
    pub gateways: BTreeMap<String, GatewayTotals>,
}

impl Reconciliation {
    fn merge(&mut self, report: &GatewayReport, bucket: Bucket) {
        let totals = self.gateways.entry(report.gateway.clone()).or_default();
        let side = match bucket {
            Bucket::Attributed => &mut totals.attributed,
            Bucket::Forfeited => &mut totals.forfeited,
        };
        for (key, account) in &report.accounts {
            side.entry(*key).or_default().absorb(account);
        }
        totals.unattributed += report.unattributed;
        totals.max_epoch = totals.max_epoch.max(report.epoch);
        totals.periods += 1;
    }

    /// Totals for one gateway, if it ever reported.
    pub fn gateway(&self, name: &str) -> Option<&GatewayTotals> {
        self.gateways.get(name)
    }

    /// Every origin (source address) that appears in any account — the
    /// parties a bill could be sent to.
    pub fn origins(&self) -> BTreeSet<Ipv4Address> {
        self.gateways
            .values()
            .flat_map(|g| {
                g.attributed
                    .keys()
                    .chain(g.forfeited.keys())
                    .map(|k| k.src)
            })
            .collect()
    }

    /// Unattributed datagrams summed across all gateways.
    pub fn total_unattributed(&self) -> u64 {
        self.gateways.values().map(|g| g.unattributed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos};

    const A: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const B: Ipv4Address = Ipv4Address::new(10, 9, 0, 1);

    fn dgram(src: Ipv4Address, dst: Ipv4Address, len: usize) -> Vec<u8> {
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: len,
                hop_limit: 64,
                tos: Tos::default(),
            },
            0,
            false,
            &vec![0u8; len],
        )
    }

    #[test]
    fn conservation_across_flush_crash_and_tail() {
        let mut ledger = Ledger::new();
        let mut collector = ReportCollector::new();
        let total = |n: u64| n; // readability

        // Period 1: flushed normally.
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(A, B, 100));
        collector.absorb(ledger.flush("g1").unwrap());

        // Period 2: recorded, then the gateway crashes. The oracle
        // captures the tail before clear() wipes it.
        ledger.record(&dgram(A, B, 100));
        collector.forfeit(ledger.peek_tail("g1").unwrap());
        ledger.clear();

        // Period 3 (new epoch): still unflushed at reconcile time.
        ledger.record(&dgram(B, A, 50));
        let live = ledger.peek_tail("g1");

        let rec = collector.reconcile(live);
        let g1 = rec.gateway("g1").expect("g1 reported");
        // Conservation: 4 datagrams recorded, 4 datagrams land.
        assert_eq!(g1.total_packets(), total(4));
        // Payload: 3 × 92 A→B + 1 × 42 B→A, split across buckets.
        assert_eq!(g1.total_payload_bytes(), 3 * 92 + 42);
        assert_eq!(
            g1.conversation_payload(A, B, IpProtocol::Udp),
            3 * 92 + 42
        );
        let forfeited: u64 = g1.forfeited.values().map(|a| a.payload_bytes).sum();
        assert_eq!(forfeited, 92, "exactly the crashed period's tail");
        assert_eq!(g1.max_epoch, 1, "the crash is visible in the epochs");
        assert_eq!(rec.origins(), BTreeSet::from([A, B]));
    }

    #[test]
    fn missing_seq_detection() {
        let mut ledger = Ledger::new();
        let mut collector = ReportCollector::new();
        for _ in 0..3 {
            ledger.record(&dgram(A, B, 10));
            collector.absorb(ledger.flush("g1").unwrap());
        }
        assert_eq!(collector.missing_seqs("g1"), Vec::<u64>::new());
        // Drop the middle report (lost in transit, say).
        let mut lossy = ReportCollector::new();
        ledger.record(&dgram(A, B, 10));
        let keep = ledger.flush("g1").unwrap(); // seq 3
        ledger.record(&dgram(A, B, 10));
        let _lost = ledger.flush("g1").unwrap(); // seq 4, never absorbed
        ledger.record(&dgram(A, B, 10));
        let last = ledger.flush("g1").unwrap(); // seq 5
        lossy.absorb(keep);
        lossy.absorb(last);
        assert_eq!(lossy.missing_seqs("g1"), vec![0, 1, 2, 4]);
    }

    #[test]
    fn gateways_merge_independently() {
        let mut g1 = Ledger::new();
        let mut g2 = Ledger::new();
        let mut collector = ReportCollector::new();
        g1.record(&dgram(A, B, 100));
        g2.record(&dgram(A, B, 100));
        collector.absorb(g1.flush("g1").unwrap());
        collector.absorb(g2.flush("g2").unwrap());
        let rec = collector.reconcile(None);
        assert_eq!(rec.gateways.len(), 2);
        // Both gateways on the path saw the same conversation: their
        // independent books agree — that is the administrative check.
        assert_eq!(
            rec.gateway("g1").unwrap().total_payload_bytes(),
            rec.gateway("g2").unwrap().total_payload_bytes(),
        );
    }
}
