//! The sharded soft-state flow table.
//!
//! The seed's single `HashMap` table is honest but unbounded and
//! unsharded; this is the same soft-state idea engineered for the
//! ROADMAP's ~10⁵-concurrent-flow target:
//!
//! - **Sharding.** A deterministic FNV-1a hash of the 13-byte 5-tuple
//!   selects one of a power-of-two number of shards (`hash & mask`, no
//!   division). Shards bound worst-case probe cost and give a future
//!   parallel executor an obvious partition, but nothing about the
//!   observable behavior depends on the shard count — eviction and
//!   expiry are per-shard-deterministic and iteration re-sorts.
//! - **Bounded capacity + exact LRU.** Each shard holds at most
//!   `per_shard_capacity` flows in a slab with an intrusive
//!   doubly-linked recency list: observe = O(1) touch, overflow evicts
//!   the shard's least-recently-seen flow in O(1) and counts it. Soft
//!   state means eviction is *safe* — the flow re-learns on its next
//!   datagram, exactly like a crash, only smaller.
//! - **Idle evaporation.** Recency order doubles as idle order, so
//!   expiry walks each shard from the cold end and stops at the first
//!   live entry instead of scanning everything.
//! - **Reassembly-aware fragment attribution.** First fragments carry
//!   ports and register their [`FragKey`]; follow-on fragments look the
//!   ports up and join the right flow (`frag_attributed`), or fall into
//!   the portless bucket *counted* (`frag_unattributed`) — E7's stated
//!   approximation, measured instead of silent.

use crate::flow::{Classified, FlowId, FlowState, FragKey};
use catenet_sim::{Duration, Instant};
use std::collections::HashMap;

/// Sentinel for "no slot" in the intrusive lists.
const NIL: usize = usize::MAX;

/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 64;
/// Default per-shard flow capacity: 64 × 2048 = 131 072 flows, headroom
/// over the 10⁵ target.
pub const DEFAULT_PER_SHARD: usize = 2048;
/// Follow-on fragments can arrive before their first fragment or long
/// after; the port cache holds at most this many reassembly groups.
const FRAG_CACHE_CAP: usize = 256;
/// And remembers each group at most this long.
const FRAG_CACHE_TTL: Duration = Duration::from_secs(60);

/// One slab entry: a flow plus its position in the recency list.
#[derive(Debug, Clone)]
struct Slot {
    id: FlowId,
    state: FlowState,
    /// Toward the most recently seen entry.
    newer: usize,
    /// Toward the least recently seen entry.
    older: usize,
}

/// One shard: slab + index + recency list.
#[derive(Debug, Default)]
struct Shard {
    index: HashMap<FlowId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently seen slot.
    head: usize,
    /// Least recently seen slot.
    tail: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Unlink `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (newer, older) = (self.slots[slot].newer, self.slots[slot].older);
        if newer == NIL {
            self.head = older;
        } else {
            self.slots[newer].older = older;
        }
        if older == NIL {
            self.tail = newer;
        } else {
            self.slots[older].newer = newer;
        }
    }

    /// Link `slot` in as the most recently seen entry.
    fn link_front(&mut self, slot: usize) {
        self.slots[slot].newer = NIL;
        self.slots[slot].older = self.head;
        if self.head != NIL {
            self.slots[self.head].newer = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Move an existing slot to the front (freshly observed).
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    /// Remove the least-recently-seen flow and return its slot.
    fn evict_tail(&mut self) -> Option<FlowId> {
        let tail = self.tail;
        if tail == NIL {
            return None;
        }
        let id = self.slots[tail].id;
        self.unlink(tail);
        self.index.remove(&id);
        self.free.push(tail);
        Some(id)
    }

    /// Insert a new flow at the front, reusing a free slot if any.
    fn insert_front(&mut self, id: FlowId, state: FlowState) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    id,
                    state,
                    newer: NIL,
                    older: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    id,
                    state,
                    newer: NIL,
                    older: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.index.insert(id, slot);
        self.link_front(slot);
    }

    fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Occupancy summary across shards, for capacity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Flows in the emptiest shard.
    pub min_occupancy: usize,
    /// Flows in the fullest shard.
    pub max_occupancy: usize,
    /// Total live flows.
    pub total: usize,
    /// Per-shard capacity bound.
    pub per_shard_capacity: usize,
}

/// First-fragment port memory: what reassembly would know, scoped to
/// attribution. Bounded FIFO with a TTL; deterministic.
#[derive(Debug, Default)]
struct FragPortCache {
    map: HashMap<FragKey, (u16, u16, Instant)>,
    order: std::collections::VecDeque<FragKey>,
}

impl FragPortCache {
    fn insert(&mut self, key: FragKey, ports: (u16, u16), now: Instant) {
        if self.map.len() >= FRAG_CACHE_CAP && !self.map.contains_key(&key) {
            while let Some(oldest) = self.order.pop_front() {
                if self.map.remove(&oldest).is_some() {
                    break;
                }
            }
        }
        if self.map.insert(key, (ports.0, ports.1, now)).is_none() {
            self.order.push_back(key);
        }
    }

    fn lookup(&self, key: &FragKey, now: Instant) -> Option<(u16, u16)> {
        let &(src, dst, at) = self.map.get(key)?;
        (now.duration_since(at) < FRAG_CACHE_TTL).then_some((src, dst))
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// FNV-1a over the 13 canonical bytes of the 5-tuple. Deterministic
/// across runs, platforms and process restarts — shard selection is part
/// of the reproducible experiment surface.
fn shard_hash(id: &FlowId) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in id.src_addr.0 {
        eat(b);
    }
    for b in id.dst_addr.0 {
        eat(b);
    }
    eat(id.protocol);
    for b in id.src_port.to_be_bytes() {
        eat(b);
    }
    for b in id.dst_port.to_be_bytes() {
        eat(b);
    }
    hash
}

/// The gateway's soft-state flow table (sharded, bounded, LRU).
#[derive(Debug)]
pub struct FlowTable {
    shards: Vec<Shard>,
    shard_mask: u64,
    per_shard_capacity: usize,
    /// Idle time after which an entry evaporates (soft state!).
    idle_timeout: Duration,
    /// EWMA time constant for the rate estimate.
    rate_tau: Duration,
    frag_cache: FragPortCache,
    /// Total entries expired (idle evaporation) so far.
    pub expired: u64,
    /// Total entries evicted by LRU capacity pressure.
    pub evicted: u64,
    /// Total table losses (crashes).
    pub losses: u64,
    /// Follow-on fragments attributed to their flow via the port cache.
    pub frag_attributed: u64,
    /// Follow-on fragments that fell into the portless bucket because
    /// no first fragment was remembered — E7's measured approximation.
    pub frag_unattributed: u64,
}

impl FlowTable {
    /// Default idle timeout.
    pub const DEFAULT_IDLE: Duration = Duration::from_secs(30);

    /// A table with default parameters.
    pub fn new() -> FlowTable {
        FlowTable::with_params(Self::DEFAULT_IDLE, Duration::from_secs(1))
    }

    /// A table with explicit idle timeout and rate time-constant, at
    /// the default geometry ([`DEFAULT_SHARDS`] × [`DEFAULT_PER_SHARD`]).
    pub fn with_params(idle_timeout: Duration, rate_tau: Duration) -> FlowTable {
        FlowTable::with_geometry(DEFAULT_SHARDS, DEFAULT_PER_SHARD, idle_timeout, rate_tau)
    }

    /// A table with explicit shard geometry. `shards` must be a power
    /// of two; `per_shard_capacity` bounds each shard's live flows.
    pub fn with_geometry(
        shards: usize,
        per_shard_capacity: usize,
        idle_timeout: Duration,
        rate_tau: Duration,
    ) -> FlowTable {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(per_shard_capacity > 0, "shards need room for at least one flow");
        FlowTable {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            shard_mask: (shards - 1) as u64,
            per_shard_capacity,
            idle_timeout,
            rate_tau,
            frag_cache: FragPortCache::default(),
            expired: 0,
            evicted: 0,
            losses: 0,
            frag_attributed: 0,
            frag_unattributed: 0,
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.index.is_empty())
    }

    /// Total flow capacity (shards × per-shard bound).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard_capacity
    }

    /// Occupancy distribution across shards.
    pub fn shard_stats(&self) -> ShardStats {
        let occupancies = self.shards.iter().map(Shard::len);
        ShardStats {
            shards: self.shards.len(),
            min_occupancy: occupancies.clone().min().unwrap_or(0),
            max_occupancy: occupancies.clone().max().unwrap_or(0),
            total: occupancies.sum(),
            per_shard_capacity: self.per_shard_capacity,
        }
    }

    /// Observe one forwarded datagram.
    pub fn observe(&mut self, datagram: &[u8], now: Instant) {
        let id = match FlowId::classify(datagram) {
            Classified::Direct(id) => id,
            Classified::FirstFragment(id, key) => {
                self.frag_cache.insert(key, (id.src_port, id.dst_port), now);
                id
            }
            Classified::FollowOn(portless, key) => {
                match self.frag_cache.lookup(&key, now) {
                    Some((src_port, dst_port)) => {
                        self.frag_attributed += 1;
                        FlowId {
                            src_port,
                            dst_port,
                            ..portless
                        }
                    }
                    None => {
                        self.frag_unattributed += 1;
                        portless
                    }
                }
            }
            Classified::Unparseable => return,
        };
        self.observe_flow(id, datagram.len() as u64, now);
    }

    /// Observe one datagram already resolved to a flow id (the churn
    /// benchmark path: no parsing, just table mechanics).
    pub fn observe_flow(&mut self, id: FlowId, bytes: u64, now: Instant) {
        let tau = self.rate_tau.secs_f64();
        let capacity = self.per_shard_capacity;
        let shard = &mut self.shards[(shard_hash(&id) & self.shard_mask) as usize];
        match shard.index.get(&id) {
            Some(&slot) => {
                let state = &mut shard.slots[slot].state;
                let dt = now.duration_since(state.last_seen).secs_f64();
                let inst_rate = if dt > 0.0 { bytes as f64 / dt } else { 0.0 };
                // Exponentially weighted moving average with gap decay.
                let alpha = if dt > 0.0 {
                    1.0 - (-dt / tau).exp()
                } else {
                    0.0
                };
                state.rate_bps += alpha * (inst_rate - state.rate_bps);
                state.packets += 1;
                state.bytes += bytes;
                state.last_seen = now;
                shard.touch(slot);
            }
            None => {
                if shard.len() >= capacity {
                    // Bounded soft state: the coldest flow pays. It will
                    // re-learn from its next datagram, like a tiny crash.
                    shard.evict_tail();
                    self.evicted += 1;
                }
                shard.insert_front(
                    id,
                    FlowState {
                        packets: 1,
                        bytes,
                        first_seen: now,
                        last_seen: now,
                        rate_bps: 0.0,
                    },
                );
            }
        }
    }

    /// Look up a flow.
    pub fn get(&self, id: &FlowId) -> Option<&FlowState> {
        let shard = &self.shards[(shard_hash(id) & self.shard_mask) as usize];
        shard.index.get(id).map(|&slot| &shard.slots[slot].state)
    }

    /// Iterate flows in deterministic (sorted) order.
    pub fn iter_sorted(&self) -> Vec<(&FlowId, &FlowState)> {
        let mut entries: Vec<(&FlowId, &FlowState)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .index
                    .values()
                    .map(|&slot| (&shard.slots[slot].id, &shard.slots[slot].state))
            })
            .collect();
        entries.sort_by_key(|(id, _)| **id);
        entries
    }

    /// Evaporate idle entries. The essence of soft state: nothing
    /// refreshes, nothing stays. Recency order doubles as idle order,
    /// so each shard walks from its cold end and stops early.
    pub fn expire_idle(&mut self, now: Instant) {
        let timeout = self.idle_timeout;
        for shard in &mut self.shards {
            while shard.tail != NIL {
                let state = &shard.slots[shard.tail].state;
                if now.duration_since(state.last_seen) < timeout {
                    break;
                }
                shard.evict_tail();
                self.expired += 1;
            }
        }
    }

    /// Lose everything (gateway crash). The paper's point: this is
    /// *survivable* — the table rebuilds from the traffic itself.
    pub fn lose(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
        self.frag_cache.clear();
        self.losses += 1;
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos, UdpPacket, UdpRepr};
    use catenet_wire::{IpProtocol, Ipv4Address};

    fn udp_datagram(src_port: u16, dst_port: u16, len: usize) -> Vec<u8> {
        let udp_repr = UdpRepr {
            src_port,
            dst_port,
            payload_len: len,
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 9, 0, 1);
        {
            let mut udp = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp);
            udp.fill_checksum(src, dst);
        }
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            1,
            false,
            &udp_buf,
        )
    }

    fn flow(i: u32) -> FlowId {
        FlowId {
            src_addr: Ipv4Address::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
            dst_addr: Ipv4Address::new(10, 9, 0, 1),
            protocol: 17,
            src_port: 5000,
            dst_port: 6000,
        }
    }

    #[test]
    fn observe_accumulates() {
        let mut table = FlowTable::new();
        let dgram = udp_datagram(5000, 6000, 100);
        for i in 0..10 {
            table.observe(&dgram, Instant::from_millis(i * 10));
        }
        assert_eq!(table.len(), 1);
        let id = FlowId::of_datagram(&dgram).unwrap();
        let state = table.get(&id).unwrap();
        assert_eq!(state.packets, 10);
        assert_eq!(state.bytes, 10 * dgram.len() as u64);
        assert_eq!(state.first_seen, Instant::ZERO);
        assert_eq!(state.last_seen, Instant::from_millis(90));
    }

    #[test]
    fn rate_estimate_converges() {
        let mut table = FlowTable::with_params(Duration::from_secs(30), Duration::from_secs(1));
        let dgram = udp_datagram(5000, 6000, 972); // 1000-byte datagram
        // 1000 bytes every 10 ms = 100 kB/s.
        for i in 0..500 {
            table.observe(&dgram, Instant::from_millis(i * 10));
        }
        let id = FlowId::of_datagram(&dgram).unwrap();
        let state = table.get(&id).unwrap();
        assert!(
            state.rate_within(100_000.0, 0.1),
            "rate estimate {} not within 10% of 100 kB/s",
            state.rate_bps
        );
    }

    #[test]
    fn distinct_flows_tracked_separately() {
        let mut table = FlowTable::new();
        table.observe(&udp_datagram(1, 2, 10), Instant::ZERO);
        table.observe(&udp_datagram(3, 4, 10), Instant::ZERO);
        assert_eq!(table.len(), 2);
        let sorted = table.iter_sorted();
        assert!(sorted[0].0 < sorted[1].0);
    }

    #[test]
    fn idle_entries_evaporate() {
        let mut table = FlowTable::with_params(Duration::from_secs(5), Duration::from_secs(1));
        table.observe(&udp_datagram(1, 2, 10), Instant::ZERO);
        table.observe(&udp_datagram(3, 4, 10), Instant::from_secs(4));
        table.expire_idle(Instant::from_secs(6));
        assert_eq!(table.len(), 1, "only the idle flow evaporated");
        assert_eq!(table.expired, 1);
    }

    #[test]
    fn lose_clears_but_rebuilds() {
        let mut table = FlowTable::new();
        let dgram = udp_datagram(5000, 6000, 100);
        table.observe(&dgram, Instant::ZERO);
        table.lose();
        assert!(table.is_empty());
        assert_eq!(table.losses, 1);
        // Traffic keeps flowing: the table rebuilds without help.
        table.observe(&dgram, Instant::from_millis(10));
        assert_eq!(table.len(), 1);
        let id = FlowId::of_datagram(&dgram).unwrap();
        assert_eq!(table.get(&id).unwrap().packets, 1);
    }

    #[test]
    fn garbage_input_ignored() {
        let mut table = FlowTable::new();
        table.observe(&[0u8; 10], Instant::ZERO);
        assert!(table.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_exact_lru() {
        // One shard, capacity 3: the least-recently-observed flow pays.
        let mut table = FlowTable::with_geometry(
            1,
            3,
            Duration::from_secs(30),
            Duration::from_secs(1),
        );
        let now = |ms| Instant::from_millis(ms);
        table.observe_flow(flow(1), 100, now(0));
        table.observe_flow(flow(2), 100, now(1));
        table.observe_flow(flow(3), 100, now(2));
        // Touch flow 1 so flow 2 is the coldest.
        table.observe_flow(flow(1), 100, now(3));
        table.observe_flow(flow(4), 100, now(4));
        assert_eq!(table.len(), 3);
        assert_eq!(table.evicted, 1);
        assert!(table.get(&flow(2)).is_none(), "LRU victim was flow 2");
        assert!(table.get(&flow(1)).is_some());
        assert!(table.get(&flow(3)).is_some());
        assert!(table.get(&flow(4)).is_some());
    }

    #[test]
    fn eviction_then_return_relearns() {
        let mut table = FlowTable::with_geometry(
            1,
            2,
            Duration::from_secs(30),
            Duration::from_secs(1),
        );
        table.observe_flow(flow(1), 100, Instant::from_millis(0));
        table.observe_flow(flow(2), 100, Instant::from_millis(1));
        table.observe_flow(flow(3), 100, Instant::from_millis(2)); // evicts 1
        table.observe_flow(flow(1), 100, Instant::from_millis(3)); // evicts 2, re-learns 1
        assert_eq!(table.evicted, 2);
        let state = table.get(&flow(1)).unwrap();
        assert_eq!(state.packets, 1, "re-learned from scratch, like a crash");
        assert_eq!(state.first_seen, Instant::from_millis(3));
    }

    #[test]
    fn sharding_is_deterministic_and_spread() {
        let mut table = FlowTable::with_geometry(
            16,
            8,
            Duration::from_secs(30),
            Duration::from_secs(1),
        );
        for i in 0..100 {
            table.observe_flow(flow(i), 64, Instant::from_millis(u64::from(i)));
        }
        assert_eq!(table.len(), 100);
        let stats = table.shard_stats();
        assert_eq!(stats.shards, 16);
        assert_eq!(stats.total, 100);
        // FNV over distinct addresses spreads: no shard hits its bound
        // at 100 flows over 128 slots of capacity.
        assert!(stats.max_occupancy <= 8);
        assert!(table.evicted <= 4, "pathological clustering: {stats:?}");
        // Same inputs, same placement: a second table agrees exactly.
        let mut again = FlowTable::with_geometry(
            16,
            8,
            Duration::from_secs(30),
            Duration::from_secs(1),
        );
        for i in 0..100 {
            again.observe_flow(flow(i), 64, Instant::from_millis(u64::from(i)));
        }
        assert_eq!(again.shard_stats(), stats);
    }

    #[test]
    fn expire_idle_stops_at_first_live_entry() {
        let mut table = FlowTable::with_geometry(
            1,
            16,
            Duration::from_secs(5),
            Duration::from_secs(1),
        );
        for i in 0..8 {
            table.observe_flow(flow(i), 64, Instant::from_secs(u64::from(i)));
        }
        table.expire_idle(Instant::from_secs(9));
        // Flows observed at t=0..4 are ≥ 5 s idle; 5..7 live on.
        assert_eq!(table.len(), 3);
        assert_eq!(table.expired, 5);
        assert!(table.get(&flow(4)).is_none());
        assert!(table.get(&flow(5)).is_some());
    }

    fn udp_fragments(src_port: u16, dst_port: u16, ident: u16) -> (Vec<u8>, Vec<u8>) {
        // Build a UDP datagram and split it into two raw IP fragments.
        let whole = udp_datagram(src_port, dst_port, 64);
        let header_len = 20;
        let payload = &whole[header_len..];
        let (first_pay, rest_pay) = payload.split_at(32);
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 9, 0, 1);
        let mk = |pay: &[u8], offset: u16, more: bool| {
            let mut buf = vec![0u8; 20 + pay.len()];
            {
                let mut p = catenet_wire::Ipv4Packet::new_unchecked(&mut buf[..]);
                p.set_version_and_header_len();
                p.set_tos(Tos::default());
                p.set_total_len((20 + pay.len()) as u16);
                p.set_ident(ident);
                p.set_flags_and_frag_offset(
                    catenet_wire::Ipv4Flags {
                        dont_frag: false,
                        more_frags: more,
                    },
                    offset,
                );
                p.set_hop_limit(64);
                p.set_protocol(IpProtocol::Udp);
                p.set_src_addr(src);
                p.set_dst_addr(dst);
                p.payload_mut().copy_from_slice(pay);
                p.fill_checksum();
            }
            buf
        };
        (mk(first_pay, 0, true), mk(rest_pay, 32, false))
    }

    #[test]
    fn follow_on_fragments_attributed_via_port_cache() {
        let mut table = FlowTable::new();
        let (first, rest) = udp_fragments(5000, 6000, 77);
        table.observe(&first, Instant::ZERO);
        table.observe(&rest, Instant::from_millis(1));
        assert_eq!(table.frag_attributed, 1);
        assert_eq!(table.frag_unattributed, 0);
        // Both fragments landed in the ported flow; no portless entry.
        assert_eq!(table.len(), 1);
        let id = FlowId::of_datagram(&first).unwrap();
        assert_eq!(id.src_port, 5000);
        assert_eq!(table.get(&id).unwrap().packets, 2);
    }

    #[test]
    fn orphan_follow_on_counted_unattributed() {
        let mut table = FlowTable::new();
        let (_, rest) = udp_fragments(5000, 6000, 78);
        // The first fragment never arrives (lost upstream).
        table.observe(&rest, Instant::ZERO);
        assert_eq!(table.frag_unattributed, 1);
        let entries = table.iter_sorted();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0.src_port, 0, "portless bucket");
    }

    #[test]
    fn crash_forgets_fragment_ports_too() {
        let mut table = FlowTable::new();
        let (first, rest) = udp_fragments(5000, 6000, 79);
        table.observe(&first, Instant::ZERO);
        table.lose();
        table.observe(&rest, Instant::from_millis(1));
        assert_eq!(
            table.frag_unattributed, 1,
            "port memory is volatile state and died with the table"
        );
    }
}
