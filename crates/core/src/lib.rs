//! # catenet-core
//!
//! The catenet stack and internetwork: hosts, stateless gateways, links,
//! sockets and applications, assembled exactly along the lines of Clark's
//! 1988 architecture — plus the *rejected* designs as baselines, so every
//! architectural claim in the paper can be measured rather than asserted.
//!
//! ## The architecture (what the paper prescribes)
//!
//! - [`node::Node`] — a host or gateway. A **gateway** holds only
//!   topology state (its routing table) and a reassembly-free forwarding
//!   path; it can crash and reboot without any conversation noticing
//!   (fate-sharing, goal 1). A **host** owns every bit of conversation
//!   state: TCP sockets, reassembly buffers, RTT estimators.
//! - [`network::Network`] — the event loop wiring nodes together over
//!   [`catenet_sim::Link`]s; supports node crash/reboot, link failure,
//!   and partition, which the survivability experiments script.
//! - [`socket::UdpSocket`] and re-exported [`catenet_tcp::Socket`] — the
//!   two "types of service" (goal 2).
//! - [`app`] — workload applications: bulk transfer (file transfer, the
//!   TCP archetype), constant-bit-rate sources (packet voice, the
//!   archetype that *forced* UDP to exist), echo and ping.
//!
//! ## The baselines (what the paper argues against)
//!
//! - [`baseline::vc`] — virtual-circuit gateways that pin per-connection
//!   state in the network (the rejected alternative to fate-sharing).
//! - [`baseline::linkarq`] — hop-by-hop reliable links (the rejected
//!   alternative to end-to-end retransmission, §7).
//! - [`baseline::pktseq`] — a packet-sequenced reliable transport (the
//!   rejected alternative to TCP's byte sequencing).
//!
//! ## The extensions (what the paper proposes for the future)
//!
//! - [`flow::FlowTable`] — per-flow *soft state* in gateways,
//!   reconstructible from live traffic after a crash (§10's "flows").
//! - [`accounting::Ledger`] — per-flow packet/byte accounting (goal 7),
//!   used to measure how well datagram accounting approximates truth.
//!
//! ## The gauntlet (how the claims are checked)
//!
//! - [`invariant`] — end-to-end invariant checkers (stream integrity,
//!   progress watchdog, reconvergence bounds) that the chaos experiments
//!   run against [`catenet_sim::FaultPlan`] schedules.

// `deny`, not `forbid`: the one unsafe impl in the workspace is the
// scoped-thread `Send` assertion in `par` (see its safety comment),
// which opts in with a scoped `#[allow]`.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod accounting;
pub mod app;
pub mod arp;
pub mod baseline;
mod byzantine;
pub mod flow;
pub mod iface;
pub mod invariant;
mod lane;
pub mod network;
pub mod node;
mod par;
pub mod partition;
pub mod pool;
pub mod realization;
pub mod socket;

pub use app::{shared, Application, Shared};
pub use catenet_sim::{ShardKind, ShardStats};
pub use catenet_tcp::{Endpoint, Socket as TcpSocket, SocketConfig as TcpConfig};
pub use invariant::{ProgressWatchdog, ReconvergenceBound, StreamIntegrity, Violation};
pub use network::{LinkId, Network, NodeId};
pub use node::{Node, NodeRole, NodeStats};
pub use pool::{PacketBuf, PacketPool, PoolStats};
pub use socket::UdpSocket;
