//! End-to-end invariant checking for the survivability gauntlet.
//!
//! The paper's survivability story (§3) makes three testable promises:
//!
//! 1. **Integrity.** Whatever the network does to packets — loses,
//!    duplicates, reorders, corrupts — TCP delivers to the receiving
//!    application *exactly* the byte stream the sending application
//!    wrote, or it delivers an error. Never silently wrong data.
//!    [`StreamIntegrity`] checks this: the delivered stream must at all
//!    times be a prefix of the sent stream.
//! 2. **Progress.** As long as some physical path exists, conversations
//!    make progress. A connection that sits stuck while a path is up is
//!    a masked failure the architecture promised not to have.
//!    [`ProgressWatchdog`] flags it.
//! 3. **Reconvergence.** After the topology heals, routing must settle
//!    within a bounded time — survivability is hollow if recovery takes
//!    unboundedly long. [`ReconvergenceBound`] asserts the bound.
//!
//! Checkers are plain data fed by the applications (through the same
//! `Rc<RefCell<…>>` handle pattern the result structs use) and read by
//! the experiment harness. They never panic on violation: they *record*,
//! so a gauntlet run reports every broken invariant instead of dying at
//! the first.

use catenet_sim::{Duration, Instant};

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The receiver saw a byte that differs from what the sender wrote
    /// at the same stream offset — corrupted or misordered data slipped
    /// past the end-to-end checks.
    StreamMismatch {
        /// Stream offset of the first differing byte.
        at: usize,
        /// What the sender wrote there.
        expected: u8,
        /// What the receiver got.
        got: u8,
    },
    /// The receiver was handed more bytes than the sender ever wrote —
    /// duplicated data was delivered twice.
    StreamOverrun {
        /// Bytes the sender wrote.
        sent: usize,
        /// Bytes the receiver was handed.
        delivered: usize,
    },
    /// A connection made no progress for the watchdog's limit while a
    /// usable path existed.
    Stall {
        /// When progress was last observed.
        since: Instant,
        /// When the watchdog gave up waiting.
        flagged_at: Instant,
    },
    /// Routing took longer than the allowed bound to settle after a
    /// topology change.
    SlowReconvergence {
        /// Measured settle time.
        took: Duration,
        /// The promised bound.
        bound: Duration,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::StreamMismatch { at, expected, got } => {
                write!(f, "stream mismatch at byte {at}: sent {expected:#04x}, got {got:#04x}")
            }
            Violation::StreamOverrun { sent, delivered } => {
                write!(f, "stream overrun: {delivered} bytes delivered of {sent} sent")
            }
            Violation::Stall { since, flagged_at } => {
                write!(f, "no progress since {since} (flagged at {flagged_at}) with a path up")
            }
            Violation::SlowReconvergence { took, bound } => {
                write!(f, "routing took {took} to reconverge (bound {bound})")
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Per-connection stream-integrity checker.
///
/// The sender records every byte the transport *accepted*; the receiver
/// records every byte the transport *delivered*. The invariant: at every
/// instant, the delivered stream is a byte-for-byte prefix of the sent
/// stream. Violations are recorded, not panicked, and the first
/// mismatch stops further comparison (one corrupt byte would otherwise
/// cascade into thousands of "violations").
#[derive(Debug, Default)]
pub struct StreamIntegrity {
    sent: Vec<u8>,
    delivered: usize,
    delivered_digest: Option<u64>,
    violations: Vec<Violation>,
    poisoned: bool,
}

impl StreamIntegrity {
    /// A fresh checker.
    pub fn new() -> StreamIntegrity {
        StreamIntegrity {
            sent: Vec::new(),
            delivered: 0,
            delivered_digest: Some(FNV_OFFSET),
            violations: Vec::new(),
            poisoned: false,
        }
    }

    /// Record bytes the sending transport accepted.
    pub fn record_sent(&mut self, bytes: &[u8]) {
        self.sent.extend_from_slice(bytes);
    }

    /// Record bytes the receiving transport delivered, checking the
    /// prefix invariant as they arrive.
    pub fn record_delivered(&mut self, bytes: &[u8]) {
        if let Some(digest) = &mut self.delivered_digest {
            *digest = fnv1a(*digest, bytes);
        }
        if self.poisoned {
            self.delivered += bytes.len();
            return;
        }
        for &got in bytes {
            match self.sent.get(self.delivered) {
                Some(&expected) if expected == got => self.delivered += 1,
                Some(&expected) => {
                    self.violations.push(Violation::StreamMismatch {
                        at: self.delivered,
                        expected,
                        got,
                    });
                    self.poisoned = true;
                    self.delivered += 1;
                    return;
                }
                None => {
                    self.violations.push(Violation::StreamOverrun {
                        sent: self.sent.len(),
                        delivered: self.delivered + 1,
                    });
                    self.poisoned = true;
                    self.delivered += 1;
                    return;
                }
            }
        }
    }

    /// Bytes the sender wrote.
    pub fn sent_len(&self) -> usize {
        self.sent.len()
    }

    /// Bytes the receiver was handed.
    pub fn delivered_len(&self) -> usize {
        self.delivered
    }

    /// FNV-1a digest of everything delivered so far (for experiment
    /// tables — two runs with equal digests delivered equal streams).
    pub fn delivered_digest(&self) -> u64 {
        self.delivered_digest.unwrap_or(FNV_OFFSET)
    }

    /// FNV-1a digest of the sent prefix of the same length, for
    /// comparison against [`StreamIntegrity::delivered_digest`].
    pub fn sent_digest(&self) -> u64 {
        let upto = self.delivered.min(self.sent.len());
        fnv1a(FNV_OFFSET, &self.sent[..upto])
    }

    /// Whether every delivered byte matched the sent stream so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the full sent stream arrived intact (a *completed*
    /// transfer's exit criterion; an aborted one only needs
    /// [`StreamIntegrity::is_clean`]).
    pub fn is_complete(&self) -> bool {
        self.is_clean() && self.delivered == self.sent.len()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Flags connections that sit stuck while a usable path exists.
///
/// The experiment harness knows the fault timeline, so *it* tells the
/// watchdog when a path is available; the watchdog only has to notice
/// that progress stopped anyway. Stuck time accumulated while the path
/// was genuinely down does not count — that is the network doing its
/// best, not a bug.
#[derive(Debug)]
pub struct ProgressWatchdog {
    stall_limit: Duration,
    last_progress: Instant,
    last_value: u64,
    path_up_since: Option<Instant>,
    violations: Vec<Violation>,
    flagged_current: bool,
}

impl ProgressWatchdog {
    /// A watchdog that tolerates `stall_limit` of no progress while a
    /// path is up. The limit should comfortably exceed the worst-case
    /// RTO backoff plus routing reconvergence.
    pub fn new(stall_limit: Duration, now: Instant) -> ProgressWatchdog {
        ProgressWatchdog {
            stall_limit,
            last_progress: now,
            last_value: 0,
            path_up_since: Some(now),
            violations: Vec::new(),
            flagged_current: false,
        }
    }

    /// Tell the watchdog whether a usable path currently exists.
    pub fn set_path_available(&mut self, available: bool, now: Instant) {
        match (self.path_up_since, available) {
            (None, true) => {
                self.path_up_since = Some(now);
                // Recovery clock restarts when the path comes back.
                self.last_progress = self.last_progress.max(now);
            }
            (Some(_), false) => self.path_up_since = None,
            _ => {}
        }
    }

    /// Report the connection's monotone progress counter (e.g. bytes
    /// acked). Call this regularly; a stall is flagged at most once per
    /// stuck period.
    pub fn observe(&mut self, progress: u64, now: Instant) {
        if progress > self.last_value {
            self.last_value = progress;
            self.last_progress = now;
            self.flagged_current = false;
            return;
        }
        let Some(path_up_since) = self.path_up_since else {
            return;
        };
        let stuck_since = self.last_progress.max(path_up_since);
        if !self.flagged_current && now.duration_since(stuck_since) >= self.stall_limit {
            self.violations.push(Violation::Stall {
                since: stuck_since,
                flagged_at: now,
            });
            self.flagged_current = true;
        }
    }

    /// Stall violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of stalls flagged.
    pub fn stalls(&self) -> usize {
        self.violations.len()
    }
}

/// Asserts that routing settles within a bound after a topology change.
#[derive(Debug, Clone, Copy)]
pub struct ReconvergenceBound {
    /// The promised settle time.
    pub bound: Duration,
}

impl ReconvergenceBound {
    /// A bound of `bound`.
    pub fn new(bound: Duration) -> ReconvergenceBound {
        ReconvergenceBound { bound }
    }

    /// Check one measured reconvergence. Returns the violation if the
    /// bound was exceeded.
    pub fn check(&self, took: Duration) -> Option<Violation> {
        (took > self.bound).then_some(Violation::SlowReconvergence {
            took,
            bound: self.bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_prefix_delivery_is_clean() {
        let mut check = StreamIntegrity::new();
        check.record_sent(b"hello, catenet");
        check.record_delivered(b"hello");
        assert!(check.is_clean());
        assert!(!check.is_complete(), "tail still outstanding");
        check.record_delivered(b", catenet");
        assert!(check.is_complete());
        assert_eq!(check.delivered_digest(), check.sent_digest());
    }

    #[test]
    fn interleaved_send_and_delivery() {
        let mut check = StreamIntegrity::new();
        check.record_sent(b"abc");
        check.record_delivered(b"ab");
        check.record_sent(b"def");
        check.record_delivered(b"cdef");
        assert!(check.is_complete());
    }

    #[test]
    fn corrupted_byte_is_flagged_once() {
        let mut check = StreamIntegrity::new();
        check.record_sent(&[1, 2, 3, 4, 5]);
        check.record_delivered(&[1, 2, 9, 4, 5]);
        assert!(!check.is_clean());
        assert_eq!(check.violations().len(), 1, "poisoned, not cascading");
        assert_eq!(
            check.violations()[0],
            Violation::StreamMismatch {
                at: 2,
                expected: 3,
                got: 9
            }
        );
        // Further deliveries don't add more noise.
        check.record_delivered(&[1, 1, 1]);
        assert_eq!(check.violations().len(), 1);
        assert_ne!(check.delivered_digest(), check.sent_digest());
    }

    #[test]
    fn duplicated_delivery_is_an_overrun() {
        let mut check = StreamIntegrity::new();
        check.record_sent(b"xy");
        check.record_delivered(b"xy");
        check.record_delivered(b"xy");
        assert!(!check.is_clean());
        assert!(matches!(
            check.violations()[0],
            Violation::StreamOverrun { sent: 2, .. }
        ));
    }

    #[test]
    fn reordered_delivery_is_a_mismatch() {
        let mut check = StreamIntegrity::new();
        check.record_sent(b"abcd");
        check.record_delivered(b"abdc");
        assert!(!check.is_clean());
        assert!(matches!(
            check.violations()[0],
            Violation::StreamMismatch { at: 2, .. }
        ));
    }

    #[test]
    fn watchdog_tolerates_stalls_while_path_down() {
        let limit = Duration::from_secs(30);
        let mut dog = ProgressWatchdog::new(limit, Instant::ZERO);
        dog.observe(100, Instant::from_secs(1));
        // Path goes down; 10 minutes of stall are excused.
        dog.set_path_available(false, Instant::from_secs(2));
        dog.observe(100, Instant::from_secs(600));
        assert_eq!(dog.stalls(), 0);
        // Path heals; the clock restarts from the heal.
        dog.set_path_available(true, Instant::from_secs(600));
        dog.observe(100, Instant::from_secs(620));
        assert_eq!(dog.stalls(), 0, "only 20 s since heal");
        dog.observe(100, Instant::from_secs(640));
        assert_eq!(dog.stalls(), 1, "40 s stuck with a path up");
        // Flagged once per stuck period, not every observation.
        dog.observe(100, Instant::from_secs(700));
        assert_eq!(dog.stalls(), 1);
        // Progress resets the flag; a *new* stall is a new violation.
        dog.observe(200, Instant::from_secs(710));
        dog.observe(200, Instant::from_secs(800));
        assert_eq!(dog.stalls(), 2);
    }

    #[test]
    fn watchdog_flags_stuck_connection_with_path_up() {
        let mut dog = ProgressWatchdog::new(Duration::from_secs(10), Instant::ZERO);
        dog.observe(0, Instant::from_secs(11));
        assert_eq!(dog.stalls(), 1);
        match &dog.violations()[0] {
            Violation::Stall { since, flagged_at } => {
                assert_eq!(*since, Instant::ZERO);
                assert_eq!(*flagged_at, Instant::from_secs(11));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reconvergence_bound_checks() {
        let bound = ReconvergenceBound::new(Duration::from_secs(60));
        assert!(bound.check(Duration::from_secs(30)).is_none());
        let violation = bound.check(Duration::from_secs(90)).expect("over bound");
        assert!(matches!(violation, Violation::SlowReconvergence { .. }));
        assert!(violation.to_string().contains("reconverge"));
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::StreamMismatch {
            at: 7,
            expected: 0x41,
            got: 0x42,
        };
        assert_eq!(v.to_string(), "stream mismatch at byte 7: sent 0x41, got 0x42");
    }
}
