//! Pooled packet buffers: the memory layer of the zero-copy fast path.
//!
//! Clark's cost-effectiveness goals (§goal 5/6) blame datagram overhead on
//! per-packet *processing* — and in this stack, as in the kernels the
//! paper was written against, the dominant processing cost was buffer
//! management: every layer boundary allocated a fresh `Vec` and copied
//! the payload across. [`PacketPool`] replaces that with the classic
//! mbuf/skbuff discipline:
//!
//! - buffers are recycled through a freelist instead of returned to the
//!   allocator, so a converged network forwards packets with ~zero
//!   steady-state allocations;
//! - every buffer is handed out with [`HEADROOM`] spare bytes in front,
//!   so Ethernet/IPv4/UDP headers are *prepended in place* (the buffer's
//!   logical start moves backwards) instead of rebuilt into new `Vec`s;
//! - a [`PacketBuf`] releases itself back to its pool on drop, at every
//!   drop point — delivery, queue overflow, checksum discard — without
//!   the forwarding code knowing.
//!
//! The pool also *prices* what it does ([`PoolStats`]): fresh
//! allocations vs. freelist hits, and every byte that still gets copied
//! (headroom misses, ingest copies in copy mode). E15 reads these to
//! report allocations and bytes-copied per forwarded packet, and runs
//! the whole network in **copy mode** ([`PacketPool::set_zero_copy`]) as
//! its baseline arm: one exact-size allocation per layer per hop, the
//! behavior this pool replaced — with bit-identical packet contents, so
//! telemetry dumps stay byte-equal between the arms.
//!
//! Buffers recycle poison-filled (`0xA5`, [`PacketPool::set_poison`], on
//! by default in debug builds) so a path that reads bytes it never wrote
//! sees garbage loudly rather than a previous packet quietly.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

use catenet_wire::{ethernet, ipv4};

/// Spare bytes in front of every pooled buffer: enough to prepend an
/// IPv4 header and then an Ethernet header without moving the payload.
pub const HEADROOM: usize = ethernet::HEADER_LEN + ipv4::HEADER_LEN;

/// Capacity of a recycled buffer: max Ethernet payload (1500) plus
/// framing plus headroom, rounded up. Requests larger than this get an
/// exact-size allocation and are not recycled.
const BUF_CAPACITY: usize = 1600;

/// Freelist depth bound — caps pool memory at a few MB; beyond it,
/// released buffers are dropped (counted in [`PoolStats::discarded`]).
const MAX_FREE: usize = 8192;

/// The byte recycled buffers are filled with when poisoning is on.
pub const POISON: u8 = 0xa5;

/// Cumulative pool accounting. All counters are monotonic; occupancy is
/// read via [`PacketPool::free_buffers`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers allocated from the global allocator (freelist miss, an
    /// oversize request, or copy mode — where every request is fresh).
    pub fresh_allocs: u64,
    /// Allocations served from the freelist without touching the
    /// allocator.
    pub recycled: u64,
    /// Buffers returned to the freelist at drop.
    pub released: u64,
    /// Buffers dropped at release instead of recycled (freelist full,
    /// nonstandard capacity, or copy mode).
    pub discarded: u64,
    /// Prepends that missed headroom and had to relocate the packet.
    pub shift_copies: u64,
    /// Total bytes moved by headroom-miss relocations and by ingest
    /// copies (copy mode's per-hop receive copy).
    pub bytes_copied: u64,
}

struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
    zero_copy: bool,
    poison: bool,
}

/// A shared, recycling allocator for packet buffers.
///
/// Cloning is cheap (reference-counted); a [`Network`](crate::network)
/// hands one clone to every node so buffers released anywhere serve
/// allocations everywhere.
#[derive(Clone)]
pub struct PacketPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl Default for PacketPool {
    fn default() -> Self {
        PacketPool::new()
    }
}

impl fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("PacketPool")
            .field("free", &inner.free.len())
            .field("zero_copy", &inner.zero_copy)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl PacketPool {
    /// A fresh pool: zero-copy mode on, poison-on-release in debug builds.
    pub fn new() -> PacketPool {
        PacketPool {
            inner: Rc::new(RefCell::new(PoolInner {
                free: Vec::new(),
                stats: PoolStats::default(),
                zero_copy: true,
                poison: cfg!(debug_assertions),
            })),
        }
    }

    /// Switch between the fast path (`true`, default: recycled buffers
    /// with headroom) and copy mode (`false`: every allocation fresh and
    /// exact-size, every layer boundary a copy — the pre-pool behavior,
    /// E15's baseline arm). Packet *contents* are identical either way.
    pub fn set_zero_copy(&self, on: bool) {
        self.inner.borrow_mut().zero_copy = on;
    }

    /// Whether the fast path is active.
    pub fn zero_copy(&self) -> bool {
        self.inner.borrow().zero_copy
    }

    /// Enable or disable poison-filling released buffers.
    pub fn set_poison(&self, on: bool) {
        self.inner.borrow_mut().poison = on;
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Current freelist occupancy, in buffers.
    pub fn free_buffers(&self) -> usize {
        self.inner.borrow().free.len()
    }

    /// Allocate a buffer with `len` zeroed payload bytes and (in
    /// zero-copy mode) `headroom` spare bytes in front for headers to be
    /// prepended into. Copy mode ignores `headroom` — exact-size, fresh,
    /// like the `Vec` builders this pool replaced.
    pub fn alloc(&self, headroom: usize, len: usize) -> PacketBuf {
        let mut inner = self.inner.borrow_mut();
        if !inner.zero_copy {
            inner.stats.fresh_allocs += 1;
            return PacketBuf {
                data: vec![0; len],
                start: 0,
                pool: Some(self.clone()),
            };
        }
        let total = headroom + len;
        let data = if total <= BUF_CAPACITY {
            match inner.free.pop() {
                Some(mut buf) => {
                    inner.stats.recycled += 1;
                    // Released buffers come back cleared, so this zeroes
                    // the whole live range within retained capacity.
                    buf.resize(total, 0);
                    buf
                }
                None => {
                    inner.stats.fresh_allocs += 1;
                    let mut buf = Vec::with_capacity(BUF_CAPACITY);
                    buf.resize(total, 0);
                    buf
                }
            }
        } else {
            // Oversize: exact allocation, never recycled.
            inner.stats.fresh_allocs += 1;
            vec![0; total]
        };
        PacketBuf {
            data,
            start: headroom,
            pool: Some(self.clone()),
        }
    }

    /// Attach this pool to a buffer born outside it (a fragment, an ICMP
    /// error build) without copying, so its relocations are counted and
    /// its memory recycled if compatible.
    pub fn adopt(&self, buf: PacketBuf) -> PacketBuf {
        buf.adopt(self)
    }

    /// Take ownership of an incoming buffer on the receive path. The
    /// fast path passes it through untouched; copy mode pays the
    /// per-hop receive copy the old `payload().to_vec()` used to.
    pub fn ingest(&self, buf: PacketBuf) -> PacketBuf {
        if self.zero_copy() {
            return buf.adopt(self);
        }
        let mut copy = self.alloc(0, buf.len());
        copy.copy_from_slice(&buf);
        self.inner.borrow_mut().stats.bytes_copied += buf.len() as u64;
        copy
    }

    fn release(&self, mut data: Vec<u8>) {
        let mut inner = self.inner.borrow_mut();
        if inner.zero_copy && data.capacity() == BUF_CAPACITY && inner.free.len() < MAX_FREE {
            inner.stats.released += 1;
            if inner.poison {
                data.fill(POISON);
            }
            data.clear();
            inner.free.push(data);
        } else {
            inner.stats.discarded += 1;
        }
    }
}

/// An owned packet buffer whose logical start can move backwards into
/// headroom (header prepend) or forwards (header strip), without moving
/// the bytes. Dereferences to the live byte range; drops back into its
/// pool.
pub struct PacketBuf {
    data: Vec<u8>,
    start: usize,
    pool: Option<PacketPool>,
}

impl PacketBuf {
    /// Wrap a plain vector (no pool, no headroom). Prepends onto such a
    /// buffer relocate it; it is freed, not recycled, unless a pool
    /// [`ingest`](PacketPool::ingest)s it first.
    pub fn from_vec(data: Vec<u8>) -> PacketBuf {
        PacketBuf {
            data,
            start: 0,
            pool: None,
        }
    }

    /// Attach `pool` if the buffer doesn't already belong to one, so its
    /// eventual drop recycles and its copies are counted.
    fn adopt(mut self, pool: &PacketPool) -> PacketBuf {
        if self.pool.is_none() {
            self.pool = Some(pool.clone());
        }
        self
    }

    /// Number of live bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Spare bytes in front of the live range.
    pub fn headroom(&self) -> usize {
        self.start
    }

    /// Strip `n` bytes off the front in place (e.g. an Ethernet header
    /// on receive); they become headroom for a later prepend.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of packet");
        self.start += n;
    }

    /// Grow the live range `n` bytes backwards into headroom (e.g. to
    /// emit a header in front of a payload already in place). If the
    /// headroom is short the packet relocates — one counted copy, the
    /// exact cost the fast path exists to avoid.
    pub fn prepend(&mut self, n: usize) {
        if self.start >= n {
            self.start -= n;
            return;
        }
        let len = self.len();
        let mut relocated = match &self.pool {
            Some(pool) => {
                let headroom = if pool.zero_copy() { HEADROOM } else { 0 };
                let buf = pool.alloc(headroom, n + len);
                let mut inner = pool.inner.borrow_mut();
                inner.stats.shift_copies += 1;
                inner.stats.bytes_copied += len as u64;
                drop(inner);
                buf
            }
            None => PacketBuf::from_vec(vec![0; n + len]),
        };
        relocated[n..].copy_from_slice(&self.data[self.start..]);
        *self = relocated;
    }

    /// Shrink the live range to its first `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.len(), "truncate beyond end of packet");
        self.data.truncate(self.start + len);
    }

    /// Sever the buffer from its pool: on drop it goes back to the
    /// allocator instead of a freelist. Parallel shard lanes call this
    /// on frames crossing a lane boundary — a buffer must never hold a
    /// handle to a pool owned by another lane's thread. Contents and
    /// headroom are untouched, so dumps cannot tell.
    pub fn detach(&mut self) {
        self.pool = None;
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(data: Vec<u8>) -> PacketBuf {
        PacketBuf::from_vec(data)
    }
}

impl Deref for PacketBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for PacketBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PacketBuf")
            .field("len", &self.len())
            .field("headroom", &self.start)
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release(std::mem::take(&mut self.data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_within_headroom_moves_no_bytes() {
        let pool = PacketPool::new();
        let mut buf = pool.alloc(HEADROOM, 4);
        buf.copy_from_slice(b"data");
        let before = pool.stats();
        buf.prepend(20);
        buf[..2].copy_from_slice(b"ip");
        assert_eq!(buf.len(), 24);
        assert_eq!(buf.headroom(), HEADROOM - 20);
        assert_eq!(&buf[20..], b"data");
        let after = pool.stats();
        assert_eq!(after.shift_copies, before.shift_copies);
        assert_eq!(after.bytes_copied, before.bytes_copied);
        assert_eq!(after.fresh_allocs, before.fresh_allocs);
    }

    #[test]
    fn prepend_past_headroom_relocates_and_is_counted() {
        let pool = PacketPool::new();
        let mut buf = pool.alloc(2, 3);
        buf.copy_from_slice(b"xyz");
        buf.prepend(14);
        assert_eq!(buf.len(), 17);
        assert_eq!(&buf[14..], b"xyz");
        let stats = pool.stats();
        assert_eq!(stats.shift_copies, 1);
        assert_eq!(stats.bytes_copied, 3);
        // The relocation re-established full headroom.
        assert_eq!(buf.headroom(), HEADROOM);
    }

    #[test]
    fn advance_then_prepend_round_trips() {
        let pool = PacketPool::new();
        let mut buf = pool.alloc(0, 8);
        buf.copy_from_slice(b"hdrABCDE");
        buf.advance(3);
        assert_eq!(&buf[..], b"ABCDE");
        buf.prepend(3);
        assert_eq!(&buf[..], b"hdrABCDE");
        assert_eq!(pool.stats().shift_copies, 0);
    }

    #[test]
    fn drop_recycles_and_next_alloc_reuses() {
        let pool = PacketPool::new();
        let buf = pool.alloc(HEADROOM, 100);
        drop(buf);
        assert_eq!(pool.free_buffers(), 1);
        let stats = pool.stats();
        assert_eq!((stats.fresh_allocs, stats.released), (1, 1));
        let _again = pool.alloc(HEADROOM, 50);
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.stats().fresh_allocs, 1, "steady state allocates nothing");
    }

    #[test]
    fn recycled_buffers_never_leak_stale_bytes() {
        // The regression the poison exists to catch: packet A's bytes
        // must be unobservable in packet B, including in the headroom a
        // later prepend exposes and in the tail beyond B's length.
        let pool = PacketPool::new();
        pool.set_poison(true);
        let mut secret = pool.alloc(HEADROOM, 1200);
        secret.iter_mut().for_each(|b| *b = 0x42);
        drop(secret);

        let mut reused = pool.alloc(HEADROOM, 64);
        assert_eq!(pool.stats().recycled, 1, "test must exercise reuse");
        assert!(
            reused.iter().all(|&b| b == 0),
            "live range shows stale or poison bytes"
        );
        // Expose the entire headroom: hygiene requires it zeroed too.
        reused.prepend(HEADROOM);
        assert!(
            reused.iter().all(|&b| b == 0),
            "headroom leaked bytes from the previous packet"
        );
    }

    #[test]
    fn poisoned_release_fills_buffer() {
        let pool = PacketPool::new();
        pool.set_poison(true);
        let mut buf = pool.alloc(0, 32);
        buf.iter_mut().for_each(|b| *b = 0x77);
        drop(buf);
        let inner = pool.inner.borrow();
        let freed = inner.free.last().unwrap();
        // Released buffers are length-0 (content cleared); the poison
        // lives in the spare capacity and is re-zeroed per alloc. Verify
        // via a fresh alloc over the full capacity instead.
        assert!(freed.is_empty());
        drop(inner);
        let big = pool.alloc(0, BUF_CAPACITY);
        assert!(big.iter().all(|&b| b == 0));
    }

    #[test]
    fn copy_mode_allocates_fresh_and_exact_every_time() {
        let pool = PacketPool::new();
        pool.set_zero_copy(false);
        let a = pool.alloc(HEADROOM, 10);
        assert_eq!(a.headroom(), 0, "copy mode grants no headroom");
        drop(a);
        assert_eq!(pool.free_buffers(), 0, "copy mode never recycles");
        let mut b = pool.alloc(HEADROOM, 10);
        b.prepend(14);
        let stats = pool.stats();
        assert_eq!(stats.fresh_allocs, 3, "every layer is an allocation");
        assert_eq!(stats.recycled, 0);
        assert_eq!(stats.shift_copies, 1);
        assert_eq!(stats.bytes_copied, 10);
    }

    #[test]
    fn ingest_is_identity_on_fast_path_and_a_copy_in_copy_mode() {
        let pool = PacketPool::new();
        let buf = pool.ingest(PacketBuf::from_vec(b"abc".to_vec()));
        assert_eq!(&buf[..], b"abc");
        assert_eq!(pool.stats().bytes_copied, 0);

        pool.set_zero_copy(false);
        let buf = pool.ingest(PacketBuf::from_vec(b"abcd".to_vec()));
        assert_eq!(&buf[..], b"abcd");
        let stats = pool.stats();
        assert_eq!(stats.bytes_copied, 4);
        assert_eq!(stats.fresh_allocs, 1);
    }

    #[test]
    fn oversize_requests_fall_back_to_exact_allocation() {
        let pool = PacketPool::new();
        let big = pool.alloc(HEADROOM, 64 * 1024);
        assert_eq!(big.len(), 64 * 1024);
        drop(big);
        assert_eq!(pool.free_buffers(), 0, "oversize buffers are not pooled");
        assert_eq!(pool.stats().discarded, 1);
    }

    #[test]
    fn from_vec_buffers_work_without_a_pool() {
        let mut buf = PacketBuf::from_vec(b"payload".to_vec());
        buf.prepend(2);
        buf[..2].copy_from_slice(b"ip");
        assert_eq!(&buf[..], b"ippayload");
        buf.advance(2);
        buf.truncate(4);
        assert_eq!(&buf[..], b"payl");
    }
}
