//! Network interfaces: a node's attachment points.
//!
//! An interface binds an IP address + prefix to a link and knows the
//! link's framing. Point-to-point trunks (ARPANET, SATNET, serial lines)
//! carry bare IP datagrams; LAN links use Ethernet framing with ARP.

use catenet_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};

/// How datagrams are framed on the attached link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Bare IP datagrams (point-to-point trunks).
    RawIp,
    /// Ethernet II frames with ARP resolution.
    Ethernet,
}

impl Framing {
    /// Link-layer overhead per frame, in bytes.
    pub const fn overhead(self) -> usize {
        match self {
            Framing::RawIp => 0,
            Framing::Ethernet => catenet_wire::ethernet::HEADER_LEN,
        }
    }
}

/// One attachment point.
#[derive(Debug, Clone)]
pub struct Iface {
    /// Our IP address on this network.
    pub addr: Ipv4Address,
    /// The network this interface sits on.
    pub cidr: Ipv4Cidr,
    /// Our hardware address (meaningful with Ethernet framing).
    pub hardware: EthernetAddress,
    /// The peer's IP address (point-to-point links have exactly one).
    pub peer: Ipv4Address,
    /// MTU of the attached link, in *IP datagram* bytes (link MTU minus
    /// framing overhead).
    pub ip_mtu: usize,
    /// Framing on this link.
    pub framing: Framing,
    /// Administrative state.
    pub up: bool,
}

impl Iface {
    /// Whether `dst` is on this interface's network.
    pub fn on_link(&self, dst: Ipv4Address) -> bool {
        self.cidr.contains(dst)
    }

    /// Whether `dst` is this network's directed broadcast (or limited
    /// broadcast).
    pub fn is_broadcast(&self, dst: Ipv4Address) -> bool {
        dst.is_broadcast() || dst == self.cidr.broadcast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface() -> Iface {
        Iface {
            addr: Ipv4Address::new(10, 0, 0, 1),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 30),
            hardware: EthernetAddress::new(2, 0, 0, 0, 0, 1),
            peer: Ipv4Address::new(10, 0, 0, 2),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        }
    }

    #[test]
    fn on_link_detection() {
        let iface = iface();
        assert!(iface.on_link(Ipv4Address::new(10, 0, 0, 2)));
        assert!(!iface.on_link(Ipv4Address::new(10, 0, 0, 5)));
    }

    #[test]
    fn broadcast_detection() {
        let iface = iface();
        assert!(iface.is_broadcast(Ipv4Address::BROADCAST));
        assert!(iface.is_broadcast(Ipv4Address::new(10, 0, 0, 3))); // /30 broadcast
        assert!(!iface.is_broadcast(Ipv4Address::new(10, 0, 0, 2)));
    }

    #[test]
    fn framing_overhead() {
        assert_eq!(Framing::RawIp.overhead(), 0);
        assert_eq!(Framing::Ethernet.overhead(), 14);
    }
}
