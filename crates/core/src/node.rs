//! A node: host or gateway.
//!
//! The same struct plays both roles because the architecture says they
//! differ in exactly one bit — whether the node forwards datagrams that
//! are not addressed to it. What each *keeps* differs profoundly:
//!
//! - A **gateway** keeps topology state (routing tables, learned by the
//!   distance-vector protocol) and *optionally* soft flow state and an
//!   accounting ledger. None of it describes any conversation; all of it
//!   is reconstructible. Crash a gateway and reboot it: connections
//!   running through it stall briefly and resume (experiment E1).
//! - A **host** keeps every byte of conversation state: TCP sockets,
//!   reassembly buffers, estimators. Crash a host and its conversations
//!   die *with* it — which is precisely fate-sharing's promise: state is
//!   lost only when the entity that cared about it is gone too.

use crate::accounting::Ledger;
use crate::arp::{ArpCache, Resolution};
use crate::flow::{FlowId, FlowTable};
use crate::iface::{Framing, Iface};
use crate::pool::{PacketBuf, PacketPool, HEADROOM};
use crate::socket::UdpSocket;
use catenet_ip::{fragment, icmp, FragError, Reassembler, RoutingTable};
use catenet_routing::{DvEngine, ExportPolicy, RipMessage, RIP_PORT};
use catenet_sim::{Duration, Instant};
use catenet_tcp::{Endpoint, Socket as TcpSocket, SocketConfig as TcpConfig, State as TcpState};
use catenet_wire::{
    ethernet, ipv4, ArpOperation, ArpPacket, ArpRepr, DstUnreachable, EtherType, EthernetAddress,
    EthernetFrame, EthernetRepr, Icmpv4Message, Icmpv4Packet, Icmpv4Repr, IpProtocol, Ipv4Address,
    Ipv4Cidr, Ipv4Packet, Ipv4Repr, TcpControl, TcpPacket, TcpRepr, TcpSeqNumber, TimeExceeded,
    Tos, UdpPacket, UdpRepr,
};
use std::collections::HashMap;

/// Host or gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// End system: terminates transports, never forwards.
    Host,
    /// Packet switch: forwards, runs routing, holds no conversation state.
    Gateway,
}

/// Counters a node keeps about its own behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// IP datagrams handed up from links.
    pub ip_received: u64,
    /// Datagrams delivered to local protocols.
    pub ip_delivered: u64,
    /// Datagrams forwarded toward other nodes.
    pub ip_forwarded: u64,
    /// Datagrams originated by local sockets/protocols.
    pub ip_originated: u64,
    /// Drops: bad header checksum or unparseable.
    pub dropped_malformed: u64,
    /// Drops: no route to destination.
    pub dropped_no_route: u64,
    /// Drops: TTL expired in transit.
    pub dropped_ttl: u64,
    /// Drops: node was dead.
    pub dropped_dead: u64,
    /// Drops: DF set but fragmentation required.
    pub dropped_df: u64,
    /// Drops: virtual-circuit gateway had no circuit (baseline mode).
    pub dropped_no_circuit: u64,
    /// Drops: transport checksum failures.
    pub dropped_transport_checksum: u64,
    /// Drops: payload CRC32C option present but mismatched — corruption
    /// the 16-bit Internet checksum failed to catch.
    pub dropped_payload_crc: u64,
    /// Fragments created while forwarding or originating.
    pub frags_created: u64,
    /// ICMP messages generated.
    pub icmp_sent: u64,
    /// ICMP messages received for local consumption.
    pub icmp_received: u64,
    /// RSTs sent for segments with no matching socket.
    pub rst_sent: u64,
    /// ICMP source quenches emitted on queue overflow.
    pub quench_sent: u64,
    /// ICMP source quenches received and applied to local sockets.
    pub quench_applied: u64,
    /// ARP requests retransmitted after no reply (backoff timer).
    pub arp_retries: u64,
    /// Drops: ARP pending queue overflowed (or entry raced to Known).
    pub dropped_arp_unresolved: u64,
    /// Drops: ARP resolution gave up after exhausting its retries.
    pub dropped_arp_gave_up: u64,
    /// Drops: frame arrived for an interface index we don't have.
    pub dropped_bad_iface: u64,
    /// Drops: this (compromised) gateway silently ate a datagram for a
    /// victim prefix it had attracted with a black-hole advertisement.
    pub dropped_byzantine: u64,
}

/// An ICMP message delivered to this node (for ping apps and error
/// reporting).
#[derive(Debug, Clone)]
pub struct IcmpEvent {
    /// Arrival time.
    pub at: Instant,
    /// Source of the ICMP datagram.
    pub from: Ipv4Address,
    /// The message.
    pub message: Icmpv4Message,
    /// The ICMP payload (echo data, or the quoted original datagram).
    pub payload: Vec<u8>,
}

/// A host or gateway with its interfaces, sockets and protocol state.
pub struct Node {
    /// Display name.
    pub name: String,
    /// Host or gateway.
    pub role: NodeRole,
    /// False while crashed.
    pub alive: bool,
    /// Attachment points. Index = interface number everywhere.
    pub ifaces: Vec<Iface>,
    /// Per-interface ARP caches (used by Ethernet framing).
    arp: Vec<ArpCache>,
    /// Static routes (hosts; also gateway fallback).
    pub static_routes: RoutingTable<(usize, Option<Ipv4Address>)>,
    /// The distance-vector engine (gateways).
    pub dv: Option<DvEngine>,
    /// Export policy per interface (multi-AS boundaries).
    pub dv_policies: Vec<ExportPolicy>,
    reassembler: Reassembler,
    /// UDP sockets.
    pub udp_sockets: Vec<UdpSocket>,
    /// TCP sockets.
    pub tcp_sockets: Vec<TcpSocket>,
    /// Soft-state flow table (gateways, when enabled).
    pub flows: Option<FlowTable>,
    /// Accounting ledger (gateways, when enabled).
    pub ledger: Option<Ledger>,
    /// Virtual-circuit mode (baseline): per-connection forwarding state.
    pub vc_table: Option<HashMap<FlowId, usize>>,
    /// ICMP messages awaiting the application.
    icmp_inbox: Vec<IcmpEvent>,
    /// Frames ready for the network to push onto links.
    outbox: Vec<(usize, PacketBuf)>,
    /// The buffer pool all tx/rx packet memory comes from. Standalone
    /// nodes own a private pool; a [`Network`](crate::network) replaces
    /// it with the shared one at attach time so buffers recycle across
    /// the whole internetwork.
    pool: PacketPool,
    ip_ident: u16,
    next_ephemeral: u16,
    isn_counter: u32,
    /// Counters.
    pub stats: NodeStats,
    /// Default TTL for originated datagrams.
    pub default_ttl: u8,
    /// Whether this node emits ICMP source quench on queue overflow
    /// (RFC 792's congestion signal — gateways only, on by default).
    pub source_quench_enabled: bool,
    /// Rate limiter: last quench emission time.
    last_quench: Instant,
    /// Prefixes whose transit traffic this node silently eats — set by
    /// the fault driver while the node is compromised with a black-hole
    /// attack (the lie attracts the traffic; this makes the lie lethal).
    pub blackhole_prefixes: Vec<Ipv4Cidr>,
}

impl Node {
    /// A node with no interfaces yet (the network builder attaches them).
    pub fn new(name: impl Into<String>, role: NodeRole) -> Node {
        let dv = match role {
            NodeRole::Gateway => Some(DvEngine::new(catenet_routing::DvConfig::fast())),
            NodeRole::Host => None,
        };
        Node {
            name: name.into(),
            role,
            alive: true,
            ifaces: Vec::new(),
            arp: Vec::new(),
            static_routes: RoutingTable::new(),
            dv,
            dv_policies: Vec::new(),
            reassembler: Reassembler::new(),
            udp_sockets: Vec::new(),
            tcp_sockets: Vec::new(),
            flows: None,
            ledger: None,
            vc_table: None,
            icmp_inbox: Vec::new(),
            outbox: Vec::new(),
            pool: PacketPool::new(),
            ip_ident: 1,
            next_ephemeral: 49_152,
            isn_counter: 0x0001_0000,
            stats: NodeStats::default(),
            default_ttl: 64,
            source_quench_enabled: role == NodeRole::Gateway,
            last_quench: Instant::ZERO,
            blackhole_prefixes: Vec::new(),
        }
    }

    /// Replace this node's packet pool (the network shares one pool
    /// across all its nodes so buffers recycle internetwork-wide).
    pub fn set_pool(&mut self, pool: PacketPool) {
        self.pool = pool;
    }

    /// Move the node onto `pool` and sever every buffer it currently
    /// holds (outbox, ARP pending queues) from whichever pool allocated
    /// it. Used when the network splits into parallel shard lanes: each
    /// lane gets a private pool, and no retained buffer may keep a
    /// handle into another lane's freelist.
    pub(crate) fn rehome_pool(&mut self, pool: PacketPool) {
        self.pool = pool;
        for (_, frame) in self.outbox.iter_mut() {
            frame.detach();
        }
        for arp in self.arp.iter_mut() {
            arp.detach_pending();
        }
    }

    /// Attach an interface; returns its index.
    pub fn attach_iface(&mut self, iface: Iface) -> usize {
        let index = self.ifaces.len();
        if let Some(dv) = &mut self.dv {
            dv.add_connected(iface.cidr.network(), index);
        }
        self.ifaces.push(iface);
        self.arp.push(ArpCache::new());
        self.dv_policies.push(ExportPolicy::All);
        index
    }

    /// Whether `addr` is one of our addresses.
    pub fn owns_addr(&self, addr: Ipv4Address) -> bool {
        self.ifaces.iter().any(|iface| iface.addr == addr)
    }

    /// Our address on interface `iface`.
    pub fn addr(&self, iface: usize) -> Ipv4Address {
        self.ifaces[iface].addr
    }

    /// The primary (first-interface) address.
    pub fn primary_addr(&self) -> Ipv4Address {
        self.ifaces.first().map(|i| i.addr).unwrap_or_default()
    }

    /// The IP reassembler — the single source of truth for completed,
    /// timed-out and evicted reassemblies (its counters reset on crash,
    /// like everything else volatile: fate-sharing applies to telemetry
    /// too).
    pub fn reassembler(&self) -> &Reassembler {
        &self.reassembler
    }

    // ------------------------------------------------------------ fate

    /// Crash: all volatile state dies. What a node loses here is the
    /// paper's survivability story in one function.
    pub fn crash(&mut self) {
        self.alive = false;
        // Conversation state (host): gone, and *should* be.
        self.tcp_sockets.clear();
        self.udp_sockets.clear();
        self.reassembler = Reassembler::new();
        self.icmp_inbox.clear();
        self.outbox.clear();
        // Topology state (gateway): gone, but reconstructible.
        if let Some(dv) = &mut self.dv {
            dv.clear();
        }
        for cache in &mut self.arp {
            cache.clear();
        }
        // Soft state: gone, rebuilds from traffic.
        if let Some(flows) = &mut self.flows {
            flows.lose();
        }
        if let Some(ledger) = &mut self.ledger {
            ledger.clear();
        }
        // Hard state in the network (VC baseline): gone, NOT
        // reconstructible — that is the point of experiment E1.
        if let Some(vc) = &mut self.vc_table {
            vc.clear();
        }
    }

    /// Reboot: interfaces come back, connected routes are re-declared
    /// (configuration, not conversation), and everything else re-learns.
    pub fn restart(&mut self) {
        self.alive = true;
        if let Some(dv) = &mut self.dv {
            dv.clear();
            for (index, iface) in self.ifaces.iter().enumerate() {
                dv.add_connected(iface.cidr.network(), index);
            }
        }
    }

    // --------------------------------------------------------- sockets

    /// Replace the distance-vector configuration (gateways only),
    /// re-declaring connected networks into the fresh engine.
    pub fn set_dv_config(&mut self, config: catenet_routing::DvConfig) {
        let Some(old) = &self.dv else {
            return;
        };
        // The guard policy, the signing identity and the prefix-owner
        // registry are configuration, like the timers: they survive an
        // engine swap.
        let guard_policy = *old.guard().policy();
        let registry = old.guard().registry().cloned();
        let attestor = old.attestor().copied();
        let mut dv = DvEngine::new(config);
        dv.set_guard_policy(guard_policy);
        dv.guard_mut().set_registry(registry);
        dv.set_attestor(attestor);
        for (index, iface) in self.ifaces.iter().enumerate() {
            dv.add_connected(iface.cidr.network(), index);
        }
        self.dv = Some(dv);
    }

    /// Bind a UDP socket; returns its handle.
    pub fn udp_bind(&mut self, port: u16) -> usize {
        self.udp_sockets.push(UdpSocket::bind(port));
        self.udp_sockets.len() - 1
    }

    /// Open a TCP connection; returns the socket handle.
    pub fn tcp_connect(
        &mut self,
        remote: Endpoint,
        mut config: TcpConfig,
        now: Instant,
    ) -> Result<usize, catenet_tcp::TcpError> {
        let (iface, _) = self
            .route(remote.addr)
            .ok_or(catenet_tcp::TcpError::InvalidState)?;
        let local = Endpoint::new(self.ifaces[iface].addr, self.alloc_port());
        config.initial_seq = self.next_isn();
        let mut socket = TcpSocket::new(config);
        socket.connect(local, remote, now)?;
        self.tcp_sockets.push(socket);
        Ok(self.tcp_sockets.len() - 1)
    }

    /// Open a listening TCP socket on `port`; returns the handle.
    pub fn tcp_listen(&mut self, port: u16, mut config: TcpConfig) -> usize {
        config.initial_seq = self.next_isn();
        let mut socket = TcpSocket::new(config);
        socket
            .listen(Endpoint::new(Ipv4Address::UNSPECIFIED, port))
            .expect("fresh socket listens");
        self.tcp_sockets.push(socket);
        self.tcp_sockets.len() - 1
    }

    fn alloc_port(&mut self) -> u16 {
        let port = self.next_ephemeral;
        self.next_ephemeral = if self.next_ephemeral == u16::MAX {
            49_152
        } else {
            self.next_ephemeral + 1
        };
        port
    }

    fn next_isn(&mut self) -> u32 {
        // RFC 793's 4 µs clock would also do; a strided counter keeps
        // distinct connections apart deterministically.
        self.isn_counter = self.isn_counter.wrapping_add(64_007);
        self.isn_counter
    }

    /// Send an ICMP echo request (ping).
    pub fn send_ping(
        &mut self,
        dst: Ipv4Address,
        ident: u16,
        seq_no: u16,
        payload_len: usize,
        now: Instant,
    ) {
        let repr = Icmpv4Repr {
            message: Icmpv4Message::EchoRequest { ident, seq_no },
            payload_len,
        };
        let mut buf = self.payload_buf(repr.buffer_len());
        let mut packet = Icmpv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        for (i, byte) in packet.payload_mut().iter_mut().enumerate() {
            *byte = (i % 251) as u8;
        }
        packet.fill_checksum();
        let src = self
            .route(dst)
            .map(|(iface, _)| self.ifaces[iface].addr)
            .unwrap_or_else(|| self.primary_addr());
        self.prepend_ip(&mut buf, src, dst, IpProtocol::Icmp, Tos::default());
        self.route_and_send(now, buf);
    }

    /// Drain the ICMP inbox.
    pub fn take_icmp_events(&mut self) -> Vec<IcmpEvent> {
        core::mem::take(&mut self.icmp_inbox)
    }

    // --------------------------------------------------------- routing

    /// Forwarding decision: which interface, and the next hop's address.
    pub fn route(&self, dst: Ipv4Address) -> Option<(usize, Ipv4Address)> {
        // Directly attached networks win.
        for (index, iface) in self.ifaces.iter().enumerate() {
            if iface.up && iface.on_link(dst) {
                return Some((index, dst));
            }
        }
        if let Some(dv) = &self.dv {
            if let Some(route) = dv.lookup(dst) {
                let iface = route.next_hop.iface();
                if self.ifaces.get(iface).is_some_and(|i| i.up) {
                    return Some((iface, route.next_hop.gateway().unwrap_or(dst)));
                }
            }
        }
        if let Some((iface, gateway)) = self.static_routes.lookup(dst) {
            if self.ifaces.get(*iface).is_some_and(|i| i.up) {
                return Some((*iface, gateway.unwrap_or(dst)));
            }
        }
        None
    }

    /// A pooled buffer holding `len` zeroed payload bytes, with headroom
    /// for the IP and link headers to be prepended in front of them.
    fn payload_buf(&mut self, len: usize) -> PacketBuf {
        self.pool.alloc(HEADROOM, len)
    }

    /// Emit an IPv4 header *in front of* the transport payload already
    /// sitting in `buf` — the fast path's replacement for building the
    /// datagram into a fresh allocation and copying the payload across.
    fn prepend_ip(
        &mut self,
        buf: &mut PacketBuf,
        src: Ipv4Address,
        dst: Ipv4Address,
        protocol: IpProtocol,
        tos: Tos,
    ) {
        let ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        self.stats.ip_originated += 1;
        let repr = Ipv4Repr {
            src_addr: src,
            dst_addr: dst,
            protocol,
            payload_len: buf.len(),
            hop_limit: self.default_ttl,
            tos,
        };
        buf.prepend(ipv4::HEADER_LEN);
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.set_ident(ident);
        packet.fill_checksum();
    }

    /// Route a locally originated datagram and transmit it.
    pub fn route_and_send(&mut self, now: Instant, datagram: impl Into<PacketBuf>) {
        let datagram = datagram.into();
        let dst = match Ipv4Packet::new_checked(&datagram[..]) {
            Ok(packet) => packet.dst_addr(),
            Err(_) => {
                self.stats.dropped_malformed += 1;
                return;
            }
        };
        match self.route(dst) {
            Some((iface, next_hop)) => self.output_datagram(now, iface, next_hop, datagram),
            None => self.stats.dropped_no_route += 1,
        }
    }

    /// Fragment (if needed), frame, and queue a datagram on `iface`.
    fn output_datagram(
        &mut self,
        now: Instant,
        iface: usize,
        next_hop: Ipv4Address,
        datagram: impl Into<PacketBuf>,
    ) {
        let datagram = datagram.into();
        if !self.alive || !self.ifaces[iface].up {
            self.stats.dropped_dead += 1;
            return;
        }
        let mtu = self.ifaces[iface].ip_mtu;
        if datagram.len() <= mtu {
            self.frame_and_push(now, iface, next_hop, datagram);
            return;
        }
        match fragment(&datagram, mtu) {
            Ok(pieces) => {
                self.stats.frags_created += pieces.len() as u64;
                for piece in pieces {
                    // Fragment buffers are fresh exact-size allocations
                    // (a residual copy site — see ROADMAP); adopt them so
                    // the link-header prepend is at least counted.
                    let piece = self.pool.adopt(PacketBuf::from_vec(piece));
                    self.frame_and_push(now, iface, next_hop, piece);
                }
            }
            Err(FragError::DontFragment) => {
                self.stats.dropped_df += 1;
                self.send_icmp_error(
                    now,
                    &datagram,
                    Icmpv4Message::DstUnreachable(DstUnreachable::FragRequired),
                );
            }
            Err(_) => self.stats.dropped_malformed += 1,
        }
    }

    fn frame_and_push(
        &mut self,
        now: Instant,
        iface: usize,
        next_hop: Ipv4Address,
        mut datagram: PacketBuf,
    ) {
        match self.ifaces[iface].framing {
            Framing::RawIp => self.outbox.push((iface, datagram)),
            Framing::Ethernet => {
                if let Some(hw) = self.arp[iface].get(next_hop, now) {
                    self.prepend_ethernet(iface, hw, EtherType::Ipv4, &mut datagram);
                    self.outbox.push((iface, datagram));
                    return;
                }
                match self.arp[iface].resolve(next_hop, datagram, now) {
                    // `get()` above missed at the same instant, so
                    // `resolve` cannot hit; if it somehow does, the
                    // datagram was consumed — count it, don't panic.
                    Resolution::Known(_) => self.stats.dropped_arp_unresolved += 1,
                    Resolution::RequestAndWait => {
                        let request = self.build_arp_request(iface, next_hop);
                        self.outbox.push((iface, request));
                    }
                    Resolution::Wait => {}
                    Resolution::QueueFull => self.stats.dropped_arp_unresolved += 1,
                }
            }
        }
    }

    /// Emit an Ethernet header into the headroom in front of `frame`'s
    /// current contents (an IP datagram headed for the wire).
    fn prepend_ethernet(
        &self,
        iface: usize,
        dst: EthernetAddress,
        ethertype: EtherType,
        frame: &mut PacketBuf,
    ) {
        let repr = EthernetRepr {
            src_addr: self.ifaces[iface].hardware,
            dst_addr: dst,
            ethertype,
        };
        frame.prepend(ethernet::HEADER_LEN);
        repr.emit(&mut EthernetFrame::new_unchecked(&mut frame[..]));
    }

    fn build_arp_request(&self, iface: usize, target: Ipv4Address) -> PacketBuf {
        let arp = ArpRepr {
            operation: ArpOperation::Request,
            source_hardware_addr: self.ifaces[iface].hardware,
            source_protocol_addr: self.ifaces[iface].addr,
            target_hardware_addr: EthernetAddress::default(),
            target_protocol_addr: target,
        };
        let mut buf = self.pool.alloc(ethernet::HEADER_LEN, arp.buffer_len());
        arp.emit(&mut ArpPacket::new_unchecked(&mut buf[..]));
        self.prepend_ethernet(iface, EthernetAddress::BROADCAST, EtherType::Arp, &mut buf);
        buf
    }

    /// Take the frames queued for transmission. Tests use this; the
    /// network drains via [`swap_outbox`](Node::swap_outbox), which
    /// reuses one scratch vector instead of allocating per pass.
    pub fn take_outbox(&mut self) -> Vec<(usize, PacketBuf)> {
        core::mem::take(&mut self.outbox)
    }

    /// Exchange the (empty) `scratch` vector for the full outbox; the
    /// network drains `scratch` and hands it back next pass.
    pub(crate) fn swap_outbox(&mut self, scratch: &mut Vec<(usize, PacketBuf)>) {
        core::mem::swap(&mut self.outbox, scratch);
    }

    // ------------------------------------------------------- reception

    /// A frame arrived on `iface`.
    pub fn handle_frame(&mut self, now: Instant, iface: usize, frame: impl Into<PacketBuf>) {
        let mut frame = frame.into();
        if !self.alive {
            self.stats.dropped_dead += 1;
            return;
        }
        let Some(framing) = self.ifaces.get(iface).map(|i| i.framing) else {
            self.stats.dropped_bad_iface += 1;
            return;
        };
        match framing {
            Framing::RawIp => self.handle_datagram(now, frame),
            Framing::Ethernet => {
                let ethertype = {
                    let Ok(parsed) = EthernetFrame::new_checked(&frame[..]) else {
                        self.stats.dropped_malformed += 1;
                        return;
                    };
                    // Address filter: us or broadcast/multicast.
                    let dst = parsed.dst_addr();
                    if dst != self.ifaces[iface].hardware && dst.is_unicast() {
                        return;
                    }
                    parsed.ethertype()
                };
                match ethertype {
                    EtherType::Arp => self.handle_arp(now, iface, &frame[ethernet::HEADER_LEN..]),
                    EtherType::Ipv4 => {
                        // Strip the link header in place: the bytes stay
                        // put and become headroom for the next hop's
                        // framing. (Copy mode pays the receive copy the
                        // old `payload().to_vec()` made here.)
                        frame.advance(ethernet::HEADER_LEN);
                        let datagram = self.pool.ingest(frame);
                        self.handle_datagram(now, datagram);
                    }
                    EtherType::Unknown(_) => {}
                }
            }
        }
    }

    fn handle_arp(&mut self, now: Instant, iface: usize, payload: &[u8]) {
        let Ok(packet) = ArpPacket::new_checked(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let Ok(repr) = ArpRepr::parse(&packet) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        // Learn the sender either way (gratuitous or directed).
        let released =
            self.arp[iface].learn(repr.source_protocol_addr, repr.source_hardware_addr, now);
        for mut datagram in released {
            self.prepend_ethernet(iface, repr.source_hardware_addr, EtherType::Ipv4, &mut datagram);
            self.outbox.push((iface, datagram));
        }
        if repr.operation == ArpOperation::Request
            && repr.target_protocol_addr == self.ifaces[iface].addr
        {
            let reply = ArpRepr {
                operation: ArpOperation::Reply,
                source_hardware_addr: self.ifaces[iface].hardware,
                source_protocol_addr: self.ifaces[iface].addr,
                target_hardware_addr: repr.source_hardware_addr,
                target_protocol_addr: repr.source_protocol_addr,
            };
            let mut buf = self.pool.alloc(ethernet::HEADER_LEN, reply.buffer_len());
            reply.emit(&mut ArpPacket::new_unchecked(&mut buf[..]));
            self.prepend_ethernet(iface, repr.source_hardware_addr, EtherType::Arp, &mut buf);
            self.outbox.push((iface, buf));
        }
    }

    /// An IP datagram arrived (already stripped of framing).
    pub fn handle_datagram(&mut self, now: Instant, datagram: impl Into<PacketBuf>) {
        let datagram = datagram.into();
        self.stats.ip_received += 1;
        let (dst, is_fragment, header_ok) = match Ipv4Packet::new_checked(&datagram[..]) {
            Ok(packet) => (packet.dst_addr(), packet.is_fragment(), packet.verify_checksum()),
            Err(_) => {
                self.stats.dropped_malformed += 1;
                return;
            }
        };
        if !header_ok {
            self.stats.dropped_malformed += 1;
            return;
        }

        // Observation points (gateways): ledger and soft flow state see
        // every datagram that transits, local or forwarded.
        if let Some(ledger) = &mut self.ledger {
            ledger.record(&datagram);
        }
        if let Some(flows) = &mut self.flows {
            flows.observe(&datagram, now);
        }

        let local = self.owns_addr(dst)
            || self
                .ifaces
                .iter()
                .any(|iface| iface.up && iface.is_broadcast(dst));

        if local {
            if is_fragment {
                match self.reassembler.push(&datagram, now) {
                    // The reassembler's own `completed` counter is the
                    // single source of truth for rebuilt datagrams.
                    Ok(Some(whole)) => self.deliver_local(now, whole),
                    Ok(None) => {}
                    Err(_) => self.stats.dropped_malformed += 1,
                }
            } else {
                self.deliver_local(now, datagram);
            }
            return;
        }

        if self.role == NodeRole::Gateway {
            self.forward(now, datagram);
        }
        // Hosts silently drop strangers' datagrams.
    }

    fn forward(&mut self, now: Instant, mut datagram: PacketBuf) {
        // Virtual-circuit baseline: no circuit, no forwarding.
        if self.vc_table.is_some() && !self.vc_admit(&datagram) {
            self.stats.dropped_no_circuit += 1;
            return;
        }
        let (dst, expired) = {
            let mut packet = Ipv4Packet::new_unchecked(&mut datagram[..]);
            let ttl = packet.decrement_hop_limit();
            (packet.dst_addr(), ttl == 0)
        };
        if expired {
            self.stats.dropped_ttl += 1;
            self.send_icmp_error(
                now,
                &datagram,
                Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired),
            );
            return;
        }
        // A compromised gateway eats victim-prefix transit silently —
        // no ICMP, no log: from the outside it looks like the path
        // simply lost the datagram, which is what makes a routing
        // black hole so hard to diagnose.
        if self
            .blackhole_prefixes
            .iter()
            .any(|prefix| prefix.contains(dst))
        {
            self.stats.dropped_byzantine += 1;
            return;
        }
        match self.route(dst) {
            Some((iface, next_hop)) => {
                self.stats.ip_forwarded += 1;
                self.output_datagram(now, iface, next_hop, datagram);
            }
            None => {
                self.stats.dropped_no_route += 1;
                self.send_icmp_error(
                    now,
                    &datagram,
                    Icmpv4Message::DstUnreachable(DstUnreachable::NetUnreachable),
                );
            }
        }
    }

    /// Virtual-circuit admission (baseline `vc`): TCP SYNs install
    /// circuits; everything else needs one. Non-TCP traffic is admitted
    /// (the baseline pins *connection* state, the paper's §3 target).
    fn vc_admit(&mut self, datagram: &[u8]) -> bool {
        let Ok(packet) = Ipv4Packet::new_checked(datagram) else {
            return false;
        };
        if packet.protocol() != IpProtocol::Tcp || packet.is_fragment() {
            return true;
        }
        let Ok(tcp) = TcpPacket::new_checked(packet.payload()) else {
            return true;
        };
        let Some(id) = FlowId::of_datagram(datagram) else {
            return true;
        };
        let out_iface = self.route(packet.dst_addr()).map(|(iface, _)| iface);
        let Some(vc) = self.vc_table.as_mut() else {
            // Only called in VC mode; admit rather than panic if not.
            return true;
        };
        if tcp.syn() {
            if let Some(iface) = out_iface {
                vc.insert(id, iface);
            }
            true
        } else {
            vc.contains_key(&id)
        }
    }

    /// The network layer reports that a frame this node offered to a
    /// link was tail-dropped (queue overflow). A 1988 gateway answers
    /// with ICMP source quench toward the datagram's source — the era's
    /// only explicit congestion signal (rate-limited here, as RFC 1122
    /// demands of all ICMP error generation).
    pub fn on_queue_drop(&mut self, now: Instant, iface: usize, frame: &[u8]) {
        if !self.source_quench_enabled || !self.alive {
            return;
        }
        // Rate limit: at most one quench per 2 ms.
        if now.duration_since(self.last_quench) < Duration::from_millis(2)
            && self.last_quench != Instant::ZERO
        {
            return;
        }
        let Some(framing) = self.ifaces.get(iface).map(|i| i.framing) else {
            self.stats.dropped_bad_iface += 1;
            return;
        };
        let datagram = match framing {
            Framing::RawIp => frame,
            Framing::Ethernet => {
                let Ok(eth) = EthernetFrame::new_checked(frame) else {
                    return;
                };
                if eth.ethertype() != EtherType::Ipv4 {
                    return;
                }
                &frame[catenet_wire::ethernet::HEADER_LEN..]
            }
        };
        // Don't quench our own originations (the socket already sees
        // the loss); only transit traffic.
        if let Ok(packet) = Ipv4Packet::new_checked(datagram) {
            if self.owns_addr(packet.src_addr()) {
                return;
            }
        }
        self.last_quench = now;
        self.stats.quench_sent += 1;
        self.send_icmp_error(now, datagram, Icmpv4Message::SourceQuench);
    }

    /// Parse the datagram quote inside an ICMP error: returns
    /// (src, dst, protocol, src_port, dst_port). The quote is only the
    /// header + 8 bytes, so full packet validation is impossible —
    /// exactly the situation real stacks face.
    fn parse_icmp_quote(quote: &[u8]) -> Option<(Ipv4Address, Ipv4Address, IpProtocol, u16, u16)> {
        if quote.len() < 20 || quote[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(quote[0] & 0x0f) * 4;
        if ihl < 20 || quote.len() < ihl + 4 {
            return None;
        }
        let src = Ipv4Address::from_bytes(&quote[12..16]);
        let dst = Ipv4Address::from_bytes(&quote[16..20]);
        let protocol = IpProtocol::from(quote[9]);
        let src_port = u16::from_be_bytes([quote[ihl], quote[ihl + 1]]);
        let dst_port = u16::from_be_bytes([quote[ihl + 2], quote[ihl + 3]]);
        Some((src, dst, protocol, src_port, dst_port))
    }

    fn send_icmp_error(&mut self, now: Instant, original: &[u8], message: Icmpv4Message) {
        // Source the error from the interface facing the sender.
        let replier = match Ipv4Packet::new_checked(original) {
            Ok(packet) => self
                .route(packet.src_addr())
                .map(|(iface, _)| self.ifaces[iface].addr)
                .unwrap_or_else(|| self.primary_addr()),
            Err(_) => return,
        };
        if let Some(error) = icmp::icmp_error_for(original, message, replier) {
            self.stats.icmp_sent += 1;
            self.route_and_send(now, error);
        }
    }

    fn deliver_local(&mut self, now: Instant, datagram: impl Into<PacketBuf>) {
        let datagram = datagram.into();
        self.stats.ip_delivered += 1;
        let Ok(packet) = Ipv4Packet::new_checked(&datagram[..]) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let src = packet.src_addr();
        let dst = packet.dst_addr();
        let protocol = packet.protocol();
        // Borrow, don't copy: the transport layers read the payload in
        // place and copy only what genuinely changes owner (socket rx).
        let payload = packet.payload();

        match protocol {
            IpProtocol::Icmp => self.deliver_icmp(now, src, dst, &datagram, payload),
            IpProtocol::Udp => self.deliver_udp(now, src, dst, &datagram, payload),
            IpProtocol::Tcp => self.deliver_tcp(now, src, dst, payload),
            IpProtocol::Unknown(_) => {
                self.send_icmp_error(
                    now,
                    &datagram,
                    Icmpv4Message::DstUnreachable(DstUnreachable::ProtoUnreachable),
                );
            }
        }
    }

    fn deliver_icmp(
        &mut self,
        now: Instant,
        src: Ipv4Address,
        dst: Ipv4Address,
        _datagram: &[u8],
        payload: &[u8],
    ) {
        let Ok(packet) = Icmpv4Packet::new_checked(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let Ok(repr) = Icmpv4Repr::parse(&packet) else {
            self.stats.dropped_transport_checksum += 1;
            return;
        };
        self.stats.icmp_received += 1;
        match repr.message {
            Icmpv4Message::EchoRequest { ident, seq_no } => {
                // Answer with an echo reply carrying the same payload.
                let reply = Icmpv4Repr {
                    message: Icmpv4Message::EchoReply { ident, seq_no },
                    payload_len: repr.payload_len,
                };
                let mut buf = self.payload_buf(reply.buffer_len());
                let mut out = Icmpv4Packet::new_unchecked(&mut buf[..]);
                reply.emit(&mut out);
                out.payload_mut().copy_from_slice(packet.payload());
                out.fill_checksum();
                self.stats.icmp_sent += 1;
                self.prepend_ip(&mut buf, dst, src, IpProtocol::Icmp, Tos::default());
                self.route_and_send(now, buf);
            }
            Icmpv4Message::SourceQuench => {
                // Steer the quench to the TCP connection it quotes: the
                // quoted datagram is one WE sent, so its source is our
                // local endpoint.
                if let Some((q_src, q_dst, proto, sport, dport)) =
                    Self::parse_icmp_quote(packet.payload())
                {
                    if proto == IpProtocol::Tcp {
                        let target = self.tcp_sockets.iter_mut().find(|socket| {
                            socket.local() == Endpoint::new(q_src, sport)
                                && socket.remote() == Endpoint::new(q_dst, dport)
                        });
                        if let Some(socket) = target {
                            socket.on_source_quench();
                            self.stats.quench_applied += 1;
                        }
                    }
                }
                self.icmp_inbox.push(IcmpEvent {
                    at: now,
                    from: src,
                    message: Icmpv4Message::SourceQuench,
                    payload: packet.payload().to_vec(),
                });
            }
            message => {
                self.icmp_inbox.push(IcmpEvent {
                    at: now,
                    from: src,
                    message,
                    payload: packet.payload().to_vec(),
                });
            }
        }
    }

    fn deliver_udp(
        &mut self,
        now: Instant,
        src: Ipv4Address,
        dst: Ipv4Address,
        datagram: &[u8],
        payload: &[u8],
    ) {
        let Ok(packet) = UdpPacket::new_checked(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let Ok(repr) = UdpRepr::parse(&packet, src, dst) else {
            self.stats.dropped_transport_checksum += 1;
            return;
        };
        // Routing advertisements are consumed by the gateway itself;
        // hosts ignore routing chatter silently (RFC 1058 §3.1 — they
        // may listen passively, but never answer with ICMP errors).
        if repr.dst_port == RIP_PORT {
            if self.dv.is_some() {
                self.handle_rip(now, src, packet.payload());
            }
            return;
        }
        let from = Endpoint::new(src, repr.src_port);
        match self
            .udp_sockets
            .iter_mut()
            .find(|socket| socket.local_port == repr.dst_port)
        {
            Some(socket) => socket.deliver(from, now, packet.payload().to_vec()),
            None => {
                self.send_icmp_error(
                    now,
                    datagram,
                    Icmpv4Message::DstUnreachable(DstUnreachable::PortUnreachable),
                );
            }
        }
    }

    fn handle_rip(&mut self, now: Instant, from: Ipv4Address, payload: &[u8]) {
        let Ok(message) = RipMessage::decode(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        // Which interface faces this neighbor?
        let Some(iface) = self
            .ifaces
            .iter()
            .position(|i| i.up && i.on_link(from))
        else {
            return;
        };
        if let Some(dv) = &mut self.dv {
            dv.handle_update(from, iface, &message.entries, now);
        }
    }

    fn deliver_tcp(&mut self, now: Instant, src: Ipv4Address, dst: Ipv4Address, payload: &[u8]) {
        let Ok(packet) = TcpPacket::new_checked(payload) else {
            self.stats.dropped_malformed += 1;
            return;
        };
        let Ok(repr) = TcpRepr::parse(&packet, src, dst) else {
            self.stats.dropped_transport_checksum += 1;
            return;
        };
        let data = packet.payload();
        // Opt-in strong integrity: verify the payload CRC32C whenever
        // the sender carried one. This catches exactly the corruption
        // classes the one's-complement checksum is blind to; the drop
        // leaves recovery to TCP retransmission, like any other loss.
        if let Some(crc) = repr.payload_crc {
            if crc != catenet_wire::crc32c(data) {
                self.stats.dropped_payload_crc += 1;
                return;
            }
        }
        // Synchronized sockets first, then listeners.
        let target = self
            .tcp_sockets
            .iter()
            .position(|s| s.state() != TcpState::Listen && s.accepts(dst, src, &repr))
            .or_else(|| {
                self.tcp_sockets
                    .iter()
                    .position(|s| s.state() == TcpState::Listen && s.accepts(dst, src, &repr))
            });
        match target {
            Some(index) => {
                self.tcp_sockets[index].process(now, dst, src, &repr, data);
            }
            None => {
                // RFC 793: a segment to nowhere earns an RST (unless it
                // is itself an RST).
                if repr.control != TcpControl::Rst {
                    self.send_tcp_rst(now, src, dst, &repr, data.len());
                }
            }
        }
    }

    fn send_tcp_rst(
        &mut self,
        now: Instant,
        src: Ipv4Address,
        dst: Ipv4Address,
        offending: &TcpRepr,
        payload_len: usize,
    ) {
        self.stats.rst_sent += 1;
        let rst = match offending.ack_number {
            Some(ack) => TcpRepr {
                src_port: offending.dst_port,
                dst_port: offending.src_port,
                control: TcpControl::Rst,
                seq_number: ack,
                ack_number: None,
                window_len: 0,
                max_seg_size: None,
                payload_crc: None,
                payload_len: 0,
            },
            None => TcpRepr {
                src_port: offending.dst_port,
                dst_port: offending.src_port,
                control: TcpControl::Rst,
                seq_number: TcpSeqNumber(0),
                ack_number: Some(
                    offending.seq_number + payload_len + offending.control.len(),
                ),
                window_len: 0,
                max_seg_size: None,
                payload_crc: None,
                payload_len: 0,
            },
        };
        let mut buf = self.build_tcp_segment(&rst, &[], dst, src);
        self.prepend_ip(&mut buf, dst, src, IpProtocol::Tcp, Tos::default());
        self.route_and_send(now, buf);
    }

    /// A pooled buffer holding the emitted TCP segment, headroom in
    /// front for the IP header. The one copy here — socket payload into
    /// the wire buffer — is the transfer of ownership from socket land
    /// to packet land; everything downstream prepends in place.
    fn build_tcp_segment(
        &mut self,
        repr: &TcpRepr,
        payload: &[u8],
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> PacketBuf {
        let mut buf = self.payload_buf(repr.buffer_len());
        let mut packet = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(payload);
        packet.fill_checksum(src, dst);
        buf
    }

    // --------------------------------------------------------- service

    /// Run the node's periodic machinery and drain socket output.
    /// Called by the network after event delivery and on timer wakes.
    pub fn service(&mut self, now: Instant) {
        if !self.alive {
            return;
        }
        // Reassembly timeouts (counted by the reassembler itself).
        let _ = self.reassembler.expire(now);
        self.service_arp(now);
        if let Some(flows) = &mut self.flows {
            flows.expire_idle(now);
        }
        // Routing protocol.
        self.service_dv(now);
        // Transports.
        self.service_tcp(now);
        self.service_udp(now);
    }

    /// Expire stale ARP entries and drive the request retry machinery:
    /// due requests are retransmitted with backoff; resolutions that
    /// exhausted their attempts drop their pending datagrams (counted,
    /// not silent).
    fn service_arp(&mut self, now: Instant) {
        let mut retries: Vec<(usize, Ipv4Address)> = Vec::new();
        for (index, cache) in self.arp.iter_mut().enumerate() {
            cache.flush_expired(now);
            let tick = cache.tick(now);
            for target in tick.retries {
                self.stats.arp_retries += 1;
                retries.push((index, target));
            }
            for (_, dropped) in tick.gave_up {
                self.stats.dropped_arp_gave_up += dropped as u64;
            }
        }
        for (iface, target) in retries {
            if !self.ifaces[iface].up {
                continue;
            }
            let request = self.build_arp_request(iface, target);
            self.outbox.push((iface, request));
        }
    }

    fn service_dv(&mut self, now: Instant) {
        let Some(dv) = &mut self.dv else {
            return;
        };
        dv.tick(now);
        let periodic = dv.periodic_due(now);
        let triggered = dv.triggered_due();
        if !periodic && !triggered {
            return;
        }
        let mut to_send: Vec<(usize, Vec<u8>)> = Vec::new();
        for (index, iface) in self.ifaces.iter().enumerate() {
            if !iface.up {
                continue;
            }
            let entries =
                dv.advertisement_for(index, &self.dv_policies[index], periodic);
            if entries.is_empty() && !periodic {
                continue;
            }
            for message in RipMessage::paginate(entries) {
                to_send.push((index, message.encode()));
            }
        }
        dv.advertisements_sent(now);
        for (iface, payload) in to_send {
            let datagram = self.build_udp_datagram(
                self.ifaces[iface].addr,
                RIP_PORT,
                Endpoint::new(self.ifaces[iface].peer, RIP_PORT),
                Tos::default(),
                &payload,
            );
            let next_hop = self.ifaces[iface].peer;
            self.output_datagram(now, iface, next_hop, datagram);
        }
    }

    fn build_udp_datagram(
        &mut self,
        src: Ipv4Address,
        src_port: u16,
        to: Endpoint,
        tos: Tos,
        payload: &[u8],
    ) -> PacketBuf {
        let udp_repr = UdpRepr {
            src_port,
            dst_port: to.port,
            payload_len: payload.len(),
        };
        let mut buf = self.payload_buf(udp_repr.buffer_len());
        {
            let mut udp = UdpPacket::new_unchecked(&mut buf[..]);
            udp_repr.emit(&mut udp);
            udp.payload_mut().copy_from_slice(payload);
            udp.fill_checksum(src, to.addr);
        }
        self.prepend_ip(&mut buf, src, to.addr, IpProtocol::Udp, tos);
        buf
    }

    fn service_tcp(&mut self, now: Instant) {
        for index in 0..self.tcp_sockets.len() {
            while let Some((repr, payload)) = self.tcp_sockets[index].dispatch(now) {
                let local = self.tcp_sockets[index].local();
                let remote = self.tcp_sockets[index].remote();
                let mut buf = self.build_tcp_segment(&repr, &payload, local.addr, remote.addr);
                self.prepend_ip(&mut buf, local.addr, remote.addr, IpProtocol::Tcp, Tos::default());
                self.route_and_send(now, buf);
            }
        }
    }

    fn service_udp(&mut self, now: Instant) {
        for index in 0..self.udp_sockets.len() {
            while let Some((to, payload)) = self.udp_sockets[index].take_tx() {
                let Some((iface, _)) = self.route(to.addr) else {
                    self.stats.dropped_no_route += 1;
                    continue;
                };
                let src = self.ifaces[iface].addr;
                let (src_port, tos) = {
                    let socket = &self.udp_sockets[index];
                    (socket.local_port, socket.tos)
                };
                let datagram = self.build_udp_datagram(src, src_port, to, tos, &payload);
                self.route_and_send(now, datagram);
            }
        }
    }

    /// When this node next needs a timer wake.
    pub fn poll_at(&self, now: Instant) -> Option<Instant> {
        if !self.alive {
            return None;
        }
        let mut earliest: Option<Instant> = None;
        let mut consider = |at: Instant| {
            earliest = Some(match earliest {
                Some(current) => current.min(at),
                None => at,
            });
        };
        for socket in &self.tcp_sockets {
            if let Some(at) = socket.poll_at() {
                // `Instant::ZERO` means "immediately".
                consider(if at <= now { now } else { at });
            }
        }
        if let Some(dv) = &self.dv {
            consider(dv.poll_at().max(now));
        }
        if self.reassembler.in_progress() > 0 {
            consider(now + Duration::from_secs(1));
        }
        for cache in &self.arp {
            if let Some(at) = cache.next_event() {
                consider(at.max(now));
            }
        }
        earliest
    }
}

impl core::fmt::Debug for Node {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("role", &self.role)
            .field("alive", &self.alive)
            .field("ifaces", &self.ifaces.len())
            .field("tcp_sockets", &self.tcp_sockets.len())
            .field("udp_sockets", &self.udp_sockets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Ipv4Cidr;

    fn host_with_iface() -> Node {
        let mut node = Node::new("h", NodeRole::Host);
        node.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 0, 1),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 30),
            hardware: EthernetAddress::new(2, 0, 0, 0, 0, 1),
            peer: Ipv4Address::new(10, 0, 0, 2),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        });
        node.static_routes.insert(
            Ipv4Cidr::new(Ipv4Address::UNSPECIFIED, 0),
            (0, Some(Ipv4Address::new(10, 0, 0, 2))),
        );
        node
    }

    #[test]
    fn route_prefers_on_link() {
        let node = host_with_iface();
        let (iface, next_hop) = node.route(Ipv4Address::new(10, 0, 0, 2)).unwrap();
        assert_eq!(iface, 0);
        assert_eq!(next_hop, Ipv4Address::new(10, 0, 0, 2));
        // Off-link goes via the default gateway.
        let (_, next_hop) = node.route(Ipv4Address::new(192, 0, 2, 1)).unwrap();
        assert_eq!(next_hop, Ipv4Address::new(10, 0, 0, 2));
    }

    #[test]
    fn echo_request_generates_reply_in_outbox() {
        let mut node = host_with_iface();
        // Hand-build an echo request addressed to the node.
        let icmp_repr = Icmpv4Repr {
            message: Icmpv4Message::EchoRequest { ident: 7, seq_no: 1 },
            payload_len: 4,
        };
        let mut icmp_buf = vec![0u8; icmp_repr.buffer_len()];
        let mut icmp = Icmpv4Packet::new_unchecked(&mut icmp_buf[..]);
        icmp_repr.emit(&mut icmp);
        icmp.payload_mut().copy_from_slice(b"ping");
        icmp.fill_checksum();
        let datagram = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: Ipv4Address::new(10, 0, 0, 2),
                dst_addr: Ipv4Address::new(10, 0, 0, 1),
                protocol: IpProtocol::Icmp,
                payload_len: icmp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            9,
            false,
            &icmp_buf,
        );
        node.handle_frame(Instant::ZERO, 0, datagram);
        let outbox = node.take_outbox();
        assert_eq!(outbox.len(), 1);
        let reply = Ipv4Packet::new_checked(&outbox[0].1[..]).unwrap();
        assert_eq!(reply.dst_addr(), Ipv4Address::new(10, 0, 0, 2));
        let reply_icmp = Icmpv4Packet::new_checked(reply.payload()).unwrap();
        let parsed = Icmpv4Repr::parse(&reply_icmp).unwrap();
        assert_eq!(
            parsed.message,
            Icmpv4Message::EchoReply { ident: 7, seq_no: 1 }
        );
        assert_eq!(reply_icmp.payload(), b"ping");
    }

    #[test]
    fn udp_to_closed_port_earns_port_unreachable() {
        let mut node = host_with_iface();
        let datagram = {
            let mut tmp = Node::new("x", NodeRole::Host);
            tmp.build_udp_datagram(
                Ipv4Address::new(10, 0, 0, 2),
                5000,
                Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 4444),
                Tos::default(),
                b"anyone home?",
            )
        };
        node.handle_frame(Instant::ZERO, 0, datagram);
        let outbox = node.take_outbox();
        assert_eq!(outbox.len(), 1);
        let error = Ipv4Packet::new_checked(&outbox[0].1[..]).unwrap();
        assert_eq!(error.protocol(), IpProtocol::Icmp);
        let icmp = Icmpv4Packet::new_checked(error.payload()).unwrap();
        let parsed = Icmpv4Repr::parse(&icmp).unwrap();
        assert_eq!(
            parsed.message,
            Icmpv4Message::DstUnreachable(DstUnreachable::PortUnreachable)
        );
        assert_eq!(node.stats.icmp_sent, 1);
    }

    #[test]
    fn udp_to_open_port_delivered() {
        let mut node = host_with_iface();
        let handle = node.udp_bind(4444);
        let datagram = {
            let mut tmp = Node::new("x", NodeRole::Host);
            tmp.build_udp_datagram(
                Ipv4Address::new(10, 0, 0, 2),
                5000,
                Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 4444),
                Tos::default(),
                b"hello",
            )
        };
        node.handle_frame(Instant::from_millis(3), 0, datagram);
        let received = node.udp_sockets[handle].recv().unwrap();
        assert_eq!(received.payload, b"hello");
        assert_eq!(received.from, Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 5000));
        assert_eq!(received.at, Instant::from_millis(3));
    }

    #[test]
    fn tcp_to_closed_port_earns_rst() {
        let mut node = host_with_iface();
        let syn = TcpRepr {
            src_port: 1234,
            dst_port: 80,
            control: TcpControl::Syn,
            seq_number: TcpSeqNumber(1000),
            ack_number: None,
            window_len: 100,
            max_seg_size: None,
            payload_crc: None,
            payload_len: 0,
        };
        let segment = node.build_tcp_segment(
            &syn,
            &[],
            Ipv4Address::new(10, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
        );
        let datagram = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: Ipv4Address::new(10, 0, 0, 2),
                dst_addr: Ipv4Address::new(10, 0, 0, 1),
                protocol: IpProtocol::Tcp,
                payload_len: segment.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            1,
            false,
            &segment,
        );
        node.handle_frame(Instant::ZERO, 0, datagram);
        assert_eq!(node.stats.rst_sent, 1);
        let outbox = node.take_outbox();
        assert_eq!(outbox.len(), 1);
        let ip = Ipv4Packet::new_checked(&outbox[0].1[..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.rst());
        // RST to a SYN without ACK must ack seq+1.
        assert_eq!(tcp.ack_number(), TcpSeqNumber(1001));
    }

    #[test]
    fn dead_node_drops_everything() {
        let mut node = host_with_iface();
        node.crash();
        node.handle_frame(Instant::ZERO, 0, vec![0u8; 40]);
        assert_eq!(node.stats.dropped_dead, 1);
        assert!(node.take_outbox().is_empty());
    }

    #[test]
    fn crash_destroys_sockets_restart_does_not_restore_them() {
        let mut node = host_with_iface();
        node.udp_bind(9);
        node.tcp_listen(80, TcpConfig::default());
        node.crash();
        node.restart();
        assert!(node.udp_sockets.is_empty(), "fate-sharing: sockets died");
        assert!(node.tcp_sockets.is_empty());
        assert!(node.alive);
    }

    #[test]
    fn gateway_restart_relearns_connected_routes() {
        let mut gw = Node::new("g", NodeRole::Gateway);
        gw.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 0, 2),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 30),
            hardware: EthernetAddress::new(2, 0, 0, 0, 0, 2),
            peer: Ipv4Address::new(10, 0, 0, 1),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        });
        assert_eq!(gw.dv.as_ref().unwrap().live_routes(), 1);
        gw.crash();
        assert_eq!(gw.dv.as_ref().unwrap().live_routes(), 0);
        gw.restart();
        assert_eq!(gw.dv.as_ref().unwrap().live_routes(), 1);
    }

    #[test]
    fn ephemeral_ports_and_isns_distinct() {
        let mut node = host_with_iface();
        let p1 = node.alloc_port();
        let p2 = node.alloc_port();
        assert_ne!(p1, p2);
        let isn1 = node.next_isn();
        let isn2 = node.next_isn();
        assert_ne!(isn1, isn2);
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded() {
        let mut gw = Node::new("g", NodeRole::Gateway);
        gw.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 0, 2),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 30),
            hardware: EthernetAddress::default(),
            peer: Ipv4Address::new(10, 0, 0, 1),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        });
        gw.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 1, 1),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 1, 0), 30),
            hardware: EthernetAddress::default(),
            peer: Ipv4Address::new(10, 0, 1, 2),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        });
        // A datagram with TTL 1 destined beyond the gateway.
        let datagram = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: Ipv4Address::new(10, 0, 0, 1),
                dst_addr: Ipv4Address::new(10, 0, 1, 2),
                protocol: IpProtocol::Udp,
                payload_len: 8,
                hop_limit: 1,
                tos: Tos::default(),
            },
            1,
            false,
            &[0u8; 8],
        );
        gw.handle_frame(Instant::ZERO, 0, datagram);
        assert_eq!(gw.stats.dropped_ttl, 1);
        let outbox = gw.take_outbox();
        assert_eq!(outbox.len(), 1, "ICMP time exceeded emitted");
        assert_eq!(outbox[0].0, 0, "sent back toward the source");
        let ip = Ipv4Packet::new_checked(&outbox[0].1[..]).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Icmp);
    }

    #[test]
    fn forwarding_fragments_to_smaller_mtu() {
        let mut gw = Node::new("g", NodeRole::Gateway);
        gw.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 0, 2),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 30),
            hardware: EthernetAddress::default(),
            peer: Ipv4Address::new(10, 0, 0, 1),
            ip_mtu: 1500,
            framing: Framing::RawIp,
            up: true,
        });
        gw.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 1, 1),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 1, 0), 30),
            hardware: EthernetAddress::default(),
            peer: Ipv4Address::new(10, 0, 1, 2),
            ip_mtu: 296,
            framing: Framing::RawIp,
            up: true,
        });
        let datagram = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: Ipv4Address::new(10, 0, 0, 1),
                dst_addr: Ipv4Address::new(10, 0, 1, 2),
                protocol: IpProtocol::Udp,
                payload_len: 1000,
                hop_limit: 64,
                tos: Tos::default(),
            },
            42,
            false,
            &vec![0xAB; 1000],
        );
        gw.handle_frame(Instant::ZERO, 0, datagram);
        let outbox = gw.take_outbox();
        assert!(outbox.len() >= 4, "fragmented: got {}", outbox.len());
        assert!(outbox.iter().all(|(iface, frame)| *iface == 1 && frame.len() <= 296));
        assert_eq!(gw.stats.frags_created as usize, outbox.len());
        assert_eq!(gw.stats.ip_forwarded, 1);
    }

    fn ethernet_host() -> Node {
        let mut node = Node::new("h", NodeRole::Host);
        node.attach_iface(Iface {
            addr: Ipv4Address::new(10, 0, 0, 1),
            cidr: Ipv4Cidr::new(Ipv4Address::new(10, 0, 0, 0), 24),
            hardware: EthernetAddress::new(2, 0, 0, 0, 0, 1),
            peer: Ipv4Address::new(10, 0, 0, 2),
            ip_mtu: 1500,
            framing: Framing::Ethernet,
            up: true,
        });
        node
    }

    fn count_arp_requests(outbox: &[(usize, PacketBuf)]) -> usize {
        outbox
            .iter()
            .filter(|(_, frame)| {
                EthernetFrame::new_checked(&frame[..])
                    .is_ok_and(|eth| eth.ethertype() == EtherType::Arp)
            })
            .count()
    }

    #[test]
    fn unanswered_arp_retries_with_backoff_then_gives_up() {
        let mut node = ethernet_host();
        let peer = Ipv4Address::new(10, 0, 0, 2);
        node.output_datagram(Instant::ZERO, 0, peer, b"a datagram".to_vec());
        let first = node.take_outbox();
        assert_eq!(count_arp_requests(&first), 1, "initial request emitted");

        // Nobody answers. Drive the node by its own timers; each due
        // tick must emit exactly one retransmitted request until the
        // cache abandons the resolution.
        let mut retransmissions = 0;
        let mut now = Instant::ZERO;
        while let Some(at) = node.poll_at(now) {
            now = at;
            node.service(now);
            retransmissions += count_arp_requests(&node.take_outbox());
        }
        assert_eq!(
            retransmissions as u32,
            crate::arp::MAX_REQUEST_ATTEMPTS - 1,
            "retries beyond the initial request"
        );
        assert_eq!(node.stats.arp_retries, u64::from(crate::arp::MAX_REQUEST_ATTEMPTS - 1));
        assert_eq!(node.stats.dropped_arp_gave_up, 1, "queued datagram dropped on give-up");
        assert_eq!(node.stats.dropped_arp_unresolved, 0, "queue never overflowed");
        // Give-up: 1+2+4+8 s of backoff plus the final 8 s wait.
        assert_eq!(now, Instant::from_secs(23));
    }

    #[test]
    fn arp_reply_flushes_pending_and_cancels_retries() {
        let mut node = ethernet_host();
        let peer = Ipv4Address::new(10, 0, 0, 2);
        let peer_hw = EthernetAddress::new(2, 0, 0, 0, 0, 2);
        node.output_datagram(Instant::ZERO, 0, peer, b"a datagram".to_vec());
        node.take_outbox();
        // Peer answers before the first retry.
        let reply = ArpRepr {
            operation: ArpOperation::Reply,
            source_hardware_addr: peer_hw,
            source_protocol_addr: peer,
            target_hardware_addr: EthernetAddress::new(2, 0, 0, 0, 0, 1),
            target_protocol_addr: Ipv4Address::new(10, 0, 0, 1),
        };
        let mut buf = vec![0u8; reply.buffer_len()];
        reply.emit(&mut ArpPacket::new_unchecked(&mut buf[..]));
        let mut frame = PacketBuf::from_vec(buf);
        node.prepend_ethernet(0, EthernetAddress::new(2, 0, 0, 0, 0, 1), EtherType::Arp, &mut frame);
        node.handle_frame(Instant::from_millis(2), 0, frame);
        let outbox = node.take_outbox();
        assert_eq!(outbox.len(), 1, "pending datagram released");
        node.service(Instant::from_secs(30));
        assert_eq!(node.stats.arp_retries, 0, "no retries after resolution");
        assert_eq!(node.stats.dropped_arp_unresolved, 0);
        assert_eq!(node.stats.dropped_arp_gave_up, 0);
        assert!(count_arp_requests(&node.take_outbox()) == 0);
    }

    #[test]
    fn frame_for_unknown_iface_is_counted_not_a_panic() {
        let mut node = host_with_iface();
        node.handle_frame(Instant::ZERO, 7, vec![0u8; 40]);
        assert_eq!(node.stats.dropped_bad_iface, 1);
        assert!(node.take_outbox().is_empty());
    }

    #[test]
    fn random_wire_input_never_panics() {
        // Fuzz-ish sweep: arbitrary bytes, arbitrary (possibly invalid)
        // interface indices, through the full receive path on both
        // framings. The invariant is simply "no panic, ever".
        let mut rng = catenet_sim::Rng::from_seed(0xA12F_00D5);
        for case in 0..2000 {
            let mut node = if case % 2 == 0 {
                host_with_iface()
            } else {
                ethernet_host()
            };
            let len = rng.below(120) as usize;
            let mut frame = vec![0u8; len];
            for byte in &mut frame {
                *byte = rng.next_u32() as u8;
            }
            // Occasionally steer toward parseable-looking headers so the
            // deeper layers get exercised, not just the length checks.
            if len >= 20 && rng.chance(0.5) {
                frame[0] = 0x45; // IPv4, IHL 5
                if len >= 14 && case % 2 == 1 {
                    frame[12] = 0x08; // EtherType IPv4 or ARP
                    frame[13] = if rng.chance(0.5) { 0x00 } else { 0x06 };
                }
            }
            let iface = rng.below(3) as usize; // 0 valid, 1-2 invalid
            node.handle_frame(Instant::from_millis(case), iface, frame);
            node.service(Instant::from_millis(case + 1));
            node.take_outbox();
        }
    }
}
