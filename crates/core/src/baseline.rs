//! The architectures the paper *rejected*, implemented so the rejection
//! can be measured instead of taken on faith.
//!
//! | Module | Rejected design | Paper's argument against it |
//! |--------|-----------------|------------------------------|
//! | [`vc`] | Per-connection state in gateways (virtual circuits, X.25-style) | §3: state in the network dies with the network; fate-sharing puts it at the endpoints instead |
//! | [`linkarq`] | Hop-by-hop reliable links | §5/§7: reliability is not something the internet layer may demand of a network; end-to-end retransmission is the architecture's answer, at a measurable cost |
//! | [`pktseq`] | Packet-based transport sequencing | §"TCP": byte sequencing permits repacketization and coalescing; packet sequencing forbids both |

pub mod linkarq;
pub mod pktseq;
pub mod vc;
