//! Latency-aware lane partitioning: choose contiguous `NodeId` lane
//! boundaries that maximize the minimum latency of any cut link.
//!
//! The lane machinery requires lanes to be contiguous `NodeId` ranges
//! (every per-node vector is carved with `split_at_mut`), so the
//! partitioner does not renumber or permute nodes — it chooses the
//! K−1 *boundary positions*. That is exactly the degree of freedom the
//! conservative window protocol cares about: the per-pair lookahead is
//! bounded below by the cheapest cut link, so a boundary through an
//! Ethernet LAN (100 µs) collapses windows three hundredfold against a
//! boundary through a T1 trunk (30 ms). Builders used to carry this
//! burden by convention ("keep ring sizes a multiple of 16 so cells
//! never straddle a boundary"); the partitioner lifts it.
//!
//! **Objective.** Maximize the minimum `micros` over links cut by any
//! boundary, subject to a load-balance cap: no lane may exceed
//! `ceil(n/k)` plus 25 % slack. The search is a binary search over the
//! distinct link latencies — "can every link cheaper than T be kept
//! lane-internal?" is monotone in T — and each feasibility probe is a
//! small dynamic program over boundary positions (a link `a—b` with
//! `a < b` is cut by a boundary at `p` iff `a < p ≤ b`, so forcing it
//! internal forbids that interval of positions). Among feasible
//! placements the reconstruction picks each boundary nearest its
//! balanced ideal `s·n/k`, so the cut optimum never costs more balance
//! than the slack allows.
//!
//! The choice is advisory for *performance* only: safety never depends
//! on it. The per-pair lookahead matrix is computed **after** the split
//! from the lanes actually chosen, so a poor partition gives narrow
//! windows, never wrong bytes — and `Network::set_partitioner` is
//! therefore digest-neutral by construction (asserted by E17 across
//! partitioner on/off).

/// One undirected link, described by the conservative latency a cut
/// through it would impose on the window protocol (base propagation
/// plus the 1 µs serialization floor — see `Network::lane_reach`).
#[derive(Debug, Clone, Copy)]
pub struct CutLink {
    /// One endpoint (node index).
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Conservative one-hop latency in microseconds.
    pub micros: u64,
}

/// A chosen contiguous partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Half-open `(lo, hi)` node ranges, tiling `0..n` in order.
    pub bounds: Vec<(usize, usize)>,
    /// The cheapest link any boundary cuts — the lower bound the
    /// per-pair lookahead matrix will see. `None` when nothing is cut
    /// (k = 1, or the forced-internal set already disconnects lanes).
    pub cut_floor_micros: Option<u64>,
}

/// Maximum lane size for `n` nodes in `k` lanes: the even share plus
/// 25 % slack, so the cut search has room to slide boundaries without
/// starving a lane.
fn max_lane(n: usize, k: usize) -> usize {
    let base = n.div_ceil(k);
    (base + base.div_ceil(4)).min(n)
}

/// Positions `1..n` a boundary may occupy when every link cheaper than
/// `threshold` must stay lane-internal. `allowed[p]` covers a boundary
/// *before* node `p`.
fn allowed_positions(n: usize, links: &[CutLink], threshold: u64) -> Vec<bool> {
    // Difference array over forbidden intervals [a+1, b].
    let mut diff = vec![0i32; n + 1];
    for link in links {
        if link.a == link.b || link.micros >= threshold {
            continue;
        }
        let (a, b) = if link.a < link.b {
            (link.a, link.b)
        } else {
            (link.b, link.a)
        };
        diff[a + 1] += 1;
        diff[(b + 1).min(n)] -= 1;
    }
    let mut allowed = vec![false; n];
    let mut depth = 0i32;
    for (p, slot) in allowed.iter_mut().enumerate() {
        depth += diff[p];
        *slot = p > 0 && depth == 0;
    }
    allowed
}

/// Feasibility DP: `feasible[s][p]` = boundary `s` (1-based, of k−1)
/// can sit at position `p` with all segment sizes in `[1, max]`.
/// Returns one reachable-set row per boundary, or `None` if the last
/// boundary cannot leave a legal final segment.
fn boundary_sets(n: usize, k: usize, max: usize, allowed: &[bool]) -> Option<Vec<Vec<bool>>> {
    let mut rows: Vec<Vec<bool>> = Vec::with_capacity(k - 1);
    let mut prev: Vec<bool> = vec![false; n + 1];
    prev[0] = true; // sentinel "boundary 0" at position 0
    for _ in 1..k {
        let mut row = vec![false; n + 1];
        // Sliding count of reachable predecessors in [p−max, p−1].
        let mut live = 0usize;
        for p in 1..n {
            live += usize::from(prev[p - 1]);
            if p > max {
                live -= usize::from(prev[p - max - 1]);
            }
            row[p] = allowed[p] && live > 0;
        }
        if !row.iter().any(|&b| b) {
            return None;
        }
        rows.push(row);
        prev = rows.last().expect("just pushed").clone();
    }
    // The final segment must also fit.
    let last = rows.last().expect("k > 1");
    if !(n.saturating_sub(max)..n).any(|p| last[p]) {
        return None;
    }
    Some(rows)
}

/// Reconstruct boundary positions from the DP rows, choosing each one
/// nearest to its balanced ideal, back to front.
fn reconstruct(n: usize, k: usize, max: usize, rows: &[Vec<bool>]) -> Vec<usize> {
    let nearest = |row: &[bool], lo: usize, hi: usize, ideal: usize| -> usize {
        let mut best: Option<usize> = None;
        for (p, &ok) in row.iter().enumerate().take(hi + 1).skip(lo) {
            if ok && best.is_none_or(|q: usize| p.abs_diff(ideal) < q.abs_diff(ideal)) {
                best = Some(p);
            }
        }
        best.expect("DP row guaranteed a position in the window")
    };
    let mut positions = vec![0usize; k - 1];
    let mut upper = n; // exclusive successor boundary
    for s in (1..k).rev() {
        let lo = upper.saturating_sub(max).max(1);
        let hi = upper - 1;
        let ideal = s * n / k;
        positions[s - 1] = nearest(&rows[s - 1], lo, hi, ideal);
        upper = positions[s - 1];
    }
    positions
}

/// Choose K contiguous lanes over nodes `0..n`, maximizing the minimum
/// cut-link latency under the balance cap. Deterministic, O(n·k·log L)
/// for L distinct latencies. `k` is clamped to `[1, n]`.
pub fn partition(n: usize, k: usize, links: &[CutLink]) -> Partition {
    let k = k.clamp(1, n.max(1));
    if k <= 1 || n == 0 {
        return Partition {
            bounds: vec![(0, n)],
            cut_floor_micros: None,
        };
    }
    let max = max_lane(n, k);
    let mut lats: Vec<u64> = links
        .iter()
        .filter(|l| l.a != l.b)
        .map(|l| l.micros)
        .collect();
    lats.sort_unstable();
    lats.dedup();
    // Binary search the largest feasible threshold index. Index i > 0
    // means "every link with latency ≤ lats[i−1] forced internal"
    // (i = len forces every link); index 0 forces nothing and is always
    // feasible because equal chunks fit under `max`. Feasibility is
    // monotone — raising the threshold only removes allowed positions.
    let feasible = |idx: usize| -> Option<Vec<Vec<bool>>> {
        let threshold = if idx == 0 { 0 } else { lats[idx - 1].saturating_add(1) };
        let allowed = allowed_positions(n, links, threshold);
        boundary_sets(n, k, max, &allowed)
    };
    let mut best = feasible(0).expect("unconstrained placement always feasible");
    let (mut lo, mut hi) = (0usize, lats.len());
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        match feasible(mid) {
            Some(rows) => {
                best = rows;
                lo = mid;
            }
            None => hi = mid - 1,
        }
    }
    let positions = reconstruct(n, k, max, &best);
    let mut bounds = Vec::with_capacity(k);
    let mut start = 0usize;
    for &p in &positions {
        bounds.push((start, p));
        start = p;
    }
    bounds.push((start, n));
    let cut_floor_micros = links
        .iter()
        .filter(|l| l.a != l.b)
        .filter(|l| {
            let (a, b) = if l.a < l.b { (l.a, l.b) } else { (l.b, l.a) };
            positions.iter().any(|&p| a < p && p <= b)
        })
        .map(|l| l.micros)
        .min();
    Partition {
        bounds,
        cut_floor_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(p: &Partition) -> Vec<usize> {
        p.bounds.iter().map(|&(lo, hi)| hi - lo).collect()
    }

    #[test]
    fn one_lane_is_the_whole_range() {
        let p = partition(10, 1, &[]);
        assert_eq!(p.bounds, vec![(0, 10)]);
        assert_eq!(p.cut_floor_micros, None);
    }

    #[test]
    fn no_links_gives_balanced_chunks() {
        let p = partition(16, 4, &[]);
        assert_eq!(p.bounds, vec![(0, 4), (4, 8), (8, 12), (12, 16)]);
    }

    #[test]
    fn k_clamps_to_node_count() {
        let p = partition(3, 8, &[]);
        assert_eq!(p.bounds.len(), 3);
        assert!(sizes(&p).iter().all(|&s| s == 1));
    }

    #[test]
    fn cheap_links_are_kept_internal() {
        // Chain 0—1—…—7 where links (2,3) and (5,6) are slow trunks and
        // the rest are LANs. A 2-way split must cut a trunk, not a LAN;
        // only the (2,3) cut also fits the balance cap (max lane 5), so
        // the boundary is forced to position 3.
        let mut links: Vec<CutLink> = (0..7)
            .map(|i| CutLink {
                a: i,
                b: i + 1,
                micros: 100,
            })
            .collect();
        links[2].micros = 30_000;
        links[5].micros = 30_000;
        let p = partition(8, 2, &links);
        assert_eq!(p.cut_floor_micros, Some(30_000));
        assert_eq!(p.bounds, vec![(0, 3), (3, 8)]);
    }

    #[test]
    fn interleaved_cells_snap_to_cell_edges() {
        // The E17 shape: cells (g, src, g, dst) with intra-cell LANs,
        // ring trunks between consecutive gateways. A misaligned node
        // count must still yield trunk-only cuts.
        let cells = 9; // 36 nodes, 36/4 per lane is misaligned for k=4? 9 per lane, odd.
        let n = cells * 4;
        let mut links = Vec::new();
        for c in 0..cells {
            let base = 4 * c;
            links.push(CutLink {
                a: base,
                b: base + 1,
                micros: 101,
            });
            links.push(CutLink {
                a: base + 2,
                b: base + 3,
                micros: 101,
            });
            links.push(CutLink {
                a: base,
                b: base + 2,
                micros: 30_001,
            });
            if c + 1 < cells {
                links.push(CutLink {
                    a: base + 2,
                    b: base + 4,
                    micros: 30_001,
                });
            }
        }
        links.push(CutLink {
            a: 0,
            b: 4 * (cells - 1) + 2,
            micros: 30_001,
        });
        let p = partition(n, 4, &links);
        assert_eq!(
            p.cut_floor_micros,
            Some(30_001),
            "every cut is a trunk: {:?}",
            p.bounds
        );
        let max = max_lane(n, 4);
        assert!(sizes(&p).iter().all(|&s| s >= 1 && s <= max), "{:?}", p.bounds);
    }

    #[test]
    fn balance_cap_beats_a_perfect_cut() {
        // One expensive link near the edge: cutting only there would
        // starve the other lane beyond the 25 % slack, so the
        // partitioner must accept a cheaper cut.
        let mut links: Vec<CutLink> = (0..15)
            .map(|i| CutLink {
                a: i,
                b: i + 1,
                micros: 10,
            })
            .collect();
        links[0].micros = 1_000_000; // boundary at p=1 → lane sizes 1/15
        let p = partition(16, 2, &links);
        let max = max_lane(16, 2);
        assert!(sizes(&p).iter().all(|&s| s <= max), "{:?}", p.bounds);
        assert_eq!(p.cut_floor_micros, Some(10));
    }

    #[test]
    fn disconnected_islands_cut_nothing() {
        // Two 4-node cliques with no inter-island link: a 2-way split
        // can keep every link internal.
        let mut links = Vec::new();
        for base in [0usize, 4] {
            for i in base..base + 3 {
                links.push(CutLink {
                    a: i,
                    b: i + 1,
                    micros: 5,
                });
            }
        }
        let p = partition(8, 2, &links);
        assert_eq!(p.bounds, vec![(0, 4), (4, 8)]);
        assert_eq!(p.cut_floor_micros, None);
    }

    #[test]
    fn bounds_always_tile_the_range() {
        for n in [1usize, 2, 7, 33, 64] {
            for k in [1usize, 2, 3, 4, 8] {
                let links: Vec<CutLink> = (0..n.saturating_sub(1))
                    .map(|i| CutLink {
                        a: i,
                        b: i + 1,
                        micros: (i as u64 % 5) * 100,
                    })
                    .collect();
                let p = partition(n, k, &links);
                assert_eq!(p.bounds.first().map(|b| b.0), Some(0));
                assert_eq!(p.bounds.last().map(|b| b.1), Some(n));
                for w in p.bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                    assert!(w[0].1 > w[0].0);
                }
            }
        }
    }
}
