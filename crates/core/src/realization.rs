//! "Realizations": canned instantiations of the architecture.
//!
//! The paper (§"Architecture and Implementation") stresses that the
//! architecture deliberately under-specifies: the same protocols must
//! "realize" everything from a lab LAN to a transcontinental mesh with
//! satellite hops. These constructors build the realizations every
//! experiment in `EXPERIMENTS.md` runs on, so the topology under each
//! number is explicit and reusable.

use crate::network::{LinkId, Network, NodeId};
use catenet_routing::ExportPolicy;
use catenet_sim::{Duration, LinkClass};

/// The classic two-hosts-two-gateways dumbbell.
pub struct Dumbbell {
    /// The network.
    pub net: Network,
    /// Client host.
    pub h1: NodeId,
    /// Client-side gateway.
    pub g1: NodeId,
    /// Server-side gateway.
    pub g2: NodeId,
    /// Server host.
    pub h2: NodeId,
    /// The bottleneck (g1—g2) link.
    pub bottleneck: LinkId,
}

/// Build `h1 — g1 ==trunk== g2 — h2` with LAN access links and the given
/// trunk class, and converge routing.
pub fn dumbbell(seed: u64, trunk: LinkClass) -> Dumbbell {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    let bottleneck = net.connect(g1, g2, trunk);
    net.connect(g2, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));
    Dumbbell {
        net,
        h1,
        g1,
        g2,
        h2,
        bottleneck,
    }
}

/// A linear chain: `h1 — g1 — g2 — … — gN — h2`, every trunk the same
/// class. Returns (network, h1, gateways, h2).
pub fn line(seed: u64, gateways: usize, trunk: LinkClass) -> (Network, NodeId, Vec<NodeId>, NodeId) {
    assert!(gateways >= 1);
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let gs: Vec<NodeId> = (0..gateways)
        .map(|i| net.add_gateway(format!("g{}", i + 1)))
        .collect();
    let h2 = net.add_host("h2");
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    for pair in gs.windows(2) {
        net.connect(pair[0], pair[1], trunk);
    }
    net.connect(*gs.last().expect("nonempty"), h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(30 + 10 * gateways as u64));
    (net, h1, gs, h2)
}

/// The survivability triangle: two disjoint paths between the hosts.
pub struct Triangle {
    /// The network.
    pub net: Network,
    /// Client host (on gA).
    pub h1: NodeId,
    /// Gateway A (client side).
    pub ga: NodeId,
    /// Gateway B (server side).
    pub gb: NodeId,
    /// Gateway C (the backup path's middle hop).
    pub gc: NodeId,
    /// Server host (on gB).
    pub h2: NodeId,
    /// The primary (gA—gB) link.
    pub primary: LinkId,
}

/// Build `h1 — gA — gB — h2` with a backup path `gA — gC — gB`, and
/// converge routing. Killing `primary` (or crashing a gateway) forces a
/// reroute — experiment E1's stage.
pub fn triangle(seed: u64, trunk: LinkClass) -> Triangle {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gb = net.add_gateway("gB");
    let gc = net.add_gateway("gC");
    let h2 = net.add_host("h2");
    net.connect(h1, ga, LinkClass::EthernetLan);
    let primary = net.connect(ga, gb, trunk);
    net.connect(ga, gc, trunk);
    net.connect(gc, gb, trunk);
    net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(90));
    Triangle {
        net,
        h1,
        ga,
        gb,
        gc,
        h2,
        primary,
    }
}

/// The 1988 menagerie: a path crossing three genuinely different
/// networks (Ethernet 1500 → ARPANET trunk 1006 → serial line 296),
/// exactly the "variety of networks" scenario of goal 3.
pub fn heterogeneous_path(seed: u64) -> (Network, NodeId, NodeId) {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    net.connect(h1, g1, LinkClass::EthernetLan);
    net.connect(g1, g2, LinkClass::ArpanetTrunk);
    net.connect(g2, h2, LinkClass::SlipLine);
    net.converge_routing(Duration::from_secs(60));
    (net, h1, h2)
}

/// A three-region internetwork for the distributed-management
/// experiment: each region is a line of gateways under one
/// administration; border gateways apply export filtering.
pub struct MultiAs {
    /// The network.
    pub net: Network,
    /// One host per region.
    pub hosts: Vec<NodeId>,
    /// Gateways per region.
    pub regions: Vec<Vec<NodeId>>,
    /// Inter-region (border) links.
    pub borders: Vec<LinkId>,
}

/// Build `regions` chained regions of `size` gateways each, one host per
/// region, with exterior export policies on the border interfaces.
pub fn multi_as(seed: u64, regions: usize, size: usize, trunk: LinkClass) -> MultiAs {
    assert!(regions >= 2 && size >= 1);
    let mut net = Network::new(seed);
    let mut all_regions = Vec::new();
    let mut hosts = Vec::new();
    for r in 0..regions {
        let gs: Vec<NodeId> = (0..size)
            .map(|i| net.add_gateway(format!("as{}g{}", r + 1, i + 1)))
            .collect();
        for pair in gs.windows(2) {
            net.connect(pair[0], pair[1], trunk);
        }
        let host = net.add_host(format!("h{}", r + 1));
        net.connect(host, gs[0], LinkClass::EthernetLan);
        hosts.push(host);
        all_regions.push(gs);
    }
    // Chain the regions via their last/first gateways.
    let mut borders = Vec::new();
    for r in 0..regions - 1 {
        let left = *all_regions[r].last().expect("nonempty");
        let right = all_regions[r + 1][0];
        let border = net.connect(left, right, trunk);
        borders.push(border);
        // Exterior policy both ways: a region exports everything it
        // knows (transit), but the *policy hook* is exercised — here we
        // use All; the E4 bench also runs a filtered variant.
        let left_iface = net.node(left).ifaces.len() - 1;
        let right_iface = net.node(right).ifaces.len() - 1;
        net.node_mut(left).dv_policies[left_iface] = ExportPolicy::All;
        net.node_mut(right).dv_policies[right_iface] = ExportPolicy::All;
    }
    net.converge_routing(Duration::from_secs(60 + 30 * (regions * size) as u64));
    MultiAs {
        net,
        hosts,
        regions: all_regions,
        borders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_sim::Instant;

    #[test]
    fn dumbbell_carries_ping() {
        let mut d = dumbbell(41, LinkClass::T1Terrestrial);
        let dst = d.net.node(d.h2).primary_addr();
        let now = d.net.now();
        d.net.node_mut(d.h1).send_ping(dst, 1, 1, 32, now);
        d.net.kick(d.h1);
        d.net.run_for(Duration::from_secs(2));
        assert_eq!(d.net.node_mut(d.h1).take_icmp_events().len(), 1);
    }

    #[test]
    fn line_scales_hops() {
        let (mut net, h1, gs, h2) = line(42, 4, LinkClass::T1Terrestrial);
        assert_eq!(gs.len(), 4);
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 32, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(3));
        let events = net.node_mut(h1).take_icmp_events();
        assert_eq!(events.len(), 1, "ping crossed 4 gateways");
        // RTT grows with hops: ≥ 2 × 4 × 30 ms of propagation.
        assert!(events[0].at >= Instant::from_millis(240));
    }

    #[test]
    fn triangle_has_backup_path() {
        let mut t = triangle(43, LinkClass::T1Terrestrial);
        let dst = t.net.node(t.h2).primary_addr();
        // Kill the primary; after reconvergence the backup carries.
        t.net.set_link_up(t.primary, false);
        t.net.converge_routing(Duration::from_secs(120));
        let now = t.net.now();
        t.net.node_mut(t.h1).send_ping(dst, 1, 1, 32, now);
        t.net.kick(t.h1);
        t.net.run_for(Duration::from_secs(3));
        assert_eq!(t.net.node_mut(t.h1).take_icmp_events().len(), 1);
    }

    #[test]
    fn heterogeneous_path_delivers_large_datagrams() {
        let (mut net, h1, h2) = heterogeneous_path(44);
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).udp_bind(9000);
        let sock = net.node_mut(h1).udp_bind(9001);
        let payload = vec![7u8; 1400]; // larger than both downstream MTUs
        net.node_mut(h1).udp_sockets[sock].send_to(crate::Endpoint::new(dst, 9000), &payload);
        net.kick(h1);
        net.run_for(Duration::from_secs(10));
        let got = net.node_mut(h2).udp_sockets[0].recv().expect("delivered");
        assert_eq!(got.payload, payload);
    }

    #[test]
    fn multi_as_reaches_across_regions() {
        let mut m = multi_as(45, 3, 2, LinkClass::T1Terrestrial);
        let src = m.hosts[0];
        let dst_addr = m.net.node(m.hosts[2]).primary_addr();
        let now = m.net.now();
        m.net.node_mut(src).send_ping(dst_addr, 1, 1, 32, now);
        m.net.kick(src);
        m.net.run_for(Duration::from_secs(5));
        assert_eq!(
            m.net.node_mut(src).take_icmp_events().len(),
            1,
            "ping crossed three administrative regions"
        );
    }
}
