//! Accounting — the paper's *least* important goal (§9), and the one it
//! admits the architecture serves worst: "the Internet architecture
//! contains few tools for accounting for packet flows ... research is
//! needed." A gateway counting datagrams cannot distinguish new data from
//! end-to-end retransmissions, so its ledger systematically *overstates*
//! the traffic a customer usefully received. Experiment E7 quantifies
//! that gap as a function of loss rate.

use catenet_wire::{IpProtocol, Ipv4Address, Ipv4Packet};
use std::collections::HashMap;

/// The accounting key: who talked to whom with which protocol.
/// (Coarser than a flow — this is the billing view.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountKey {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// IP protocol number.
    pub protocol: u8,
}

/// Counters for one account.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Account {
    /// Datagrams carried.
    pub packets: u64,
    /// IP bytes carried (headers included — the gateway can't know
    /// better; that is part of the accounting problem).
    pub bytes: u64,
}

/// A gateway's (or host's) traffic ledger.
#[derive(Debug, Default)]
pub struct Ledger {
    accounts: HashMap<AccountKey, Account>,
    /// Datagrams that could not be attributed (unparseable).
    pub unattributed: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Record one carried datagram.
    pub fn record(&mut self, datagram: &[u8]) {
        match Ipv4Packet::new_checked(datagram) {
            Ok(packet) => {
                let key = AccountKey {
                    src: packet.src_addr(),
                    dst: packet.dst_addr(),
                    protocol: packet.protocol().into(),
                };
                let account = self.accounts.entry(key).or_default();
                account.packets += 1;
                account.bytes += datagram.len() as u64;
            }
            Err(_) => self.unattributed += 1,
        }
    }

    /// The account for a given key.
    pub fn account(&self, key: &AccountKey) -> Account {
        self.accounts.get(key).copied().unwrap_or_default()
    }

    /// Total bytes between two hosts for a protocol, both directions.
    pub fn conversation_bytes(&self, a: Ipv4Address, b: Ipv4Address, protocol: IpProtocol) -> u64 {
        let protocol = u8::from(protocol);
        self.account(&AccountKey {
            src: a,
            dst: b,
            protocol,
        })
        .bytes
            + self
                .account(&AccountKey {
                    src: b,
                    dst: a,
                    protocol,
                })
                .bytes
    }

    /// All accounts in deterministic order.
    pub fn iter_sorted(&self) -> Vec<(AccountKey, Account)> {
        let mut entries: Vec<_> = self.accounts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }

    /// Total packets across all accounts.
    pub fn total_packets(&self) -> u64 {
        self.accounts.values().map(|a| a.packets).sum()
    }

    /// Total bytes across all accounts.
    pub fn total_bytes(&self) -> u64 {
        self.accounts.values().map(|a| a.bytes).sum()
    }

    /// Reset (gateway reboot loses the ledger too — accounting shares
    /// the fate-sharing weakness the paper notes).
    pub fn clear(&mut self) {
        self.accounts.clear();
        self.unattributed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos};

    fn dgram(src: Ipv4Address, dst: Ipv4Address, len: usize) -> Vec<u8> {
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: len,
                hop_limit: 64,
                tos: Tos::default(),
            },
            0,
            false,
            &vec![0u8; len],
        )
    }

    const A: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const B: Ipv4Address = Ipv4Address::new(10, 9, 0, 1);

    #[test]
    fn records_per_key() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(A, B, 100));
        ledger.record(&dgram(B, A, 50));
        let ab = ledger.account(&AccountKey {
            src: A,
            dst: B,
            protocol: 17,
        });
        assert_eq!(ab.packets, 2);
        assert_eq!(ab.bytes, 240); // 2 × (100 + 20-byte header)
        assert_eq!(ledger.conversation_bytes(A, B, IpProtocol::Udp), 240 + 70);
        assert_eq!(ledger.total_packets(), 3);
        assert_eq!(ledger.total_bytes(), 310);
    }

    #[test]
    fn unattributed_counted() {
        let mut ledger = Ledger::new();
        ledger.record(&[0xFF; 8]);
        assert_eq!(ledger.unattributed, 1);
        assert_eq!(ledger.total_packets(), 0);
    }

    #[test]
    fn sorted_iteration_deterministic() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(B, A, 10));
        ledger.record(&dgram(A, B, 10));
        let keys: Vec<_> = ledger.iter_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys[0].src, A);
        assert_eq!(keys[1].src, B);
    }

    #[test]
    fn clear_resets() {
        let mut ledger = Ledger::new();
        ledger.record(&dgram(A, B, 10));
        ledger.clear();
        assert_eq!(ledger.total_packets(), 0);
        assert_eq!(ledger.iter_sorted().len(), 0);
    }
}
