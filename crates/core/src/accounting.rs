//! Traffic accounting — re-exported from [`catenet_accounting`].
//!
//! The ledger grew out of this module into the dedicated accountability
//! crate (epoch-stamped, flushable into cross-boundary usage reports);
//! the types live in [`catenet_accounting::ledger`] and
//! [`catenet_accounting::report`] now. This shim keeps the original
//! `catenet_core::accounting::{Ledger, Account, AccountKey}` paths
//! working.

pub use catenet_accounting::ledger::{Account, AccountKey, Ledger};
pub use catenet_accounting::report::{
    GatewayReport, GatewayTotals, Reconciliation, ReportCollector,
};
