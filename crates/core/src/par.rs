//! Scoped-thread window execution for `ShardKind::Parallel`.
//!
//! The coordinator builds one [`LaneView`](crate::lane::LaneView) per
//! lane — mutually disjoint mutable slices of the network plus shared
//! read-only topology — and this module runs each view's window on its
//! own scoped thread. The views are disjoint by construction
//! (`split_views` carves every per-node vector with `split_at_mut`),
//! so the only thing standing between them and `std::thread::scope` is
//! `Send`: nodes hold `Rc`-based packet pools that are not `Send`,
//! even though no clone of those `Rc`s ever lives outside the owning
//! lane once the split re-homed every pool (`Network::ensure_split`
//! rebuilds per-lane pools and severs every pooled buffer that
//! predates the split). Applications are *not* part of the assertion:
//! `Application: Send` is a supertrait bound, and app result handles
//! are `Arc<Mutex>` (see `app::Shared`), so a checker shared between a
//! sender and a sink in different lanes is genuinely thread-safe —
//! window outcomes stay schedule-independent because each lane touches
//! shared handles only inside its own window and cross-lane frames
//! deliver only after the scope joins.
//!
//! [`SendView`] asserts exactly that invariant. It is the one unsafe
//! impl in the workspace, and the safety argument is confinement, not
//! thread-safety of the payload: each wrapper moves to one thread,
//! every `Rc` reachable from it has all its clones inside the same
//! view, and the scope joins before the coordinator touches the lanes
//! again.

use crate::lane::LaneView;

/// A lane view being moved to its window thread. See the module docs
/// for the confinement argument that justifies the `Send` assertion.
pub(crate) struct SendView<'a>(pub LaneView<'a>);

// SAFETY: a `LaneView` is a set of mutable borrows that are disjoint
// across views (distinct lanes, distinct node ranges) plus shared
// references to immutable topology. The non-`Send` interior (`Rc`
// packet pools inside nodes/buffers, `Rc` attestation registries) is
// confined: `ensure_split` gives each lane a private pool and detaches
// every buffer allocated before the split, re-homing severs cross-lane
// `Rc` sharing, and attestation-bearing networks are demoted to serial
// execution before this type is ever constructed. `dyn Application`
// boxes need no argument — `Application: Send` is a trait bound. Each
// `SendView` is moved to exactly one thread and the scope joins before
// any other access.
#[allow(unsafe_code)]
unsafe impl Send for SendView<'_> {}

/// Run each view's window to its paired limit on its own scoped
/// thread — limits are per lane under the per-pair lookahead, not one
/// global bound. Panics in lane threads propagate to the caller (a
/// determinism assertion failing inside a lane must fail the run, not
/// vanish).
pub(crate) fn run_each_threaded(views: Vec<(SendView<'_>, catenet_sim::Instant)>) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = views
            .into_iter()
            .map(|(view, limit)| {
                scope.spawn(move || {
                    // Move the whole wrapper, not `view.0`: edition-2021
                    // disjoint capture would otherwise grab the inner
                    // `LaneView` field directly and sidestep the `Send`
                    // assertion on the wrapper.
                    let mut wrapper = view;
                    wrapper.0.run_window(limit);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
}
