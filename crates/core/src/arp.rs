//! The ARP cache: hardware-address resolution on Ethernet-framed links.
//!
//! Part of the "host attachment with low effort" goal (§8): on a
//! broadcast LAN a host needs to know only its own IP address; everything
//! else is discovered. Entries expire (smoltcp uses one minute; so do
//! we), requests are rate-limited to one per second per target, and a
//! short queue holds datagrams awaiting resolution.

use catenet_sim::{Duration, Instant};
use catenet_wire::{EthernetAddress, Ipv4Address};
use std::collections::HashMap;

/// How long a learned entry stays valid.
pub const ENTRY_LIFETIME: Duration = Duration::from_secs(60);
/// Minimum spacing between requests for the same address.
pub const REQUEST_INTERVAL: Duration = Duration::from_secs(1);
/// Datagrams queued per unresolved address.
pub const PENDING_LIMIT: usize = 4;

#[derive(Debug, Clone)]
struct Entry {
    hardware: EthernetAddress,
    expires_at: Instant,
}

/// The cache plus pending-datagram queue.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Address, Entry>,
    /// Datagrams waiting for resolution, per target.
    pending: HashMap<Ipv4Address, Vec<Vec<u8>>>,
    /// Last request time per target (rate limiting).
    last_request: HashMap<Ipv4Address, Instant>,
}

/// The outcome of a transmit-side lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The hardware address is known.
    Known(EthernetAddress),
    /// Unknown; the datagram was queued and a request should be sent.
    RequestAndWait,
    /// Unknown; the datagram was queued, a request was sent recently.
    Wait,
    /// Unknown and the pending queue is full; the datagram was dropped.
    QueueFull,
}

impl ArpCache {
    /// An empty cache.
    pub fn new() -> ArpCache {
        ArpCache::default()
    }

    /// Number of live entries at `now`.
    pub fn len(&self, now: Instant) -> usize {
        self.entries
            .values()
            .filter(|entry| entry.expires_at > now)
            .count()
    }

    /// Whether the cache holds no live entries.
    pub fn is_empty(&self, now: Instant) -> bool {
        self.len(now) == 0
    }

    /// Look up without side effects.
    pub fn get(&self, target: Ipv4Address, now: Instant) -> Option<EthernetAddress> {
        self.entries
            .get(&target)
            .filter(|entry| entry.expires_at > now)
            .map(|entry| entry.hardware)
    }

    /// Transmit-side resolution: returns the hardware address or queues
    /// `datagram` for later and says whether to emit a request.
    pub fn resolve(
        &mut self,
        target: Ipv4Address,
        datagram: Vec<u8>,
        now: Instant,
    ) -> Resolution {
        if let Some(hw) = self.get(target, now) {
            return Resolution::Known(hw);
        }
        let queue = self.pending.entry(target).or_default();
        if queue.len() >= PENDING_LIMIT {
            return Resolution::QueueFull;
        }
        queue.push(datagram);
        let may_request = self
            .last_request
            .get(&target)
            .is_none_or(|&at| now >= at + REQUEST_INTERVAL);
        if may_request {
            self.last_request.insert(target, now);
            Resolution::RequestAndWait
        } else {
            Resolution::Wait
        }
    }

    /// Learn (or refresh) a mapping; returns any datagrams that were
    /// waiting for it.
    pub fn learn(
        &mut self,
        protocol: Ipv4Address,
        hardware: EthernetAddress,
        now: Instant,
    ) -> Vec<Vec<u8>> {
        self.entries.insert(
            protocol,
            Entry {
                hardware,
                expires_at: now + ENTRY_LIFETIME,
            },
        );
        self.last_request.remove(&protocol);
        self.pending.remove(&protocol).unwrap_or_default()
    }

    /// Drop expired entries and stale pending queues.
    pub fn flush_expired(&mut self, now: Instant) {
        self.entries.retain(|_, entry| entry.expires_at > now);
        // Pending datagrams for targets we've been asking about for more
        // than a lifetime are hopeless.
        let last_request = &self.last_request;
        self.pending.retain(|target, _| {
            last_request
                .get(target)
                .is_none_or(|&at| now < at + ENTRY_LIFETIME)
        });
    }

    /// Forget everything (node reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.pending.clear();
        self.last_request.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Address = Ipv4Address::new(10, 0, 0, 9);
    const HW: EthernetAddress = EthernetAddress::new(2, 0, 0, 0, 0, 9);

    #[test]
    fn miss_queues_and_requests() {
        let mut cache = ArpCache::new();
        let r = cache.resolve(IP, b"pkt1".to_vec(), Instant::ZERO);
        assert_eq!(r, Resolution::RequestAndWait);
        // Second miss within the rate-limit window queues silently.
        let r = cache.resolve(IP, b"pkt2".to_vec(), Instant::from_millis(100));
        assert_eq!(r, Resolution::Wait);
        // After the interval, we may ask again.
        let r = cache.resolve(IP, b"pkt3".to_vec(), Instant::from_millis(1100));
        assert_eq!(r, Resolution::RequestAndWait);
    }

    #[test]
    fn learn_returns_pending_in_order() {
        let mut cache = ArpCache::new();
        cache.resolve(IP, b"pkt1".to_vec(), Instant::ZERO);
        cache.resolve(IP, b"pkt2".to_vec(), Instant::ZERO);
        let released = cache.learn(IP, HW, Instant::from_millis(5));
        assert_eq!(released, vec![b"pkt1".to_vec(), b"pkt2".to_vec()]);
        assert_eq!(cache.get(IP, Instant::from_millis(5)), Some(HW));
        // Subsequent resolution is a straight hit.
        assert_eq!(
            cache.resolve(IP, b"pkt3".to_vec(), Instant::from_millis(6)),
            Resolution::Known(HW)
        );
    }

    #[test]
    fn entries_expire() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        assert!(cache.get(IP, Instant::from_secs(59)).is_some());
        assert!(cache.get(IP, Instant::from_secs(61)).is_none());
        cache.flush_expired(Instant::from_secs(61));
        assert!(cache.is_empty(Instant::from_secs(61)));
    }

    #[test]
    fn queue_caps_at_limit() {
        let mut cache = ArpCache::new();
        for i in 0..PENDING_LIMIT {
            let r = cache.resolve(IP, vec![i as u8], Instant::ZERO);
            assert_ne!(r, Resolution::QueueFull);
        }
        assert_eq!(
            cache.resolve(IP, b"overflow".to_vec(), Instant::ZERO),
            Resolution::QueueFull
        );
        // Learning releases exactly the queued ones.
        assert_eq!(cache.learn(IP, HW, Instant::ZERO).len(), PENDING_LIMIT);
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.learn(IP, HW, Instant::from_secs(50));
        assert!(cache.get(IP, Instant::from_secs(100)).is_some());
    }

    #[test]
    fn clear_forgets_all() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.resolve(Ipv4Address::new(10, 0, 0, 8), b"x".to_vec(), Instant::ZERO);
        cache.clear();
        assert!(cache.get(IP, Instant::ZERO).is_none());
        assert!(cache.is_empty(Instant::ZERO));
    }

    #[test]
    fn distinct_targets_independent() {
        let other_ip = Ipv4Address::new(10, 0, 0, 10);
        let other_hw = EthernetAddress::new(2, 0, 0, 0, 0, 10);
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.learn(other_ip, other_hw, Instant::ZERO);
        assert_eq!(cache.get(IP, Instant::ZERO), Some(HW));
        assert_eq!(cache.get(other_ip, Instant::ZERO), Some(other_hw));
        assert_eq!(cache.len(Instant::ZERO), 2);
    }
}
