//! The ARP cache: hardware-address resolution on Ethernet-framed links.
//!
//! Part of the "host attachment with low effort" goal (§8): on a
//! broadcast LAN a host needs to know only its own IP address; everything
//! else is discovered. Entries expire (smoltcp uses one minute; so do
//! we), a short queue holds datagrams awaiting resolution, and
//! outstanding requests are *retried* with exponential backoff rather
//! than silently abandoned — a resolution that never answers eventually
//! gives up and reports the datagrams it dropped, so the failure is
//! visible in node statistics instead of vanishing (§6's argument that
//! silent loss is the worst kind).

use crate::pool::PacketBuf;
use catenet_sim::{Duration, Instant};
use catenet_wire::{EthernetAddress, Ipv4Address};
use std::collections::HashMap;

/// How long a learned entry stays valid.
pub const ENTRY_LIFETIME: Duration = Duration::from_secs(60);
/// Spacing after the first request for the same address; doubles per
/// retry up to [`MAX_BACKOFF_SHIFT`] doublings.
pub const REQUEST_INTERVAL: Duration = Duration::from_secs(1);
/// Datagrams queued per unresolved address.
pub const PENDING_LIMIT: usize = 4;
/// Requests sent for one target before giving up (initial + retries).
pub const MAX_REQUEST_ATTEMPTS: u32 = 5;
/// Cap on the exponential backoff: the interval stops doubling after
/// this many doublings (1 s, 2 s, 4 s, 8 s, 8 s, ...).
pub const MAX_BACKOFF_SHIFT: u32 = 3;

#[derive(Debug, Clone)]
struct Entry {
    hardware: EthernetAddress,
    expires_at: Instant,
}

/// An in-progress resolution attempt for one target.
#[derive(Debug, Clone)]
struct RequestState {
    /// Requests sent so far (>= 1 once the state exists).
    attempts: u32,
    /// When the next retry (or give-up) is due.
    next_retry: Instant,
}

/// What backoff applies after the `attempts`-th request.
fn backoff_after(attempts: u32) -> Duration {
    REQUEST_INTERVAL * (1u32 << attempts.saturating_sub(1).min(MAX_BACKOFF_SHIFT))
}

/// The outcome of one [`ArpCache::tick`]: which targets to re-request
/// and which resolutions were abandoned.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ArpTick {
    /// Targets whose request should be retransmitted now, in address order.
    pub retries: Vec<Ipv4Address>,
    /// Targets given up on, with the number of pending datagrams dropped
    /// for each, in address order.
    pub gave_up: Vec<(Ipv4Address, usize)>,
}

/// The cache plus pending-datagram queue.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Address, Entry>,
    /// Datagrams waiting for resolution, per target. Held as pooled
    /// buffers so release on `learn` re-enters the fast path copy-free.
    pending: HashMap<Ipv4Address, Vec<PacketBuf>>,
    /// Outstanding request per target (retry/backoff state).
    requests: HashMap<Ipv4Address, RequestState>,
}

/// The outcome of a transmit-side lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The hardware address is known.
    Known(EthernetAddress),
    /// Unknown; the datagram was queued and a request should be sent.
    RequestAndWait,
    /// Unknown; the datagram was queued, a request was sent recently.
    Wait,
    /// Unknown and the pending queue is full; the datagram was dropped.
    QueueFull,
}

impl ArpCache {
    /// An empty cache.
    pub fn new() -> ArpCache {
        ArpCache::default()
    }

    /// Number of live entries at `now`.
    pub fn len(&self, now: Instant) -> usize {
        self.entries
            .values()
            .filter(|entry| entry.expires_at > now)
            .count()
    }

    /// Whether the cache holds no live entries.
    pub fn is_empty(&self, now: Instant) -> bool {
        self.len(now) == 0
    }

    /// Look up without side effects.
    pub fn get(&self, target: Ipv4Address, now: Instant) -> Option<EthernetAddress> {
        self.entries
            .get(&target)
            .filter(|entry| entry.expires_at > now)
            .map(|entry| entry.hardware)
    }

    /// Transmit-side resolution: returns the hardware address or queues
    /// `datagram` for later and says whether to emit a request.
    pub fn resolve(
        &mut self,
        target: Ipv4Address,
        datagram: impl Into<PacketBuf>,
        now: Instant,
    ) -> Resolution {
        if let Some(hw) = self.get(target, now) {
            return Resolution::Known(hw);
        }
        let queue = self.pending.entry(target).or_default();
        if queue.len() >= PENDING_LIMIT {
            return Resolution::QueueFull;
        }
        queue.push(datagram.into());
        match self.requests.get_mut(&target) {
            None => {
                self.requests.insert(
                    target,
                    RequestState {
                        attempts: 1,
                        next_retry: now + backoff_after(1),
                    },
                );
                Resolution::RequestAndWait
            }
            Some(state) if now >= state.next_retry => {
                state.attempts += 1;
                state.next_retry = now + backoff_after(state.attempts);
                Resolution::RequestAndWait
            }
            Some(_) => Resolution::Wait,
        }
    }

    /// Advance the retry machinery to `now`. Each due request either
    /// earns a retransmission (attempts left) or is abandoned, dropping
    /// its pending datagrams. Results are sorted by address so callers
    /// behave deterministically regardless of hash order.
    pub fn tick(&mut self, now: Instant) -> ArpTick {
        let mut due: Vec<Ipv4Address> = self
            .requests
            .iter()
            .filter(|(_, state)| state.next_retry <= now)
            .map(|(&target, _)| target)
            .collect();
        due.sort_unstable();
        let mut tick = ArpTick::default();
        for target in due {
            let Some(state) = self.requests.get_mut(&target) else {
                continue;
            };
            if state.attempts >= MAX_REQUEST_ATTEMPTS {
                self.requests.remove(&target);
                let dropped = self.pending.remove(&target).map_or(0, |q| q.len());
                tick.gave_up.push((target, dropped));
            } else {
                state.attempts += 1;
                state.next_retry = now + backoff_after(state.attempts);
                tick.retries.push(target);
            }
        }
        tick
    }

    /// When the next retry or give-up is due, if any resolution is in
    /// progress.
    pub fn next_event(&self) -> Option<Instant> {
        self.requests.values().map(|state| state.next_retry).min()
    }

    /// Learn (or refresh) a mapping; returns any datagrams that were
    /// waiting for it.
    pub fn learn(
        &mut self,
        protocol: Ipv4Address,
        hardware: EthernetAddress,
        now: Instant,
    ) -> Vec<PacketBuf> {
        self.entries.insert(
            protocol,
            Entry {
                hardware,
                expires_at: now + ENTRY_LIFETIME,
            },
        );
        self.requests.remove(&protocol);
        self.pending.remove(&protocol).unwrap_or_default()
    }

    /// Drop expired entries and orphaned pending queues.
    pub fn flush_expired(&mut self, now: Instant) {
        self.entries.retain(|_, entry| entry.expires_at > now);
        // Pending datagrams with no resolution in progress are hopeless
        // (give-up in `tick` already removes them; this is a backstop).
        let requests = &self.requests;
        self.pending
            .retain(|target, _| requests.contains_key(target));
    }

    /// Forget everything (node reboot).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.pending.clear();
        self.requests.clear();
    }

    /// Sever every queued datagram from its packet pool (see
    /// [`PacketBuf::detach`]). Called when a node moves to a different
    /// shard lane's pool: queued buffers must not keep a handle to the
    /// old lane's freelist.
    pub(crate) fn detach_pending(&mut self) {
        for queue in self.pending.values_mut() {
            for buf in queue.iter_mut() {
                buf.detach();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ipv4Address = Ipv4Address::new(10, 0, 0, 9);
    const HW: EthernetAddress = EthernetAddress::new(2, 0, 0, 0, 0, 9);

    #[test]
    fn miss_queues_and_requests() {
        let mut cache = ArpCache::new();
        let r = cache.resolve(IP, b"pkt1".to_vec(), Instant::ZERO);
        assert_eq!(r, Resolution::RequestAndWait);
        // Second miss within the rate-limit window queues silently.
        let r = cache.resolve(IP, b"pkt2".to_vec(), Instant::from_millis(100));
        assert_eq!(r, Resolution::Wait);
        // After the interval, we may ask again.
        let r = cache.resolve(IP, b"pkt3".to_vec(), Instant::from_millis(1100));
        assert_eq!(r, Resolution::RequestAndWait);
    }

    #[test]
    fn learn_returns_pending_in_order() {
        let mut cache = ArpCache::new();
        cache.resolve(IP, b"pkt1".to_vec(), Instant::ZERO);
        cache.resolve(IP, b"pkt2".to_vec(), Instant::ZERO);
        let released = cache.learn(IP, HW, Instant::from_millis(5));
        assert_eq!(released.len(), 2);
        assert_eq!(&released[0][..], b"pkt1");
        assert_eq!(&released[1][..], b"pkt2");
        assert_eq!(cache.get(IP, Instant::from_millis(5)), Some(HW));
        // Subsequent resolution is a straight hit.
        assert_eq!(
            cache.resolve(IP, b"pkt3".to_vec(), Instant::from_millis(6)),
            Resolution::Known(HW)
        );
    }

    #[test]
    fn entries_expire() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        assert!(cache.get(IP, Instant::from_secs(59)).is_some());
        assert!(cache.get(IP, Instant::from_secs(61)).is_none());
        cache.flush_expired(Instant::from_secs(61));
        assert!(cache.is_empty(Instant::from_secs(61)));
    }

    #[test]
    fn queue_caps_at_limit() {
        let mut cache = ArpCache::new();
        for i in 0..PENDING_LIMIT {
            let r = cache.resolve(IP, vec![i as u8], Instant::ZERO);
            assert_ne!(r, Resolution::QueueFull);
        }
        assert_eq!(
            cache.resolve(IP, b"overflow".to_vec(), Instant::ZERO),
            Resolution::QueueFull
        );
        // Learning releases exactly the queued ones.
        assert_eq!(cache.learn(IP, HW, Instant::ZERO).len(), PENDING_LIMIT);
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.learn(IP, HW, Instant::from_secs(50));
        assert!(cache.get(IP, Instant::from_secs(100)).is_some());
    }

    #[test]
    fn clear_forgets_all() {
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.resolve(Ipv4Address::new(10, 0, 0, 8), b"x".to_vec(), Instant::ZERO);
        cache.clear();
        assert!(cache.get(IP, Instant::ZERO).is_none());
        assert!(cache.is_empty(Instant::ZERO));
        assert!(cache.next_event().is_none());
    }

    #[test]
    fn distinct_targets_independent() {
        let other_ip = Ipv4Address::new(10, 0, 0, 10);
        let other_hw = EthernetAddress::new(2, 0, 0, 0, 0, 10);
        let mut cache = ArpCache::new();
        cache.learn(IP, HW, Instant::ZERO);
        cache.learn(other_ip, other_hw, Instant::ZERO);
        assert_eq!(cache.get(IP, Instant::ZERO), Some(HW));
        assert_eq!(cache.get(other_ip, Instant::ZERO), Some(other_hw));
        assert_eq!(cache.len(Instant::ZERO), 2);
    }

    #[test]
    fn tick_retries_with_exponential_backoff() {
        let mut cache = ArpCache::new();
        cache.resolve(IP, b"pkt".to_vec(), Instant::ZERO);
        // Attempt 1 at t=0; retries due at 1 s, then +2 s, +4 s, +8 s.
        assert_eq!(cache.next_event(), Some(Instant::from_secs(1)));
        assert!(cache.tick(Instant::from_millis(999)).retries.is_empty());

        let mut retry_times = Vec::new();
        for _ in 0..4 {
            let now = cache.next_event().expect("request in progress");
            let tick = cache.tick(now);
            assert_eq!(tick.retries, vec![IP]);
            assert!(tick.gave_up.is_empty());
            retry_times.push(now);
        }
        assert_eq!(
            retry_times,
            vec![
                Instant::from_secs(1),
                Instant::from_secs(3),
                Instant::from_secs(7),
                Instant::from_secs(15),
            ]
        );
    }

    #[test]
    fn tick_gives_up_after_max_attempts_and_reports_drops() {
        let mut cache = ArpCache::new();
        cache.resolve(IP, b"pkt1".to_vec(), Instant::ZERO);
        cache.resolve(IP, b"pkt2".to_vec(), Instant::from_millis(10));
        let mut gave_up_at = None;
        while let Some(at) = cache.next_event() {
            let tick = cache.tick(at);
            if !tick.gave_up.is_empty() {
                assert_eq!(tick.gave_up, vec![(IP, 2)]);
                assert!(tick.retries.is_empty());
                gave_up_at = Some(at);
            }
        }
        // Backoff 1+2+4+8 then a final 8 s wait before abandoning.
        let now = gave_up_at.expect("resolution abandoned");
        assert_eq!(now, Instant::from_secs(23));
        assert!(cache.next_event().is_none());
        // The slate is clean: a new resolve starts over at attempt 1.
        assert_eq!(
            cache.resolve(IP, b"pkt3".to_vec(), now),
            Resolution::RequestAndWait
        );
        assert_eq!(cache.next_event(), Some(now + REQUEST_INTERVAL));
    }

    #[test]
    fn learn_cancels_outstanding_request() {
        let mut cache = ArpCache::new();
        cache.resolve(IP, b"pkt".to_vec(), Instant::ZERO);
        assert!(cache.next_event().is_some());
        cache.learn(IP, HW, Instant::from_millis(500));
        assert!(cache.next_event().is_none());
        let tick = cache.tick(Instant::from_secs(30));
        assert_eq!(tick, ArpTick::default());
    }

    #[test]
    fn tick_orders_multiple_targets_by_address() {
        let a = Ipv4Address::new(10, 0, 0, 3);
        let b = Ipv4Address::new(10, 0, 0, 1);
        let c = Ipv4Address::new(10, 0, 0, 2);
        let mut cache = ArpCache::new();
        for ip in [a, b, c] {
            cache.resolve(ip, b"x".to_vec(), Instant::ZERO);
        }
        let tick = cache.tick(Instant::from_secs(1));
        assert_eq!(tick.retries, vec![b, c, a]);
    }
}
