//! Shard lanes: the per-partition execution engine behind the network's
//! event loop.
//!
//! The network partitions its nodes into K contiguous *lanes* (one lane
//! covering everything in the `ShardKind::Single` reference arm). Each
//! lane owns its own scheduler, the outgoing direction of every link
//! whose sender lives in it, and a per-direction RNG — everything a
//! window of virtual time needs, with no access to telemetry or any
//! other lane. The coordinator (`Network::run_until`) decides window
//! bounds, runs each lane over the window (serially, or on scoped
//! threads in `ShardKind::Parallel`), and absorbs two kinds of output
//! at the barrier:
//!
//! - **cross-lane frames** ([`CrossFrame`]): buffered during the
//!   window, scheduled into the destination lane at the barrier. The
//!   conservative per-pair lookahead (lane i's window ends strictly
//!   before anything any peer does next could reach it — see
//!   `Network::run_until` and DESIGN.md "The lane protocol") plus the
//!   ≥ 1 µs serialization floor guarantee every crossing frame lands
//!   after the sender's own limit, so absorbing it never rewinds a
//!   lane.
//! - **harvest entries** ([`HarvestEntry`]): telemetry-relevant state
//!   changes *detected* lane-side but *applied* coordinator-side, in
//!   `(instant, token)` order. The token is the smallest delivery key
//!   that touched the node at that instant, which is exactly the order
//!   the single-lane arm services nodes — so recorder rows, counters
//!   and convergence-tracer calls land in the same order for every K,
//!   and the dumps cannot tell how many lanes produced them. Because
//!   per-pair limits are heterogeneous, the coordinator banks these
//!   and applies only up to the round's global safe horizon
//!   (`min` of all lane limits).
//!
//! Determinism across K rests on the delivery *key*: every scheduled
//! event carries `(origin node) << 32 | per-origin sequence`, and a
//! same-instant batch is sorted by key before delivery in every mode.
//! FIFO-per-sender is preserved (one origin's keys ascend), and the
//! cross-origin order becomes a pure function of the topology and seed
//! instead of an artifact of queue-insertion interleaving — which is
//! what makes it shard-count-independent.

use crate::app::Application;
use crate::byzantine::ByzantineState;
use crate::node::Node;
use crate::pool::{PacketBuf, PacketPool};
use catenet_sim::{Duration, Instant, Link, LinkOutcome, Rng, Scheduler};
use catenet_wire::Ipv4Address;
use std::collections::{BTreeMap, HashMap};

use crate::network::{FrameTap, LinkId, NodeId};

/// Cumulative route-guard verdict counters harvested per neighbor:
/// (accepted, sanitized, damped, quarantined, attest-rejected).
pub(crate) type GuardCounters = (u64, u64, u64, u64, u64);

/// Cumulative accounting counters harvested per node: (flow evictions,
/// idle expiries, fragments attributed via port cache, fragments left
/// unattributed).
pub(crate) type AcctCounters = (u64, u64, u64, u64);

/// One endpoint of a duplex link.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkEnd {
    pub node: NodeId,
    pub iface: usize,
}

/// Coordinator-side description of a duplex link: who is on each end.
/// The two directed [`Link`]s themselves live in the lanes that own
/// their senders (see [`LaneLink`] and `Network::link_home`).
pub(crate) struct LinkMeta {
    pub a: LinkEnd,
    pub b: LinkEnd,
}

/// A scheduled occurrence.
pub(crate) enum Event {
    /// A frame arriving at a node's interface.
    Frame {
        to: NodeId,
        iface: usize,
        frame: PacketBuf,
    },
    /// A timer wake for a node.
    Wake { node: NodeId },
}

/// A scheduler entry: the event plus its delivery key. The key gives
/// same-instant batches a total order that is independent of shard
/// count and of scheduler-insertion interleaving: `(origin node) << 32
/// | per-origin sequence`. The origin of a frame is its sender; the
/// origin of a wake is the node itself.
pub(crate) struct Keyed {
    pub key: u64,
    pub event: Event,
}

// The diffsched replay harness schedules dummy payloads of exactly
// this size so E13's backend comparison moves the same bytes per queue
// op as the real loop. A silent size change would quietly skew that
// workload — fail the build instead.
const _: () = assert!(
    std::mem::size_of::<Keyed>() == catenet_sim::diffsched::REPLAY_PAYLOAD_BYTES,
    "Keyed scheduler entry size drifted from diffsched::REPLAY_PAYLOAD_BYTES"
);
const _: () = assert!(
    std::mem::size_of::<Event>() == catenet_sim::diffsched::REPLAY_PAYLOAD_BYTES - 8,
    "Event enum size drifted (the 8-byte key must account for the rest)"
);

/// One directed link plus the RNG that rolls its loss, corruption and
/// jitter. Keying the RNG to the link direction (not a network-global
/// stream) is what makes realizations shard-count-independent: a
/// frame's fate depends only on the link it crossed and how many
/// frames crossed before it.
pub(crate) struct LaneLink {
    pub link: Link,
    pub rng: Rng,
}

impl LaneLink {
    /// The deterministic per-direction RNG stream. Independent of
    /// shard count: a function of the network seed and the directed
    /// link's identity only.
    pub fn seeded(seed: u64, link: LinkId, ab: bool) -> Rng {
        let dir = ((link as u64) << 1) | (ab as u64);
        Rng::from_seed(seed ^ 0xC4A0_11D1_4EC7_10E5u64 ^ dir.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A frame that crossed a lane boundary during a window, buffered for
/// barrier exchange.
pub(crate) struct CrossFrame {
    pub at: Instant,
    pub key: u64,
    pub to: NodeId,
    pub iface: usize,
    pub frame: PacketBuf,
}

/// One telemetry-relevant change detected during a lane window,
/// applied by the coordinator at the barrier.
pub(crate) enum HarvestOp {
    /// The node's routing table version moved.
    RouteChanged { version: u64 },
    /// TCP retransmission timers fired (`delta` new firings; `total`
    /// is the cumulative count for the recorder row).
    RtoFired { total: u64, delta: u64 },
    /// A per-node counter advanced by `delta`.
    Count { name: &'static str, delta: u64 },
    /// A per-(node, neighbor) guard counter advanced by `delta`.
    NeighborCount {
        name: &'static str,
        addr: Ipv4Address,
        delta: u64,
    },
    /// A guard incident for the flight recorder.
    Incident { detail: String },
}

/// All harvest ops for one node at one instant. `token` is the
/// smallest delivery key that touched the node at `at` (0 for a
/// coordinator kick, which is absorbed immediately and never merges
/// with window entries); sorting entries by `(at, token)` reproduces
/// the single-lane service order exactly.
pub(crate) struct HarvestEntry {
    pub at: Instant,
    pub token: u64,
    pub node: NodeId,
    pub ops: Vec<HarvestOp>,
}

/// One shard lane: a contiguous node range plus everything its windows
/// own outright.
pub(crate) struct Lane {
    /// First node id covered (inclusive).
    pub lo: NodeId,
    /// One past the last node id covered.
    pub hi: NodeId,
    /// The lane's scheduler. Lane 0 doubles as the boot scheduler
    /// before a K>1 network splits.
    pub sched: Scheduler<Keyed>,
    /// Directed links whose sender lives in this lane.
    pub links: Vec<LaneLink>,
    /// Frames bound for other lanes, buffered until the barrier.
    pub cross: Vec<CrossFrame>,
    /// Telemetry changes detected this window, absorbed at the barrier.
    pub harvests: Vec<HarvestEntry>,
    /// Frames offered to links since the last barrier absorb.
    pub frames_offered: u64,
    /// Unconnected-interface drops since the last barrier absorb.
    pub unconnected_drops: u64,
    /// The pool this lane's nodes allocate from (the network-shared
    /// pool, or a lane-private one in `ShardKind::Parallel`).
    pub pool: PacketPool,
    /// Whether cross-lane frames must be severed from this lane's pool
    /// (true only in `ShardKind::Parallel`, where pools are per-lane
    /// and not thread-safe).
    pub detach_cross: bool,
    /// Scratch: the same-instant batch being delivered.
    batch: Vec<Keyed>,
    /// Scratch: nodes touched at the current instant, with the first
    /// (= smallest) key that touched each.
    touched: Vec<(NodeId, u64)>,
    /// Scratch: outbox swap target, so drains allocate nothing in
    /// steady state.
    outbox: Vec<(usize, PacketBuf)>,
}

impl Lane {
    pub fn new(lo: NodeId, hi: NodeId, sched: Scheduler<Keyed>, pool: PacketPool) -> Lane {
        Lane {
            lo,
            hi,
            sched,
            links: Vec::new(),
            cross: Vec::new(),
            harvests: Vec::new(),
            frames_offered: 0,
            unconnected_drops: 0,
            pool,
            detach_cross: false,
            batch: Vec::new(),
            touched: Vec::new(),
            outbox: Vec::new(),
        }
    }
}

/// A lane plus mutable views of the network state its windows may
/// touch: the lane's node range (as disjoint slices) and shared
/// read-only topology. This is everything `run_window` needs — and,
/// deliberately, nothing else: no telemetry, no accounting collector,
/// no other lane. In `ShardKind::Parallel` one of these per lane is
/// handed to a scoped thread.
pub(crate) struct LaneView<'a> {
    pub lane: &'a mut Lane,
    pub lane_index: usize,
    pub lo: NodeId,
    pub nodes: &'a mut [Node],
    pub apps: &'a mut [Vec<Box<dyn Application>>],
    pub next_wake: &'a mut [Option<Instant>],
    pub event_seq: &'a mut [u64],
    pub service_count: &'a mut [u64],
    pub byz: &'a mut [Option<ByzantineState>],
    pub last_dv_version: &'a mut [u64],
    pub last_rto_total: &'a mut [u64],
    pub last_harvest: &'a mut [(u64, u64, u64, u64)],
    pub last_acct: &'a mut [AcctCounters],
    pub last_guard: &'a mut [BTreeMap<Ipv4Address, GuardCounters>],
    pub endpoint_index: &'a HashMap<(NodeId, usize), (LinkId, bool)>,
    pub links_meta: &'a [LinkMeta],
    pub link_home: &'a [[(u32, u32); 2]],
    pub lane_of: &'a [u32],
    /// The frame tap, present only when a single lane runs (it is a
    /// coordinator-owned `FnMut`; multi-lane runs that install one are
    /// demoted to serial execution and still see every frame, but the
    /// per-lane window order of tap callbacks is not part of the
    /// determinism contract — dumps are).
    pub tap: Option<&'a mut FrameTap>,
}

impl LaneView<'_> {
    fn node(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id - self.lo]
    }

    /// Mint the next delivery key originating at `id`.
    fn next_key(&mut self, id: NodeId) -> u64 {
        let seq = &mut self.event_seq[id - self.lo];
        let key = ((id as u64) << 32) | *seq;
        *seq += 1;
        key
    }

    /// Run this lane up to and including `limit`: drain each event
    /// instant as one key-sorted batch, then service every touched
    /// node once, in first-touch (= ascending-key) order.
    pub fn run_window(&mut self, limit: Instant) {
        while let Some(at) = self.lane.sched.peek_time() {
            if at > limit {
                break;
            }
            let mut batch = core::mem::take(&mut self.lane.batch);
            batch.push(self.lane.sched.pop().expect("peeked").1);
            while let Some(keyed) = self.lane.sched.pop_due(at) {
                batch.push(keyed);
            }
            batch.sort_unstable_by_key(|keyed| keyed.key);
            let mut touched = core::mem::take(&mut self.lane.touched);
            touched.clear();
            for keyed in batch.drain(..) {
                let (node, key) = match keyed.event {
                    Event::Frame { to, iface, frame } => {
                        self.node(to).handle_frame(at, iface, frame);
                        (to, keyed.key)
                    }
                    Event::Wake { node } => {
                        if self.next_wake[node - self.lo] == Some(at) {
                            self.next_wake[node - self.lo] = None;
                        }
                        (node, keyed.key)
                    }
                };
                if !touched.iter().any(|&(n, _)| n == node) {
                    touched.push((node, key));
                }
            }
            self.lane.batch = batch;
            for &(node, token) in &touched {
                self.service_node(node, at, token);
            }
            self.lane.touched = touched;
        }
    }

    /// One service pass: applications, protocol machinery, harvest
    /// detection, outbox drain, timer re-arm. `token` orders the
    /// resulting harvest entry among same-instant entries.
    pub fn service_node(&mut self, id: NodeId, now: Instant, token: u64) {
        let li = id - self.lo;
        self.service_count[li] += 1;
        // Applications first: they may write into sockets.
        let mut apps = core::mem::take(&mut self.apps[li]);
        for app in &mut apps {
            app.poll(&mut self.nodes[li], now);
        }
        self.apps[li] = apps;
        // Protocol machinery: timers, routing, socket dispatch.
        self.nodes[li].service(now);
        self.harvest_node(id, now, token);
        // Push produced frames onto links. Swap semantics keep the
        // steady state allocation-free.
        let mut outbox = core::mem::take(&mut self.lane.outbox);
        self.nodes[li].swap_outbox(&mut outbox);
        for (iface, frame) in outbox.drain(..) {
            self.transmit(id, iface, frame, now);
        }
        self.lane.outbox = outbox;
        // Timer wake scheduling.
        let mut want = self.nodes[li].poll_at(now);
        for app in &self.apps[li] {
            if let Some(at) = app.next_wake() {
                let at = at.max(now);
                want = Some(match want {
                    Some(current) => current.min(at),
                    None => at,
                });
            }
        }
        if let Some(at) = want {
            let at = if at <= now {
                // "Immediately": schedule a hair later to let the event
                // loop breathe (prevents zero-delay spin).
                now + Duration::from_micros(1)
            } else {
                at
            };
            if self.next_wake[li].is_none_or(|pending| at < pending) {
                self.next_wake[li] = Some(at);
                let key = self.next_key(id);
                self.lane.sched.schedule_at(
                    at,
                    Keyed {
                        key,
                        event: Event::Wake { node: id },
                    },
                );
            }
        }
    }

    /// Offer a frame to the link behind (`from`, `iface`). Same-lane
    /// deliveries go straight into the lane scheduler; cross-lane
    /// deliveries are buffered for the barrier.
    pub fn transmit(&mut self, from: NodeId, iface: usize, mut frame: PacketBuf, now: Instant) {
        let Some(&(link_id, is_a)) = self.endpoint_index.get(&(from, iface)) else {
            self.lane.unconnected_drops += 1;
            return;
        };
        // A compromised node lies on the wire, not in its own state:
        // the rewrite happens here so the tap (and the receiver) see
        // exactly what a byzantine gateway would have emitted.
        if let Some(state) = self.byz[from - self.lo].as_mut() {
            let framing = self.nodes[from - self.lo].ifaces[iface].framing;
            if let Some(corrupted) = state.corrupt_frame(iface, framing, &frame) {
                frame = self.lane.pool.adopt(PacketBuf::from_vec(corrupted));
            }
        }
        if let Some(tap) = self.tap.as_mut() {
            tap(now, &frame);
        }
        self.lane.frames_offered += 1;
        let (_, link_idx) = self.link_home[link_id][usize::from(!is_a)];
        let meta = &self.links_meta[link_id];
        let dest = if is_a { meta.b } else { meta.a };
        let lane_link = &mut self.lane.links[link_idx as usize];
        match lane_link.link.transmit(now, &mut frame, &mut lane_link.rng) {
            LinkOutcome::Delivered { at, .. } => {
                let key = self.next_key(from);
                if self.lane_of[dest.node] as usize == self.lane_index {
                    self.lane.sched.schedule_at(
                        at,
                        Keyed {
                            key,
                            event: Event::Frame {
                                to: dest.node,
                                iface: dest.iface,
                                frame,
                            },
                        },
                    );
                } else {
                    if self.lane.detach_cross {
                        frame.detach();
                    }
                    self.lane.cross.push(CrossFrame {
                        at,
                        key,
                        to: dest.node,
                        iface: dest.iface,
                        frame,
                    });
                }
            }
            LinkOutcome::Dropped(reason) => {
                // Datagram service: the DESTINATION is never told. But
                // the offering node knows its own queue overflowed —
                // 1988 gateways answered that with ICMP source quench.
                if reason == catenet_sim::DropReason::QueueFull {
                    self.node(from).on_queue_drop(now, iface, &frame);
                    let outbox = self.node(from).take_outbox();
                    for (out_iface, out_frame) in outbox {
                        // One level of recursion at most: quenches are
                        // ICMP errors, and errors about errors are
                        // suppressed by `icmp_error_for`.
                        self.transmit(from, out_iface, out_frame, now);
                    }
                }
            }
        }
    }

    /// Post-service observation for one node: detect routing-table
    /// changes, RTO firings, counter movement and guard verdicts, and
    /// record them as harvest ops for the coordinator to apply at the
    /// barrier. Detection here mirrors, field for field and in the
    /// same order, what the pre-shard loop wrote directly into
    /// telemetry — the coordinator replays the ops verbatim.
    fn harvest_node(&mut self, id: NodeId, now: Instant, token: u64) {
        let li = id - self.lo;
        let mut ops: Vec<HarvestOp> = Vec::new();
        let node = &self.nodes[li];
        if let Some(dv) = &node.dv {
            let version = dv.version();
            if version != self.last_dv_version[li] {
                self.last_dv_version[li] = version;
                ops.push(HarvestOp::RouteChanged { version });
            }
        }
        let rto: u64 = node.tcp_sockets.iter().map(|s| s.stats.timeouts).sum();
        let last_rto = self.last_rto_total[li];
        if rto != last_rto {
            self.last_rto_total[li] = rto;
            // A drop means the sockets died with the node
            // (fate-sharing); only a rise is a firing.
            if rto > last_rto {
                ops.push(HarvestOp::RtoFired {
                    total: rto,
                    delta: rto - last_rto,
                });
            }
        }
        let cur = (
            node.stats.dropped_arp_gave_up,
            node.reassembler().completed,
            node.reassembler().timed_out,
            node.reassembler().evicted,
        );
        let last = self.last_harvest[li];
        if cur != last {
            self.last_harvest[li] = cur;
            for (name, value, floor) in [
                ("arp_gave_up_drops", cur.0, last.0),
                ("reassembled_datagrams", cur.1, last.1),
                ("reassembly_timeouts", cur.2, last.2),
                ("reassembly_evictions", cur.3, last.3),
            ] {
                // `value < floor` only after a crash reset the source;
                // nothing new happened, the baseline just moved.
                if value > floor {
                    ops.push(HarvestOp::Count {
                        name,
                        delta: value - floor,
                    });
                }
            }
        }
        // Accounting harvest: flow-table counters, delta-counted so
        // accounting-off runs keep byte-identical dumps.
        let cur = match &node.flows {
            Some(flows) => (
                flows.evicted,
                flows.expired,
                flows.frag_attributed,
                flows.frag_unattributed,
            ),
            None => (0, 0, 0, 0),
        };
        let last = self.last_acct[li];
        if cur != last {
            self.last_acct[li] = cur;
            for (name, value, floor) in [
                ("flow_evictions", cur.0, last.0),
                ("flow_idle_expired", cur.1, last.1),
                ("frag_attributed", cur.2, last.2),
                ("frag_unattributed", cur.3, last.3),
            ] {
                if value > floor {
                    ops.push(HarvestOp::Count {
                        name,
                        delta: value - floor,
                    });
                }
            }
        }
        // Route-guard harvest: verdict deltas per neighbor, incidents
        // for the flight recorder. With the guard off neither accrues.
        let mut verdict_rows: Vec<(Ipv4Address, GuardCounters)> = Vec::new();
        let mut incidents = Vec::new();
        if let Some(dv) = &mut self.nodes[li].dv {
            if dv.guard().enabled() {
                verdict_rows = dv
                    .guard()
                    .verdicts()
                    .map(|(addr, v)| {
                        (
                            addr,
                            (
                                v.accepted,
                                v.sanitized,
                                v.damped,
                                v.quarantined,
                                v.attest_rejected,
                            ),
                        )
                    })
                    .collect();
            }
            incidents = dv.guard_mut().drain_incidents();
        }
        for (addr, cur) in verdict_rows {
            let last = self.last_guard[li]
                .get(&addr)
                .copied()
                .unwrap_or((0, 0, 0, 0, 0));
            if cur == last {
                continue;
            }
            self.last_guard[li].insert(addr, cur);
            // `guard_attest_rejected` only accrues when attestation is
            // verified, so attestation-off runs emit no new counter.
            for (name, value, floor) in [
                ("guard_accepted", cur.0, last.0),
                ("guard_sanitized", cur.1, last.1),
                ("guard_damped", cur.2, last.2),
                ("guard_quarantined", cur.3, last.3),
                ("guard_attest_rejected", cur.4, last.4),
            ] {
                if value > floor {
                    ops.push(HarvestOp::NeighborCount {
                        name,
                        addr,
                        delta: value - floor,
                    });
                }
            }
        }
        for incident in incidents {
            ops.push(HarvestOp::Incident {
                detail: incident.to_string(),
            });
        }
        if !ops.is_empty() {
            self.lane.harvests.push(HarvestEntry {
                at: now,
                token,
                node: id,
                ops,
            });
        }
    }
}
