//! Workload applications.
//!
//! These are the traffic archetypes the paper's "types of service"
//! section names: bulk file transfer (the TCP archetype), packet voice
//! (the low-latency datagram archetype that forced UDP into existence),
//! remote echo, and the diagnostic ping. Applications are polled by the
//! network whenever their node is serviced and may request timer wakes.
//!
//! Results are shared with the experiment harness through
//! [`Shared`] (`Arc<Mutex<…>>`) handles, so applications are `Send`
//! and run unchanged on the serial arms, the threaded `Parallel` arm,
//! and the real-I/O substrate. Lanes only touch a handle from inside
//! their own window and the barrier joins threads before any
//! cross-lane frame is delivered, so lock acquisition order — and
//! therefore every observable outcome — is schedule-independent.

use crate::invariant::StreamIntegrity;
use crate::node::Node;
use catenet_sim::{Duration, Instant, Summary};
use catenet_tcp::{Endpoint, SocketConfig as TcpConfig, State as TcpState, TcpError};
use std::sync::{Arc, Mutex};

/// A thread-safe shared cell: how applications publish results to the
/// driving harness. `Arc<Mutex>` rather than `Rc<RefCell>` so that the
/// holder may live on a different thread than the node (the `Parallel`
/// shard arm, or a real-I/O driver's operator thread).
pub type Shared<T> = Arc<Mutex<T>>;

/// A fresh [`Shared`] cell holding `value`.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(Mutex::new(value))
}

/// An application attached to a node.
///
/// `Send` is a supertrait: applications are carried inside their node's
/// lane, and lanes may run on scoped worker threads (`Parallel`) or be
/// driven by a real-I/O event loop. State shared with the harness goes
/// through [`Shared`] handles.
pub trait Application: Send {
    /// Called whenever the node is serviced. The application may use any
    /// of the node's sockets and helpers.
    fn poll(&mut self, node: &mut Node, now: Instant);

    /// The next time this application needs a wake, if any.
    fn next_wake(&self) -> Option<Instant> {
        None
    }
}

// ===================================================================
// Bulk TCP transfer
// ===================================================================

/// Outcome of a bulk transfer, shared with the harness.
#[derive(Debug, Clone, Default)]
pub struct BulkResult {
    /// When the connection attempt began.
    pub started_at: Option<Instant>,
    /// When the transfer (including FIN handshake) completed.
    pub completed_at: Option<Instant>,
    /// Payload bytes acknowledged end to end.
    pub bytes_acked: u64,
    /// Payload bytes transmitted, retransmissions included — the upper
    /// bound any honest gateway ledger must stay under (E16).
    pub bytes_sent: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Total segments sent.
    pub segs_sent: u64,
    /// The connection died (reset / host crash).
    pub aborted: bool,
}

impl BulkResult {
    /// Transfer duration, if completed.
    pub fn duration(&self) -> Option<Duration> {
        Some(self.completed_at?.duration_since(self.started_at?))
    }

    /// Goodput in bits/second, if completed.
    pub fn goodput_bps(&self, bytes: usize) -> Option<f64> {
        let d = self.duration()?.secs_f64();
        (d > 0.0).then(|| bytes as f64 * 8.0 / d)
    }
}

/// Sends `total` bytes over one TCP connection, then closes.
pub struct BulkSender {
    remote: Endpoint,
    total: usize,
    config: TcpConfig,
    start_at: Instant,
    handle: Option<usize>,
    written: usize,
    closed: bool,
    done: bool,
    /// Shared outcome.
    pub result: Shared<BulkResult>,
    /// Optional end-to-end integrity checker: every byte the transport
    /// accepts is recorded as "sent" (pair it with the receiving
    /// [`SinkServer`] recording "delivered").
    integrity: Option<Shared<StreamIntegrity>>,
}

impl BulkSender {
    /// A sender that starts at `start_at`.
    pub fn new(remote: Endpoint, total: usize, config: TcpConfig, start_at: Instant) -> BulkSender {
        BulkSender {
            remote,
            total,
            config,
            start_at,
            handle: None,
            written: 0,
            closed: false,
            done: false,
            result: shared(BulkResult::default()),
            integrity: None,
        }
    }

    /// Record every accepted byte into `checker` (the sending half of a
    /// [`StreamIntegrity`] pair).
    pub fn with_integrity(mut self, checker: Shared<StreamIntegrity>) -> BulkSender {
        self.integrity = Some(checker);
        self
    }

    /// Handle to the shared result.
    pub fn result_handle(&self) -> Shared<BulkResult> {
        Arc::clone(&self.result)
    }
}

impl Application for BulkSender {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        if self.done {
            return;
        }
        let Some(handle) = self.handle else {
            if now >= self.start_at {
                match node.tcp_connect(self.remote, self.config.clone(), now) {
                    Ok(handle) => {
                        self.handle = Some(handle);
                        self.result.lock().unwrap().started_at = Some(now);
                    }
                    Err(_) => {
                        self.result.lock().unwrap().aborted = true;
                        self.done = true;
                    }
                }
            }
            return;
        };
        let Some(socket) = node.tcp_sockets.get_mut(handle) else {
            // Host crashed: fate-sharing destroyed the socket.
            self.result.lock().unwrap().aborted = true;
            self.done = true;
            return;
        };
        // Keep the transmit buffer fed. Bytes are a pure function of
        // stream position, so any corruption downstream is content-
        // detectable as well as checksum-detectable. The chunk is sized
        // to the buffer's actual room: a full buffer costs an empty
        // probe (which still surfaces reset/timeout errors), not an
        // 8 kB pattern build that `send_slice` would refuse anyway.
        while self.written < self.total {
            let chunk = (self.total - self.written)
                .min(8_192)
                .min(socket.send_room());
            let pattern: Vec<u8> = (self.written..self.written + chunk)
                .map(|i| (i % 251) as u8)
                .collect();
            match socket.send_slice(&pattern) {
                Ok(0) => break,
                Ok(n) => {
                    if let Some(integrity) = &self.integrity {
                        integrity.lock().unwrap().record_sent(&pattern[..n]);
                    }
                    self.written += n;
                }
                Err(TcpError::InvalidState) if socket.state() == TcpState::SynSent => break,
                Err(_) => {
                    self.result.lock().unwrap().aborted = true;
                    self.done = true;
                    return;
                }
            }
        }
        // Close only once the handshake is done: closing in SYN-SENT
        // deletes the TCB (RFC 793) and would discard the buffered data.
        if self.written == self.total
            && !self.closed
            && matches!(socket.state(), TcpState::Established | TcpState::CloseWait)
        {
            socket.close();
            self.closed = true;
        }
        // Completion: our FIN acked (FinWait2/TimeWait/Closed) with all
        // data acknowledged.
        let mut result = self.result.lock().unwrap();
        result.bytes_acked = socket.stats.bytes_acked;
        result.bytes_sent = socket.stats.bytes_sent;
        result.retransmits = socket.stats.retransmits;
        result.timeouts = socket.stats.timeouts;
        result.segs_sent = socket.stats.segs_sent;
        if socket.has_timed_out() {
            // RTO give-up leaves the socket Closed with its buffers
            // cleared — which would satisfy the completion test below.
            // It is an error exit, never a completion.
            result.aborted = true;
            self.done = true;
        } else if self.closed
            && socket.all_acked()
            && matches!(
                socket.state(),
                TcpState::FinWait2 | TcpState::TimeWait | TcpState::Closed
            )
        {
            result.completed_at = Some(now);
            self.done = true;
        } else if socket.is_closed() && !socket.all_acked() {
            result.aborted = true;
            self.done = true;
        }
    }

    fn next_wake(&self) -> Option<Instant> {
        (self.handle.is_none() && !self.done).then_some(self.start_at)
    }
}

/// Accepts one TCP connection on `port` and counts what arrives.
pub struct SinkServer {
    port: u16,
    config: TcpConfig,
    handle: Option<usize>,
    /// Bytes received so far (shared).
    pub received: Shared<u64>,
    /// Set when the peer's FIN arrived and the stream drained.
    pub finished: Shared<Option<Instant>>,
    /// Optional end-to-end integrity checker: every delivered byte is
    /// recorded and checked against the sender's record.
    integrity: Option<Shared<StreamIntegrity>>,
}

impl SinkServer {
    /// A sink listening on `port`.
    pub fn new(port: u16, config: TcpConfig) -> SinkServer {
        SinkServer {
            port,
            config,
            handle: None,
            received: shared(0),
            finished: shared(None),
            integrity: None,
        }
    }

    /// Record every delivered byte into `checker` (the receiving half
    /// of a [`StreamIntegrity`] pair).
    pub fn with_integrity(mut self, checker: Shared<StreamIntegrity>) -> SinkServer {
        self.integrity = Some(checker);
        self
    }
}

impl Application for SinkServer {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        let handle = match self.handle {
            Some(handle) => handle,
            None => {
                let handle = node.tcp_listen(self.port, self.config.clone());
                self.handle = Some(handle);
                handle
            }
        };
        let Some(socket) = node.tcp_sockets.get_mut(handle) else {
            return; // crashed
        };
        let mut buf = [0u8; 4096];
        loop {
            match socket.recv_slice(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    if let Some(integrity) = &self.integrity {
                        integrity.lock().unwrap().record_delivered(&buf[..n]);
                    }
                    *self.received.lock().unwrap() += n as u64;
                }
                Err(TcpError::Finished) => {
                    let mut finished = self.finished.lock().unwrap();
                    if finished.is_none() {
                        *finished = Some(now);
                        socket.close();
                    }
                    break;
                }
                Err(_) => break,
            }
        }
    }
}

// ===================================================================
// Constant-bit-rate datagram stream (packet voice)
// ===================================================================

/// CBR payload layout: 8-byte sequence + 8-byte send timestamp + padding.
pub const CBR_HEADER: usize = 16;

/// Sends fixed-size UDP datagrams at a fixed interval — the packet-voice
/// archetype from §4 of the paper.
pub struct CbrSource {
    remote: Endpoint,
    interval: Duration,
    size: usize,
    start_at: Instant,
    stop_at: Instant,
    next_send: Instant,
    seq: u64,
    socket: Option<usize>,
    /// Datagrams sent (shared).
    pub sent: Shared<u64>,
}

impl CbrSource {
    /// A source emitting `size`-byte datagrams every `interval` from
    /// `start_at` until `stop_at`.
    pub fn new(
        remote: Endpoint,
        interval: Duration,
        size: usize,
        start_at: Instant,
        stop_at: Instant,
    ) -> CbrSource {
        assert!(size >= CBR_HEADER);
        CbrSource {
            remote,
            interval,
            size,
            start_at,
            stop_at,
            next_send: start_at,
            seq: 0,
            socket: None,
            sent: shared(0),
        }
    }
}

impl Application for CbrSource {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        let socket = *self
            .socket
            .get_or_insert_with(|| node.udp_bind(30_000 + (self.remote.port % 1000)));
        while self.next_send <= now && self.next_send < self.stop_at {
            let mut payload = vec![0u8; self.size];
            payload[..8].copy_from_slice(&self.seq.to_be_bytes());
            payload[8..16].copy_from_slice(&now.total_micros().to_be_bytes());
            if let Some(sock) = node.udp_sockets.get_mut(socket) {
                sock.send_to(self.remote, &payload);
                *self.sent.lock().unwrap() += 1;
            }
            self.seq += 1;
            self.next_send += self.interval;
        }
    }

    fn next_wake(&self) -> Option<Instant> {
        (self.next_send < self.stop_at).then_some(self.next_send.max(self.start_at))
    }
}

/// Receives CBR datagrams and records one-way latency, loss and reorder.
pub struct CbrSink {
    port: u16,
    socket: Option<usize>,
    highest_seq: Option<u64>,
    /// One-way latencies in milliseconds (shared).
    pub latencies_ms: Shared<Summary>,
    /// Datagrams received (shared).
    pub received: Shared<u64>,
    /// Datagrams arriving with a sequence lower than one already seen.
    pub reordered: Shared<u64>,
}

impl CbrSink {
    /// A sink on `port`.
    pub fn new(port: u16) -> CbrSink {
        CbrSink {
            port,
            socket: None,
            highest_seq: None,
            latencies_ms: shared(Summary::new()),
            received: shared(0),
            reordered: shared(0),
        }
    }
}

impl Application for CbrSink {
    fn poll(&mut self, node: &mut Node, _now: Instant) {
        let socket = *self.socket.get_or_insert_with(|| node.udp_bind(self.port));
        let Some(sock) = node.udp_sockets.get_mut(socket) else {
            return;
        };
        while let Some(dgram) = sock.recv() {
            if dgram.payload.len() < CBR_HEADER {
                continue;
            }
            let seq = u64::from_be_bytes(dgram.payload[..8].try_into().expect("8 bytes"));
            let sent_us = u64::from_be_bytes(dgram.payload[8..16].try_into().expect("8 bytes"));
            let latency_us = dgram.at.total_micros().saturating_sub(sent_us);
            self.latencies_ms
                .lock().unwrap()
                .record(latency_us as f64 / 1000.0);
            *self.received.lock().unwrap() += 1;
            match self.highest_seq {
                Some(highest) if seq < highest => *self.reordered.lock().unwrap() += 1,
                _ => self.highest_seq = Some(self.highest_seq.unwrap_or(0).max(seq)),
            }
        }
    }
}

/// The same voice stream carried over TCP — the wrong tool, on purpose.
/// Head-of-line blocking under loss is exactly what experiment E2 is
/// designed to show; this app timestamps 160-byte "frames" into the
/// stream and the paired [`TcpVoiceSink`] measures their arrival.
pub struct TcpVoiceSource {
    remote: Endpoint,
    interval: Duration,
    frame_size: usize,
    start_at: Instant,
    stop_at: Instant,
    next_send: Instant,
    seq: u64,
    handle: Option<usize>,
    config: TcpConfig,
    /// Frames written into the stream (shared).
    pub sent: Shared<u64>,
}

impl TcpVoiceSource {
    /// Frames of `frame_size` bytes every `interval` over one connection.
    pub fn new(
        remote: Endpoint,
        interval: Duration,
        frame_size: usize,
        config: TcpConfig,
        start_at: Instant,
        stop_at: Instant,
    ) -> TcpVoiceSource {
        assert!(frame_size >= CBR_HEADER);
        TcpVoiceSource {
            remote,
            interval,
            frame_size,
            start_at,
            stop_at,
            next_send: start_at,
            seq: 0,
            handle: None,
            config,
            sent: shared(0),
        }
    }
}

impl Application for TcpVoiceSource {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        if now < self.start_at {
            return;
        }
        let handle = match self.handle {
            Some(handle) => handle,
            None => match node.tcp_connect(self.remote, self.config.clone(), now) {
                Ok(handle) => {
                    self.handle = Some(handle);
                    handle
                }
                Err(_) => return,
            },
        };
        let Some(socket) = node.tcp_sockets.get_mut(handle) else {
            return;
        };
        while self.next_send <= now && self.next_send < self.stop_at {
            let mut frame = vec![0u8; self.frame_size];
            frame[..8].copy_from_slice(&self.seq.to_be_bytes());
            frame[8..16].copy_from_slice(&now.total_micros().to_be_bytes());
            match socket.send_slice(&frame) {
                Ok(n) if n == frame.len() => {
                    self.seq += 1;
                    *self.sent.lock().unwrap() += 1;
                }
                // Buffer full: the stream is already blocked; the frame
                // is simply late (skip it — voice can't wait).
                _ => {}
            }
            self.next_send += self.interval;
        }
    }

    fn next_wake(&self) -> Option<Instant> {
        (self.next_send < self.stop_at).then_some(self.next_send.max(self.start_at))
    }
}

/// Receives the TCP voice stream and measures per-frame delivery latency.
pub struct TcpVoiceSink {
    port: u16,
    handle: Option<usize>,
    config: TcpConfig,
    frame_size: usize,
    pending: Vec<u8>,
    /// Per-frame latencies in milliseconds (shared).
    pub latencies_ms: Shared<Summary>,
    /// Frames received (shared).
    pub received: Shared<u64>,
}

impl TcpVoiceSink {
    /// A sink expecting `frame_size`-byte frames on `port`.
    pub fn new(port: u16, frame_size: usize, config: TcpConfig) -> TcpVoiceSink {
        TcpVoiceSink {
            port,
            handle: None,
            config,
            frame_size,
            pending: Vec::new(),
            latencies_ms: shared(Summary::new()),
            received: shared(0),
        }
    }
}

impl Application for TcpVoiceSink {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        let handle = match self.handle {
            Some(handle) => handle,
            None => {
                let handle = node.tcp_listen(self.port, self.config.clone());
                self.handle = Some(handle);
                handle
            }
        };
        let Some(socket) = node.tcp_sockets.get_mut(handle) else {
            return;
        };
        let mut buf = [0u8; 4096];
        while let Ok(n) = socket.recv_slice(&mut buf) {
            if n == 0 {
                break;
            }
            self.pending.extend_from_slice(&buf[..n]);
        }
        while self.pending.len() >= self.frame_size {
            let frame: Vec<u8> = self.pending.drain(..self.frame_size).collect();
            let sent_us = u64::from_be_bytes(frame[8..16].try_into().expect("8 bytes"));
            let latency_us = now.total_micros().saturating_sub(sent_us);
            self.latencies_ms
                .lock().unwrap()
                .record(latency_us as f64 / 1000.0);
            *self.received.lock().unwrap() += 1;
        }
    }
}

// ===================================================================
// Echo and ping
// ===================================================================

/// Echoes every UDP datagram back to its sender.
pub struct UdpEchoServer {
    port: u16,
    socket: Option<usize>,
    /// Datagrams echoed (shared).
    pub echoed: Shared<u64>,
}

impl UdpEchoServer {
    /// An echo server on `port`.
    pub fn new(port: u16) -> UdpEchoServer {
        UdpEchoServer {
            port,
            socket: None,
            echoed: shared(0),
        }
    }
}

impl Application for UdpEchoServer {
    fn poll(&mut self, node: &mut Node, _now: Instant) {
        let socket = *self.socket.get_or_insert_with(|| node.udp_bind(self.port));
        let Some(sock) = node.udp_sockets.get_mut(socket) else {
            return;
        };
        let mut replies = Vec::new();
        while let Some(dgram) = sock.recv() {
            replies.push((dgram.from, dgram.payload));
        }
        for (to, payload) in replies {
            if let Some(sock) = node.udp_sockets.get_mut(socket) {
                sock.send_to(to, &payload);
                *self.echoed.lock().unwrap() += 1;
            }
        }
    }
}

/// Sends pings at an interval and records round-trip times.
pub struct Pinger {
    dst: catenet_wire::Ipv4Address,
    interval: Duration,
    ident: u16,
    payload_len: usize,
    next_send: Instant,
    stop_at: Instant,
    next_seq: u16,
    sent_at: std::collections::HashMap<u16, Instant>,
    /// Round-trip times in milliseconds (shared).
    pub rtts_ms: Shared<Summary>,
    /// Replies received (shared).
    pub replies: Shared<u64>,
    /// Unreachable/time-exceeded errors received (shared).
    pub errors: Shared<u64>,
}

impl Pinger {
    /// Ping `dst` every `interval` until `stop_at`.
    pub fn new(
        dst: catenet_wire::Ipv4Address,
        interval: Duration,
        payload_len: usize,
        start_at: Instant,
        stop_at: Instant,
    ) -> Pinger {
        Pinger {
            dst,
            interval,
            ident: 0x4242,
            payload_len,
            next_send: start_at,
            stop_at,
            next_seq: 0,
            sent_at: std::collections::HashMap::new(),
            rtts_ms: shared(Summary::new()),
            replies: shared(0),
            errors: shared(0),
        }
    }
}

impl Application for Pinger {
    fn poll(&mut self, node: &mut Node, now: Instant) {
        while self.next_send <= now && self.next_send < self.stop_at {
            node.send_ping(self.dst, self.ident, self.next_seq, self.payload_len, now);
            self.sent_at.insert(self.next_seq, now);
            self.next_seq = self.next_seq.wrapping_add(1);
            self.next_send += self.interval;
        }
        for event in node.take_icmp_events() {
            match event.message {
                catenet_wire::Icmpv4Message::EchoReply { ident, seq_no } if ident == self.ident => {
                    if let Some(sent) = self.sent_at.remove(&seq_no) {
                        let rtt = event.at.duration_since(sent);
                        self.rtts_ms
                            .lock().unwrap()
                            .record(rtt.total_micros() as f64 / 1000.0);
                        *self.replies.lock().unwrap() += 1;
                    }
                }
                catenet_wire::Icmpv4Message::DstUnreachable(_)
                | catenet_wire::Icmpv4Message::TimeExceeded(_) => {
                    *self.errors.lock().unwrap() += 1;
                }
                _ => {}
            }
        }
    }

    fn next_wake(&self) -> Option<Instant> {
        (self.next_send < self.stop_at).then_some(self.next_send)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use catenet_sim::LinkClass;

    #[test]
    fn bulk_transfer_end_to_end() {
        let mut net = Network::new(21);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::T1Terrestrial);
        let dst = net.node(h2).primary_addr();

        let sink = SinkServer::new(80, TcpConfig::default());
        let received = Arc::clone(&sink.received);
        net.attach_app(h2, Box::new(sink));

        let sender = BulkSender::new(
            Endpoint::new(dst, 80),
            50_000,
            TcpConfig::default(),
            Instant::from_millis(10),
        );
        let result = sender.result_handle();
        net.attach_app(h1, Box::new(sender));

        net.run_for(Duration::from_secs(120));
        let result = result.lock().unwrap();
        assert!(!result.aborted);
        assert!(result.completed_at.is_some(), "transfer completed");
        assert_eq!(result.bytes_acked, 50_000);
        assert_eq!(*received.lock().unwrap(), 50_000);
        assert!(result.goodput_bps(50_000).unwrap() > 10_000.0);
    }

    #[test]
    fn bulk_transfer_integrity_holds_over_corrupting_path() {
        use crate::invariant::StreamIntegrity;
        let mut net = Network::new(31);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        // A nasty second hop: real loss and corruption.
        net.connect_with(
            g,
            h2,
            catenet_sim::LinkParams {
                loss: 0.02,
                corruption: 0.02,
                ..LinkClass::T1Terrestrial.params()
            },
            crate::iface::Framing::RawIp,
        );
        let dst = net.node(h2).primary_addr();

        let checker = shared(StreamIntegrity::new());
        let sink = SinkServer::new(80, TcpConfig::default()).with_integrity(Arc::clone(&checker));
        net.attach_app(h2, Box::new(sink));
        let sender = BulkSender::new(
            Endpoint::new(dst, 80),
            40_000,
            TcpConfig::default(),
            Instant::from_millis(10),
        )
        .with_integrity(Arc::clone(&checker));
        let result = sender.result_handle();
        net.attach_app(h1, Box::new(sender));

        net.run_for(Duration::from_secs(300));
        assert!(result.lock().unwrap().completed_at.is_some(), "transfer completed");
        let checker = checker.lock().unwrap();
        assert!(checker.is_complete(), "violations: {:?}", checker.violations());
        assert_eq!(checker.delivered_len(), 40_000);
        assert_eq!(checker.delivered_digest(), checker.sent_digest());
    }

    #[test]
    fn cbr_stream_measures_latency() {
        let mut net = Network::new(22);
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        net.connect(h1, h2, LinkClass::T1Terrestrial);
        let dst = net.node(h2).primary_addr();

        let sink = CbrSink::new(5004);
        let latencies = Arc::clone(&sink.latencies_ms);
        let received = Arc::clone(&sink.received);
        net.attach_app(h2, Box::new(sink));

        let source = CbrSource::new(
            Endpoint::new(dst, 5004),
            Duration::from_millis(20), // 50 pps
            160,                       // 64 kbit/s voice frame
            Instant::from_millis(100),
            Instant::from_secs(5),
        );
        let sent = Arc::clone(&source.sent);
        net.attach_app(h1, Box::new(source));

        net.run_for(Duration::from_secs(6));
        let sent = *sent.lock().unwrap();
        let received = *received.lock().unwrap();
        assert!(sent >= 240, "sent {sent}");
        assert!(received as f64 >= sent as f64 * 0.95, "received {received}/{sent}");
        let lat = latencies.lock().unwrap();
        // One T1 hop: ~30 ms propagation + ~1 ms serialization + jitter.
        assert!(lat.median() >= 30.0 && lat.median() <= 40.0, "median {}", lat.median());
    }

    #[test]
    fn udp_echo_round_trip() {
        let mut net = Network::new(23);
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        net.connect(h1, h2, LinkClass::EthernetLan);
        let dst = net.node(h2).primary_addr();

        let server = UdpEchoServer::new(7);
        let echoed = Arc::clone(&server.echoed);
        net.attach_app(h2, Box::new(server));

        let sock = net.node_mut(h1).udp_bind(7777);
        net.node_mut(h1).udp_sockets[sock].send_to(Endpoint::new(dst, 7), b"echo me");
        net.kick(h1);
        net.run_for(Duration::from_secs(1));

        assert_eq!(*echoed.lock().unwrap(), 1);
        let back = net.node_mut(h1).udp_sockets[sock].recv().unwrap();
        assert_eq!(back.payload, b"echo me");
    }

    #[test]
    fn pinger_records_rtts() {
        let mut net = Network::new(24);
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        net.connect(h1, h2, LinkClass::Satellite);
        let dst = net.node(h2).primary_addr();

        let pinger = Pinger::new(
            dst,
            Duration::from_millis(500),
            32,
            Instant::from_millis(10),
            Instant::from_secs(5),
        );
        let rtts = Arc::clone(&pinger.rtts_ms);
        let replies = Arc::clone(&pinger.replies);
        net.attach_app(h1, Box::new(pinger));

        net.run_for(Duration::from_secs(7));
        assert!(*replies.lock().unwrap() >= 8, "replies {}", *replies.lock().unwrap());
        let rtts = rtts.lock().unwrap();
        // Satellite: ~250 ms each way.
        assert!(rtts.median() >= 500.0, "median {}", rtts.median());
        assert!(rtts.median() <= 530.0, "median {}", rtts.median());
    }
}
