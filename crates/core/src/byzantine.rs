//! Byzantine corruption of a compromised gateway's outgoing routing
//! announcements.
//!
//! A [`catenet_sim::FaultAction::Compromise`] marks a node as lying on the
//! control plane. The network applies the lie at the last possible moment
//! — in `Network::transmit`, after the node has honestly computed its
//! advertisement — by rewriting the RIP payload of outgoing frames. The
//! node itself is unmodified: its table, its split-horizon policy and its
//! timers all still tell the truth internally, which is exactly what makes
//! byzantine faults nastier than crashes (the liar keeps participating).
//!
//! Only well-formed RIP-over-UDP frames are touched; data traffic, ARP and
//! everything else passes through byte-identical. The rewrite preserves
//! the original IP identification, TTL and ToS so the corruption is
//! invisible below the routing layer, and refills both checksums so
//! receivers cannot detect it by accident — detection has to come from the
//! route guard (or not at all, which is the point E14 prices).

use catenet_routing::message::MAX_ENTRIES;
use catenet_routing::{Attestation, OriginId, RipEntry, RipMessage, INFINITY_METRIC, RIP_PORT};
use catenet_sim::ByzantineAttack;
use catenet_wire::{
    EtherType, EthernetFrame, EthernetRepr, IpProtocol, Ipv4Address, Ipv4Cidr, Ipv4Packet,
    Ipv4Repr, UdpPacket, UdpRepr,
};
use std::collections::BTreeMap;

use crate::iface::Framing;

/// Per-compromised-node corruption state.
#[derive(Debug, Clone)]
pub(crate) struct ByzantineState {
    /// The lie this node tells.
    pub(crate) attack: ByzantineAttack,
    /// Outgoing RIP messages seen per interface (drives flap alternation).
    sends: BTreeMap<usize, u64>,
    /// First RIP payload seen per interface, replayed verbatim thereafter.
    snapshots: BTreeMap<usize, Vec<u8>>,
    /// RIP messages actually rewritten (for the flight recorder).
    pub(crate) corrupted: u64,
}

impl ByzantineState {
    pub(crate) fn new(attack: ByzantineAttack) -> ByzantineState {
        ByzantineState {
            attack,
            sends: BTreeMap::new(),
            snapshots: BTreeMap::new(),
            corrupted: 0,
        }
    }

    /// Rewrite an outgoing frame if it carries a RIP advertisement.
    ///
    /// Returns the replacement frame, or `None` when the frame is left
    /// alone (not RIP, or the attack chooses truth this round — flapping
    /// alternates, replay lets the first advert through to snapshot it).
    pub(crate) fn corrupt_frame(
        &mut self,
        iface: usize,
        framing: Framing,
        frame: &[u8],
    ) -> Option<Vec<u8>> {
        let (eth, ip_bytes): (Option<EthernetRepr>, &[u8]) = match framing {
            Framing::Ethernet => {
                let eth_frame = EthernetFrame::new_checked(frame).ok()?;
                if eth_frame.ethertype() != EtherType::Ipv4 {
                    return None;
                }
                let repr = EthernetRepr {
                    src_addr: eth_frame.src_addr(),
                    dst_addr: eth_frame.dst_addr(),
                    ethertype: EtherType::Ipv4,
                };
                (Some(repr), &frame[catenet_wire::ethernet::HEADER_LEN..])
            }
            Framing::RawIp => (None, frame),
        };
        let ip = Ipv4Packet::new_checked(ip_bytes).ok()?;
        if ip.protocol() != IpProtocol::Udp || ip.is_fragment() {
            return None;
        }
        let (src, dst) = (ip.src_addr(), ip.dst_addr());
        let (ident, hop_limit, tos) = (ip.ident(), ip.hop_limit(), ip.tos());
        let udp = UdpPacket::new_checked(ip.payload()).ok()?;
        if udp.dst_port() != RIP_PORT {
            return None;
        }
        let (src_port, dst_port) = (udp.src_port(), udp.dst_port());
        let mut message = RipMessage::decode(udp.payload()).ok()?;

        let send_index = *self.sends.entry(iface).or_insert(0);
        *self.sends.get_mut(&iface).unwrap() += 1;

        match self.attack {
            ByzantineAttack::BogusOrigins { count } => {
                // Claim direct attachment to prefixes nobody owns
                // (198.18.0.0/15 is benchmarking space — guaranteed
                // absent from any honest table here).
                for j in 0..count {
                    push_capped(
                        &mut message.entries,
                        RipEntry::new(Ipv4Cidr::new(Ipv4Address::new(198, 18, j, 0), 24), 1),
                    );
                }
            }
            ByzantineAttack::BlackholeVictim { addr, prefix_len } => {
                // Advertise metric 0 for the victim: one better than any
                // honest connected route, so every neighbor prefers the
                // liar. The liar's forwarding path then eats the traffic.
                let victim = Ipv4Cidr::new(Ipv4Address::from_bytes(&addr), prefix_len).network();
                message.entries.retain(|entry| entry.prefix != victim);
                push_capped(&mut message.entries, RipEntry::new(victim, 0));
            }
            ByzantineAttack::ReplayStale => {
                match self.snapshots.get(&iface) {
                    Some(stale) => {
                        message = RipMessage::decode(stale)
                            .expect("snapshot was decoded once already");
                    }
                    None => {
                        // The first advertisement goes out truthfully and
                        // becomes the stale state replayed forever after.
                        self.snapshots.insert(iface, udp.payload().to_vec());
                        return None;
                    }
                }
            }
            ByzantineAttack::FlapAdverts => {
                if send_index.is_multiple_of(2) {
                    return None; // even rounds tell the truth
                }
                for entry in &mut message.entries {
                    entry.metric = INFINITY_METRIC;
                }
            }
            ByzantineAttack::HijackPrefix { addr, prefix_len } => {
                // Claim a one-hop path to the victim but strip the
                // owner's proof — the liar cannot forge what it never
                // had. Metric 1 is wire-legal, so guards without
                // attestation believe it; attestation-armed guards see
                // a registered prefix with no proof and drop the entry.
                let victim = Ipv4Cidr::new(Ipv4Address::from_bytes(&addr), prefix_len).network();
                message.entries.retain(|entry| entry.prefix != victim);
                push_capped(&mut message.entries, RipEntry::new(victim, 1));
            }
            ByzantineAttack::HijackAttested { addr, prefix_len } => {
                // The designed residual: shorten the metric while
                // relaying the genuine attestation already in hand.
                // Proof of origin is not proof of path — the MAC still
                // verifies, so even attestation-armed guards believe
                // the shortened claim. Rounds where the liar has no
                // genuine proof to relay go out honestly.
                let victim = Ipv4Cidr::new(Ipv4Address::from_bytes(&addr), prefix_len).network();
                let lie = message
                    .entries
                    .iter_mut()
                    .find(|entry| entry.prefix == victim && entry.attestation.is_some());
                match lie {
                    Some(entry) => entry.metric = 1,
                    None => return None,
                }
            }
            ByzantineAttack::SpoofOrigin { addr, prefix_len } => {
                // Impersonate the owner outright: fabricate an
                // attestation under the owner's identity (and a serial
                // one ahead, to look fresh) without the owner's key.
                // The MAC cannot verify; only guards that skip
                // verification are fooled.
                let victim = Ipv4Cidr::new(Ipv4Address::from_bytes(&addr), prefix_len).network();
                let forged = match message
                    .entries
                    .iter()
                    .find_map(|entry| (entry.prefix == victim).then_some(entry.attestation))
                    .flatten()
                {
                    Some(real) => Attestation {
                        origin: real.origin,
                        seq: real.seq.wrapping_add(1),
                        tag: real.tag ^ 0xDEAD_BEEF_DEAD_BEEF,
                    },
                    None => Attestation {
                        origin: OriginId(0xFFFF),
                        seq: send_index as u32 + 1,
                        tag: 0xDEAD_BEEF_DEAD_BEEF,
                    },
                };
                message.entries.retain(|entry| entry.prefix != victim);
                push_capped(&mut message.entries, RipEntry::attested(victim, 1, forged));
            }
        }
        self.corrupted += 1;

        let rip_payload = message.encode();
        let udp_repr = UdpRepr {
            src_port,
            dst_port,
            payload_len: rip_payload.len(),
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        {
            let mut udp_out = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp_out);
            udp_out.payload_mut().copy_from_slice(&rip_payload);
            udp_out.fill_checksum(src, dst);
        }
        let datagram = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit,
                tos,
            },
            ident,
            false,
            &udp_buf,
        );
        match eth {
            Some(repr) => {
                let mut out = vec![0u8; repr.buffer_len() + datagram.len()];
                let mut frame_out = EthernetFrame::new_unchecked(&mut out[..]);
                repr.emit(&mut frame_out);
                frame_out.payload_mut().copy_from_slice(&datagram);
                Some(out)
            }
            None => Some(datagram),
        }
    }
}

/// Append an entry, replacing the last one when the page is already full
/// (the lie must still fit the wire format's 64-entry page).
fn push_capped(entries: &mut Vec<RipEntry>, entry: RipEntry) {
    if entries.len() < MAX_ENTRIES {
        entries.push(entry);
    } else if let Some(last) = entries.last_mut() {
        *last = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Tos;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn rip_frame(entries: Vec<RipEntry>) -> Vec<u8> {
        let payload = RipMessage { entries }.encode();
        let udp_repr = UdpRepr {
            src_port: RIP_PORT,
            dst_port: RIP_PORT,
            payload_len: payload.len(),
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        {
            let mut udp = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp);
            udp.payload_mut().copy_from_slice(&payload);
            udp.fill_checksum(SRC, DST);
        }
        catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: SRC,
                dst_addr: DST,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            7,
            false,
            &udp_buf,
        )
    }

    fn decode_frame(frame: &[u8]) -> RipMessage {
        let ip = Ipv4Packet::new_checked(frame).unwrap();
        assert!(ip.verify_checksum(), "rewritten IP checksum must be valid");
        let udp = UdpPacket::new_checked(ip.payload()).unwrap();
        assert!(
            udp.verify_checksum(ip.src_addr(), ip.dst_addr()),
            "rewritten UDP checksum must be valid"
        );
        RipMessage::decode(udp.payload()).unwrap()
    }

    fn honest_entries() -> Vec<RipEntry> {
        vec![
            RipEntry::new("10.1.0.0/16".parse().unwrap(), 1),
            RipEntry::new("10.2.0.0/16".parse().unwrap(), 2),
        ]
    }

    #[test]
    fn blackhole_injects_metric_zero_and_keeps_headers() {
        let mut state = ByzantineState::new(ByzantineAttack::BlackholeVictim {
            addr: [10, 9, 0, 0],
            prefix_len: 16,
        });
        let frame = rip_frame(honest_entries());
        let out = state
            .corrupt_frame(0, Framing::RawIp, &frame)
            .expect("RIP frame must be rewritten");
        let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert_eq!(ip.ident(), 7, "identification preserved");
        assert_eq!(ip.hop_limit(), 64, "TTL preserved");
        let message = decode_frame(&out);
        let victim: Ipv4Cidr = "10.9.0.0/16".parse().unwrap();
        let lie = message
            .entries
            .iter()
            .find(|e| e.prefix == victim)
            .expect("victim prefix advertised");
        assert_eq!(lie.metric, 0, "metric 0 beats every honest route");
        assert_eq!(message.entries.len(), 3, "honest entries still present");
        assert_eq!(state.corrupted, 1);
    }

    #[test]
    fn flapping_alternates_truth_and_infinity() {
        let mut state = ByzantineState::new(ByzantineAttack::FlapAdverts);
        let frame = rip_frame(honest_entries());
        assert!(
            state.corrupt_frame(0, Framing::RawIp, &frame).is_none(),
            "first send is truthful"
        );
        let poisoned = state.corrupt_frame(0, Framing::RawIp, &frame).unwrap();
        assert!(
            decode_frame(&poisoned)
                .entries
                .iter()
                .all(|e| e.metric == INFINITY_METRIC),
            "second send withdraws everything"
        );
        assert!(
            state.corrupt_frame(0, Framing::RawIp, &frame).is_none(),
            "third send is truthful again"
        );
        // A different interface flaps on its own schedule.
        assert!(state.corrupt_frame(1, Framing::RawIp, &frame).is_none());
    }

    #[test]
    fn replay_snapshots_the_first_advert_and_repeats_it() {
        let mut state = ByzantineState::new(ByzantineAttack::ReplayStale);
        let first = rip_frame(honest_entries());
        assert!(
            state.corrupt_frame(0, Framing::RawIp, &first).is_none(),
            "first advert passes (and is snapshotted)"
        );
        // The node's table has since changed — but the liar replays t=0.
        let newer = rip_frame(vec![RipEntry::new("10.3.0.0/16".parse().unwrap(), 5)]);
        let out = state.corrupt_frame(0, Framing::RawIp, &newer).unwrap();
        assert_eq!(
            decode_frame(&out).entries,
            honest_entries(),
            "stale state substituted"
        );
    }

    #[test]
    fn bogus_origins_append_benchmark_space() {
        let mut state = ByzantineState::new(ByzantineAttack::BogusOrigins { count: 3 });
        let frame = rip_frame(honest_entries());
        let out = state.corrupt_frame(0, Framing::RawIp, &frame).unwrap();
        let message = decode_frame(&out);
        assert_eq!(message.entries.len(), 5);
        let bogus: Ipv4Cidr = "198.18.2.0/24".parse().unwrap();
        assert!(message.entries.iter().any(|e| e.prefix == bogus && e.metric == 1));
    }

    #[test]
    fn hijack_strips_the_attestation_it_cannot_forge() {
        let mut state = ByzantineState::new(ByzantineAttack::HijackPrefix {
            addr: [10, 2, 0, 0],
            prefix_len: 16,
        });
        let real = Attestation {
            origin: OriginId(2),
            seq: 40,
            tag: 0x1234,
        };
        let frame = rip_frame(vec![
            RipEntry::new("10.1.0.0/16".parse().unwrap(), 1),
            RipEntry::attested("10.2.0.0/16".parse().unwrap(), 4, real),
        ]);
        let out = state.corrupt_frame(0, Framing::RawIp, &frame).unwrap();
        let message = decode_frame(&out);
        let victim: Ipv4Cidr = "10.2.0.0/16".parse().unwrap();
        let lie = message.entries.iter().find(|e| e.prefix == victim).unwrap();
        assert_eq!(lie.metric, 1, "liar claims a one-hop path");
        assert!(lie.attestation.is_none(), "the owner's proof is gone");
        // Other entries ride through untouched.
        assert!(message
            .entries
            .iter()
            .any(|e| e.prefix == "10.1.0.0/16".parse().unwrap() && e.metric == 1));
    }

    #[test]
    fn attested_hijack_keeps_the_genuine_proof() {
        let mut state = ByzantineState::new(ByzantineAttack::HijackAttested {
            addr: [10, 2, 0, 0],
            prefix_len: 16,
        });
        // No attestation in hand yet: the round goes out honestly.
        let bare = rip_frame(vec![RipEntry::new("10.2.0.0/16".parse().unwrap(), 4)]);
        assert!(state.corrupt_frame(0, Framing::RawIp, &bare).is_none());
        // With a relayed proof, only the metric is rewritten.
        let real = Attestation {
            origin: OriginId(2),
            seq: 40,
            tag: 0x1234,
        };
        let frame = rip_frame(vec![RipEntry::attested(
            "10.2.0.0/16".parse().unwrap(),
            4,
            real,
        )]);
        let out = state.corrupt_frame(0, Framing::RawIp, &frame).unwrap();
        let lie = &decode_frame(&out).entries[0];
        assert_eq!(lie.metric, 1);
        assert_eq!(lie.attestation, Some(real), "proof relayed unmodified");
    }

    #[test]
    fn spoofed_origin_fabricates_a_bad_mac() {
        let mut state = ByzantineState::new(ByzantineAttack::SpoofOrigin {
            addr: [10, 2, 0, 0],
            prefix_len: 16,
        });
        let real = Attestation {
            origin: OriginId(2),
            seq: 40,
            tag: 0x1234,
        };
        let frame = rip_frame(vec![RipEntry::attested(
            "10.2.0.0/16".parse().unwrap(),
            4,
            real,
        )]);
        let out = state.corrupt_frame(0, Framing::RawIp, &frame).unwrap();
        let lie = &decode_frame(&out).entries[0];
        let forged = lie.attestation.expect("a forged proof is attached");
        assert_eq!(lie.metric, 1);
        assert_eq!(forged.origin, real.origin, "owner's identity is claimed");
        assert_eq!(forged.seq, 41, "serial bumped to look fresh");
        assert_ne!(forged.tag, real.tag, "but the tag cannot be right");
        // Without a real attestation to copy, an identity is invented.
        let bare = rip_frame(vec![RipEntry::new("10.2.0.0/16".parse().unwrap(), 4)]);
        let out = state.corrupt_frame(0, Framing::RawIp, &bare).unwrap();
        let forged = decode_frame(&out).entries[0].attestation.unwrap();
        assert_eq!(forged.origin, OriginId(0xFFFF));
    }

    #[test]
    fn non_rip_traffic_passes_untouched() {
        let mut state = ByzantineState::new(ByzantineAttack::FlapAdverts);
        // UDP to a non-RIP port.
        let udp_repr = UdpRepr {
            src_port: 9999,
            dst_port: 9999,
            payload_len: 4,
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        {
            let mut udp = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp);
            udp.payload_mut().copy_from_slice(b"data");
            udp.fill_checksum(SRC, DST);
        }
        let frame = catenet_ip::build_ipv4(
            &Ipv4Repr {
                src_addr: SRC,
                dst_addr: DST,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            1,
            false,
            &udp_buf,
        );
        assert!(state.corrupt_frame(0, Framing::RawIp, &frame).is_none());
        // Garbage is not a frame at all.
        assert!(state.corrupt_frame(0, Framing::RawIp, &[0u8; 3]).is_none());
        assert_eq!(state.corrupted, 0);
    }

    #[test]
    fn ethernet_framing_is_round_tripped() {
        let mut state = ByzantineState::new(ByzantineAttack::BlackholeVictim {
            addr: [10, 9, 0, 0],
            prefix_len: 16,
        });
        let datagram = rip_frame(honest_entries());
        let repr = EthernetRepr {
            src_addr: catenet_wire::EthernetAddress::new(2, 0, 0, 0, 0, 1),
            dst_addr: catenet_wire::EthernetAddress::new(2, 0, 0, 0, 0, 2),
            ethertype: EtherType::Ipv4,
        };
        let mut framed = vec![0u8; repr.buffer_len() + datagram.len()];
        {
            let mut frame = EthernetFrame::new_unchecked(&mut framed[..]);
            repr.emit(&mut frame);
            frame.payload_mut().copy_from_slice(&datagram);
        }
        let out = state
            .corrupt_frame(0, Framing::Ethernet, &framed)
            .expect("ethernet RIP frame rewritten");
        let eth = EthernetFrame::new_checked(&out[..]).unwrap();
        assert_eq!(eth.src_addr(), repr.src_addr, "MAC header preserved");
        assert_eq!(eth.dst_addr(), repr.dst_addr);
        let message = decode_frame(eth.payload());
        assert!(message.entries.iter().any(|e| e.metric == 0));
    }
}
