//! The UDP socket: the raw-datagram type of service.
//!
//! This is deliberately thin — a port number, a receive queue, a transmit
//! queue. Everything TCP manufactures (ordering, reliability, flow
//! control) is *absent on purpose*: packet voice would rather lose a
//! sample than wait for a retransmission (§4 of the paper, and the whole
//! reason the TCP/IP split happened). Experiment E2 measures the latency
//! this thinness buys.

use catenet_sim::Instant;
use catenet_tcp::Endpoint;
use catenet_wire::Tos;
use std::collections::VecDeque;

/// Default capacity of the receive queue, in datagrams.
pub const DEFAULT_RX_QUEUE: usize = 64;

/// A received datagram with its metadata.
#[derive(Debug, Clone)]
pub struct UdpDatagram {
    /// Who sent it.
    pub from: Endpoint,
    /// When it arrived at this host.
    pub at: Instant,
    /// The payload.
    pub payload: Vec<u8>,
}

/// A UDP socket.
#[derive(Debug)]
pub struct UdpSocket {
    /// The bound local port.
    pub local_port: u16,
    /// ToS marking applied to transmitted datagrams (the "type of
    /// service" knob the architecture exposes per-datagram).
    pub tos: Tos,
    /// TTL for transmitted datagrams.
    pub ttl: u8,
    rx: VecDeque<UdpDatagram>,
    rx_capacity: usize,
    tx: VecDeque<(Endpoint, Vec<u8>)>,
    /// Datagrams dropped because the receive queue was full.
    pub rx_dropped: u64,
    /// Datagrams enqueued for transmission.
    pub tx_count: u64,
    /// Datagrams delivered to the application.
    pub rx_count: u64,
}

impl UdpSocket {
    /// Bind a socket to `local_port`.
    pub fn bind(local_port: u16) -> UdpSocket {
        UdpSocket {
            local_port,
            tos: Tos::default(),
            ttl: 64,
            rx: VecDeque::new(),
            rx_capacity: DEFAULT_RX_QUEUE,
            tx: VecDeque::new(),
            rx_dropped: 0,
            tx_count: 0,
            rx_count: 0,
        }
    }

    /// Bind with a specific receive-queue capacity.
    pub fn bind_with_capacity(local_port: u16, rx_capacity: usize) -> UdpSocket {
        UdpSocket {
            rx_capacity,
            ..UdpSocket::bind(local_port)
        }
    }

    /// Queue a datagram for transmission to `to`.
    pub fn send_to(&mut self, to: Endpoint, payload: &[u8]) {
        self.tx.push_back((to, payload.to_vec()));
        self.tx_count += 1;
    }

    /// Receive the oldest queued datagram, if any.
    pub fn recv(&mut self) -> Option<UdpDatagram> {
        let dgram = self.rx.pop_front();
        if dgram.is_some() {
            self.rx_count += 1;
        }
        dgram
    }

    /// Number of datagrams waiting to be received.
    pub fn rx_queue_len(&self) -> usize {
        self.rx.len()
    }

    /// Whether any datagrams await transmission.
    pub fn has_pending_tx(&self) -> bool {
        !self.tx.is_empty()
    }

    /// (Stack side.) Take the next datagram to transmit.
    pub fn take_tx(&mut self) -> Option<(Endpoint, Vec<u8>)> {
        self.tx.pop_front()
    }

    /// (Stack side.) Deliver a received datagram; drop-tail on overflow.
    pub fn deliver(&mut self, from: Endpoint, at: Instant, payload: Vec<u8>) {
        if self.rx.len() >= self.rx_capacity {
            self.rx_dropped += 1;
            return;
        }
        self.rx.push_back(UdpDatagram { from, at, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Ipv4Address;

    fn ep(port: u16) -> Endpoint {
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), port)
    }

    #[test]
    fn send_queues_for_stack() {
        let mut sock = UdpSocket::bind(4000);
        sock.send_to(ep(53), b"query");
        assert!(sock.has_pending_tx());
        let (to, payload) = sock.take_tx().unwrap();
        assert_eq!(to, ep(53));
        assert_eq!(payload, b"query");
        assert!(!sock.has_pending_tx());
        assert_eq!(sock.tx_count, 1);
    }

    #[test]
    fn deliver_then_recv_fifo() {
        let mut sock = UdpSocket::bind(4000);
        sock.deliver(ep(1), Instant::from_millis(1), b"first".to_vec());
        sock.deliver(ep(2), Instant::from_millis(2), b"second".to_vec());
        assert_eq!(sock.rx_queue_len(), 2);
        let a = sock.recv().unwrap();
        assert_eq!(a.payload, b"first");
        assert_eq!(a.from, ep(1));
        assert_eq!(a.at, Instant::from_millis(1));
        let b = sock.recv().unwrap();
        assert_eq!(b.payload, b"second");
        assert!(sock.recv().is_none());
        assert_eq!(sock.rx_count, 2);
    }

    #[test]
    fn overflow_drops_tail() {
        let mut sock = UdpSocket::bind_with_capacity(4000, 2);
        for i in 0..4u8 {
            sock.deliver(ep(1), Instant::ZERO, vec![i]);
        }
        assert_eq!(sock.rx_queue_len(), 2);
        assert_eq!(sock.rx_dropped, 2);
        // The oldest survive (drop-tail, not drop-head).
        assert_eq!(sock.recv().unwrap().payload, vec![0]);
        assert_eq!(sock.recv().unwrap().payload, vec![1]);
    }
}
