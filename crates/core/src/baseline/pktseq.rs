//! A packet-sequenced reliable transport: TCP's rejected sibling.
//!
//! The paper's TCP section recounts the debate: "TCP was originally
//! designed to deliver packets ... the decision to use bytes \[permits\]
//! the packets to be repacketized and combined." This module implements
//! the road not taken — a go-back-N transport whose sequence numbers
//! count *packets*:
//!
//! - every application write becomes exactly one packet, forever
//!   (tinygrams can never be coalesced), and
//! - a retransmission must resend the original packet byte-for-byte
//!   (no repacketization when the path MSS shrinks or when many small
//!   packets could ride together).
//!
//! The interface mirrors the sans-IO shape of [`catenet_tcp::Socket`]
//! (`send` / `dispatch` / `process` / `poll_at`) so experiment E9 can
//! drive both transports through an identical lossy channel and compare
//! packets sent, bytes carried, and completion time.

use catenet_sim::{Duration, Instant};
use std::collections::VecDeque;

/// A wire segment of the packet-sequenced protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PktSegment {
    /// Packet sequence number.
    pub seq: u64,
    /// Cumulative acknowledgment: all packets below this are received.
    pub ack: u64,
    /// Payload (empty for pure ACKs).
    pub payload: Vec<u8>,
}

/// Per-packet header overhead on the wire, for byte accounting
/// (seq + ack + length, a plausible 1970s header).
pub const PKT_HEADER: usize = 20;

/// Counters for the comparison harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct PktStats {
    /// Data segments transmitted (including retransmissions).
    pub segs_sent: u64,
    /// Payload bytes transmitted (including retransmissions).
    pub bytes_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Pure ACK segments sent.
    pub acks_sent: u64,
}

/// The sending side.
#[derive(Debug)]
pub struct PktSender {
    /// Packets as the application wrote them — immutable forever.
    packets: Vec<Vec<u8>>,
    /// Next packet index to transmit (cursor; rewound on timeout).
    snd_nxt: u64,
    /// Oldest unacknowledged packet.
    snd_una: u64,
    /// Window, in packets.
    window: u64,
    /// Highest packet index ever transmitted (+1).
    max_sent: u64,
    rto: Duration,
    retransmit_at: Option<Instant>,
    /// Counters.
    pub stats: PktStats,
}

impl PktSender {
    /// A sender with a fixed window (packets) and retransmission timeout.
    pub fn new(window: u64, rto: Duration) -> PktSender {
        PktSender {
            packets: Vec::new(),
            snd_nxt: 0,
            snd_una: 0,
            window: window.max(1),
            max_sent: 0,
            rto,
            retransmit_at: None,
            stats: PktStats::default(),
        }
    }

    /// One write = one packet = one sequence number. Forever.
    pub fn send(&mut self, data: &[u8]) {
        self.packets.push(data.to_vec());
    }

    /// Whether every packet has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.packets.len() as u64
    }

    /// Produce the next segment to transmit, if the window allows.
    pub fn dispatch(&mut self, now: Instant) -> Option<PktSegment> {
        // Timeout: go-back-N.
        if let Some(at) = self.retransmit_at {
            if now >= at && self.snd_una < self.snd_highest() {
                self.snd_nxt = self.snd_una;
                self.retransmit_at = Some(now + self.rto);
            }
        }
        if self.snd_nxt >= self.packets.len() as u64 {
            return None;
        }
        if self.snd_nxt >= self.snd_una + self.window {
            return None;
        }
        let index = self.snd_nxt as usize;
        let payload = self.packets[index].clone();
        let is_retransmit = self.snd_nxt < self.snd_highest();
        let seg = PktSegment {
            seq: self.snd_nxt,
            ack: 0,
            payload,
        };
        self.stats.segs_sent += 1;
        self.stats.bytes_sent += seg.payload.len() as u64;
        if is_retransmit {
            self.stats.retransmits += 1;
        }
        self.snd_nxt += 1;
        self.max_sent = self.max_sent.max(self.snd_nxt);
        if self.retransmit_at.is_none() {
            self.retransmit_at = Some(now + self.rto);
        }
        Some(seg)
    }

    fn snd_highest(&self) -> u64 {
        self.max_sent
    }

    /// Process a cumulative ACK.
    pub fn process_ack(&mut self, ack: u64, now: Instant) {
        if ack > self.snd_una {
            self.snd_una = ack.min(self.packets.len() as u64);
            if self.snd_nxt < self.snd_una {
                self.snd_nxt = self.snd_una;
            }
            self.retransmit_at = if self.all_acked() {
                None
            } else {
                Some(now + self.rto)
            };
        }
    }

    /// When the sender next needs `dispatch` called.
    pub fn poll_at(&self) -> Option<Instant> {
        self.retransmit_at
    }
}

/// The receiving side.
#[derive(Debug, Default)]
pub struct PktReceiver {
    /// Next packet expected.
    rcv_nxt: u64,
    /// Out-of-order stash.
    stash: std::collections::BTreeMap<u64, Vec<u8>>,
    /// In-order packets awaiting the application.
    delivered: VecDeque<Vec<u8>>,
    /// Total packets accepted in order.
    pub accepted: u64,
}

impl PktReceiver {
    /// A fresh receiver.
    pub fn new() -> PktReceiver {
        PktReceiver::default()
    }

    /// Process a data segment; returns the cumulative ACK to send back.
    pub fn process(&mut self, seg: PktSegment) -> u64 {
        if seg.seq == self.rcv_nxt {
            self.delivered.push_back(seg.payload);
            self.rcv_nxt += 1;
            self.accepted += 1;
            // Drain the stash.
            while let Some(payload) = self.stash.remove(&self.rcv_nxt) {
                self.delivered.push_back(payload);
                self.rcv_nxt += 1;
                self.accepted += 1;
            }
        } else if seg.seq > self.rcv_nxt {
            self.stash.insert(seg.seq, seg.payload);
        }
        // Duplicates fall through to a repeat ACK.
        self.rcv_nxt
    }

    /// Take the next in-order packet.
    pub fn recv(&mut self) -> Option<Vec<u8>> {
        self.delivered.pop_front()
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rto() -> Duration {
        Duration::from_millis(100)
    }

    #[test]
    fn in_order_transfer() {
        let mut tx = PktSender::new(4, rto());
        let mut rx = PktReceiver::new();
        for chunk in [&b"aa"[..], b"bbb", b"c"] {
            tx.send(chunk);
        }
        let mut now = Instant::ZERO;
        while !tx.all_acked() {
            while let Some(seg) = tx.dispatch(now) {
                let ack = rx.process(seg);
                tx.process_ack(ack, now);
            }
            now += Duration::from_millis(10);
        }
        assert_eq!(rx.recv().unwrap(), b"aa");
        assert_eq!(rx.recv().unwrap(), b"bbb");
        assert_eq!(rx.recv().unwrap(), b"c");
        assert!(rx.recv().is_none());
        assert_eq!(tx.stats.retransmits, 0);
    }

    #[test]
    fn window_limits_flight() {
        let mut tx = PktSender::new(2, rto());
        for _ in 0..5 {
            tx.send(b"x");
        }
        let now = Instant::ZERO;
        assert!(tx.dispatch(now).is_some());
        assert!(tx.dispatch(now).is_some());
        assert!(tx.dispatch(now).is_none(), "window of 2");
        tx.process_ack(1, now);
        assert!(tx.dispatch(now).is_some());
    }

    #[test]
    fn timeout_goes_back_n_resending_identical_packets() {
        let mut tx = PktSender::new(4, rto());
        tx.send(b"one");
        tx.send(b"two");
        let now = Instant::ZERO;
        let first = tx.dispatch(now).unwrap();
        let second = tx.dispatch(now).unwrap();
        // Both lost. After RTO, the cursor rewinds and the SAME packets
        // come out — no coalescing into one segment, ever.
        let later = now + Duration::from_millis(150);
        let re_first = tx.dispatch(later).unwrap();
        let re_second = tx.dispatch(later).unwrap();
        assert_eq!(re_first, first);
        assert_eq!(re_second, second);
        assert_eq!(tx.stats.retransmits, 2);
        assert_eq!(tx.stats.segs_sent, 4);
    }

    #[test]
    fn receiver_reorders_and_dedups() {
        let mut rx = PktReceiver::new();
        let seg = |seq: u64, data: &[u8]| PktSegment {
            seq,
            ack: 0,
            payload: data.to_vec(),
        };
        assert_eq!(rx.process(seg(1, b"second")), 0, "hole: ack still 0");
        assert_eq!(rx.process(seg(0, b"first")), 2, "hole filled");
        assert_eq!(rx.process(seg(0, b"first")), 2, "duplicate re-acked");
        assert_eq!(rx.recv().unwrap(), b"first");
        assert_eq!(rx.recv().unwrap(), b"second");
        assert_eq!(rx.accepted, 2);
    }

    #[test]
    fn lossy_channel_completes_with_retransmission() {
        // Deterministic loss: every 3rd data segment vanishes.
        let mut tx = PktSender::new(4, rto());
        let mut rx = PktReceiver::new();
        for i in 0..20u8 {
            tx.send(&[i; 10]);
        }
        let mut now = Instant::ZERO;
        let mut counter = 0u64;
        for _ in 0..10_000 {
            if tx.all_acked() {
                break;
            }
            let mut sent_any = false;
            while let Some(seg) = tx.dispatch(now) {
                sent_any = true;
                counter += 1;
                if !counter.is_multiple_of(3) {
                    let ack = rx.process(seg);
                    tx.process_ack(ack, now);
                }
            }
            let _ = sent_any;
            now += Duration::from_millis(20);
        }
        assert!(tx.all_acked());
        assert_eq!(rx.accepted, 20);
        assert!(tx.stats.retransmits > 0);
        let mut received = Vec::new();
        while let Some(p) = rx.recv() {
            received.push(p);
        }
        assert_eq!(received.len(), 20);
        for (i, p) in received.iter().enumerate() {
            assert_eq!(p, &vec![i as u8; 10]);
        }
    }

    #[test]
    fn tinygrams_stay_tiny() {
        // 100 one-byte writes = 100 packets = 100 × PKT_HEADER overhead.
        // (TCP with byte sequencing would coalesce; this cannot.)
        let mut tx = PktSender::new(100, rto());
        for _ in 0..100 {
            tx.send(b"x");
        }
        let now = Instant::ZERO;
        let mut segs = 0;
        while tx.dispatch(now).is_some() {
            segs += 1;
        }
        assert_eq!(segs, 100);
        assert_eq!(tx.stats.bytes_sent, 100);
        // Wire bytes including headers: 100 packets × (20 + 1).
        let wire = tx.stats.segs_sent * PKT_HEADER as u64 + tx.stats.bytes_sent;
        assert_eq!(wire, 2_100);
    }
}
