//! Virtual-circuit gateways: the fate-sharing counterfactual.
//!
//! In this mode a gateway refuses to forward a TCP segment unless it has
//! a *circuit* — per-connection forwarding state installed by observing
//! the connection's SYN. That is exactly the X.25/virtual-circuit world
//! the paper's §3 describes and rejects: "if the state information is
//! stored in the intermediate packet switching nodes ... loss of this
//! information \[destroys the conversation\]."
//!
//! The mechanism lives in [`crate::node::Node::vc_table`] (it has to sit
//! on the forwarding path); this module provides the switches and the
//! scenario-level tests. Experiment E1 runs the same gateway-crash
//! scenario with and without circuits and reports connection survival.

use crate::network::{Network, NodeId};
use std::collections::HashMap;

/// Put a gateway into virtual-circuit mode.
pub fn enable(net: &mut Network, gateway: NodeId) {
    net.node_mut(gateway).vc_table = Some(HashMap::new());
}

/// Return a gateway to stateless datagram forwarding.
pub fn disable(net: &mut Network, gateway: NodeId) {
    net.node_mut(gateway).vc_table = None;
}

/// Number of circuits currently installed at a gateway.
pub fn circuit_count(net: &Network, gateway: NodeId) -> usize {
    net.node(gateway)
        .vc_table
        .as_ref()
        .map_or(0, |table| table.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{BulkSender, SinkServer};
    use crate::Endpoint;
    use catenet_sim::{Duration, Instant, LinkClass};
    use catenet_tcp::SocketConfig as TcpConfig;
    use std::sync::Arc;

    fn line_net(seed: u64) -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(seed);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::T1Terrestrial);
        (net, h1, g, h2)
    }

    #[test]
    fn circuits_installed_by_syn_and_traffic_flows() {
        let (mut net, h1, g, h2) = line_net(31);
        enable(&mut net, g);
        let dst = net.node(h2).primary_addr();
        let sink = SinkServer::new(80, TcpConfig::default());
        let received = Arc::clone(&sink.received);
        net.attach_app(h2, Box::new(sink));
        let sender = BulkSender::new(
            Endpoint::new(dst, 80),
            20_000,
            TcpConfig::default(),
            Instant::from_millis(10),
        );
        let result = sender.result_handle();
        net.attach_app(h1, Box::new(sender));
        net.run_for(Duration::from_secs(60));
        assert!(result.lock().unwrap().completed_at.is_some(), "VC mode forwards fine");
        assert_eq!(*received.lock().unwrap(), 20_000);
        // Both directions of the connection installed circuits.
        assert_eq!(circuit_count(&net, g), 2);
    }

    #[test]
    fn gateway_reboot_kills_circuits_but_not_datagram_forwarding() {
        let (mut net, h1, g, h2) = line_net(32);
        enable(&mut net, g);
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, TcpConfig::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(Endpoint::new(dst, 80), TcpConfig::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(
            net.node(h1).tcp_sockets[handle].state(),
            catenet_tcp::State::Established
        );
        assert_eq!(circuit_count(&net, g), 2);

        // Crash + instant reboot: routing returns, circuits do not.
        net.crash_node(g);
        net.restart_node(g);
        enable(&mut net, g); // VC software restarts too — with empty table
        net.run_for(Duration::from_secs(10)); // routing re-converges
        assert_eq!(circuit_count(&net, g), 0);

        // Mid-connection segments are now refused.
        net.node_mut(h1).tcp_sockets[handle]
            .send_slice(b"are you there?")
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(5));
        assert!(net.node(g).stats.dropped_no_circuit > 0, "old connection starves");
        // But ICMP (non-TCP) still flows — only *connection* state died.
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 5, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1);
    }

    #[test]
    fn stateless_gateway_survives_same_scenario() {
        // The control arm: no VC mode, same crash, connection lives.
        let (mut net, h1, g, h2) = line_net(33);
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, TcpConfig::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(Endpoint::new(dst, 80), TcpConfig::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        net.crash_node(g);
        net.restart_node(g);
        net.run_for(Duration::from_secs(10));
        net.node_mut(h1).tcp_sockets[handle]
            .send_slice(b"are you there?")
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(10));
        let server = &mut net.node_mut(h2).tcp_sockets[0];
        let mut buf = [0u8; 64];
        let n = server.recv_slice(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"are you there?", "fate-sharing: conversation survived");
    }
}
