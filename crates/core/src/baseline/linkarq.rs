//! Hop-by-hop reliable links: the end-to-end counterfactual.
//!
//! The paper (§5) insists the internet layer must *not* require
//! reliability of its networks, and accepts (§7) that the price is
//! end-to-end retransmission: "lost packets ... must be retransmitted
//! from one end ... the retransmission passes once again over the same
//! \[upstream\] links, consuming their capacity a second time."
//!
//! The rejected alternative — each link runs its own ARQ so losses are
//! repaired where they happen — is implemented here as a stop-and-wait
//! link protocol driven by a self-contained event simulation over the
//! same [`catenet_sim::Link`] models the full stack uses. Experiment E5
//! compares transmissions-per-delivered-packet and delivery latency of
//! the two strategies as loss and path length grow.

use catenet_sim::{Duration, Instant, Link, LinkOutcome, LinkParams, Rng, Scheduler};

/// Outcome of pushing a batch of packets across a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Total link-level transmissions (data frames only, all hops).
    pub link_transmissions: u64,
    /// ACK frames sent (hop-by-hop only; zero for end-to-end).
    pub ack_transmissions: u64,
    /// Virtual time when the last packet arrived.
    pub finished_at: Instant,
}

impl PathStats {
    /// Link data-transmissions per delivered packet — the paper's cost
    /// metric. An ideal lossless path of `h` hops scores exactly `h`.
    pub fn cost_per_packet(&self) -> f64 {
        if self.delivered == 0 {
            return f64::INFINITY;
        }
        self.link_transmissions as f64 / self.delivered as f64
    }
}

fn make_links(hops: usize, loss: f64) -> Vec<Link> {
    (0..hops)
        .map(|_| {
            Link::new(LinkParams {
                name: "arq-hop",
                bandwidth_bps: 1_544_000,
                propagation: Duration::from_millis(10),
                jitter: Duration::ZERO,
                loss,
                corruption: 0.0,
                mtu: 1500,
                queue_limit: 1000,
            })
        })
        .collect()
}

/// **Hop-by-hop**: every hop runs stop-and-wait ARQ with per-hop ACKs
/// and timeout retransmission. A packet is handed to hop `i+1` only once
/// hop `i` has it safely.
pub fn run_hop_by_hop(
    hops: usize,
    loss: f64,
    packets: u64,
    packet_len: usize,
    seed: u64,
) -> PathStats {
    assert!(hops >= 1);
    #[derive(Debug)]
    enum Ev {
        /// Data frame for packet `id` arrives at node `node` (hop index).
        Data { node: usize, id: u64 },
        /// ACK for packet `id` arrives back at node `node`.
        Ack { node: usize, id: u64 },
        /// Retransmission timer at node `node` for packet `id`.
        Timer { node: usize, id: u64 },
    }
    let mut rng = Rng::from_seed(seed);
    let mut links = make_links(hops, loss);
    // Reverse direction for ACKs (lossless ACK channel would flatter the
    // baseline; ACKs cross the same lossy medium).
    let mut acks = make_links(hops, loss);
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let timeout = Duration::from_millis(60);
    let mut stats = PathStats {
        delivered: 0,
        link_transmissions: 0,
        ack_transmissions: 0,
        finished_at: Instant::ZERO,
    };
    // Per node: the id of the packet it currently holds/awaits acking.
    // waiting_ack[node] = Some(id) while node has an unacked frame out.
    let mut waiting_ack: Vec<Option<u64>> = vec![None; hops];
    // Packets queued at each node (node 0 = the source).
    let mut queues: Vec<std::collections::VecDeque<u64>> =
        vec![std::collections::VecDeque::new(); hops];
    // Receiver-side dedup: highest id delivered + per-node last accepted.
    let mut accepted: Vec<Option<u64>> = vec![None; hops + 1];
    for id in 0..packets {
        queues[0].push_back(id);
    }

    // Try to launch the head-of-queue frame at `node`.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        node: usize,
        now: Instant,
        links: &mut [Link],
        rng: &mut Rng,
        sched: &mut Scheduler<Ev>,
        queues: &mut [std::collections::VecDeque<u64>],
        waiting_ack: &mut [Option<u64>],
        stats: &mut PathStats,
        packet_len: usize,
        timeout: Duration,
    ) {
        if waiting_ack[node].is_some() {
            return; // stop-and-wait: one frame at a time
        }
        let Some(&id) = queues[node].front() else {
            return;
        };
        waiting_ack[node] = Some(id);
        stats.link_transmissions += 1;
        let mut frame = vec![0u8; packet_len];
        match links[node].transmit(now, &mut frame, rng) {
            LinkOutcome::Delivered { at, .. } => {
                sched.schedule_at(at, Ev::Data { node: node + 1, id });
            }
            LinkOutcome::Dropped(_) => {}
        }
        sched.schedule_at(now + timeout, Ev::Timer { node, id });
    }

    let now = Instant::ZERO;
    launch(
        0, now, &mut links, &mut rng, &mut sched, &mut queues, &mut waiting_ack, &mut stats,
        packet_len, timeout,
    );

    while let Some((now, ev)) = sched.pop() {
        match ev {
            Ev::Data { node, id } => {
                // Send an ACK back regardless (dedup happens here).
                stats.ack_transmissions += 1;
                let mut ack_frame = vec![0u8; 20];
                match acks[node - 1].transmit(now, &mut ack_frame, &mut rng) {
                    LinkOutcome::Delivered { at, .. } => {
                        sched.schedule_at(at, Ev::Ack { node: node - 1, id });
                    }
                    LinkOutcome::Dropped(_) => {}
                }
                // Accept if new.
                if accepted[node] != Some(id) {
                    accepted[node] = Some(id);
                    if node == hops {
                        stats.delivered += 1;
                        stats.finished_at = now;
                    } else {
                        queues[node].push_back(id);
                        launch(
                            node, now, &mut links, &mut rng, &mut sched, &mut queues,
                            &mut waiting_ack, &mut stats, packet_len, timeout,
                        );
                    }
                }
            }
            Ev::Ack { node, id } => {
                if waiting_ack[node] == Some(id) {
                    waiting_ack[node] = None;
                    queues[node].pop_front();
                    launch(
                        node, now, &mut links, &mut rng, &mut sched, &mut queues,
                        &mut waiting_ack, &mut stats, packet_len, timeout,
                    );
                }
            }
            Ev::Timer { node, id } => {
                if waiting_ack[node] == Some(id) {
                    // Still unacked: retransmit.
                    waiting_ack[node] = None;
                    launch(
                        node, now, &mut links, &mut rng, &mut sched, &mut queues,
                        &mut waiting_ack, &mut stats, packet_len, timeout,
                    );
                }
            }
        }
    }
    stats
}

/// **End-to-end**: links carry frames best-effort; only the source
/// retransmits, on a full-path timeout, and every retransmission crosses
/// *every* hop again. (This is the architecture's choice, isolated from
/// TCP's windowing so the comparison is mechanism-pure: both sides here
/// are stop-and-wait.)
pub fn run_end_to_end(
    hops: usize,
    loss: f64,
    packets: u64,
    packet_len: usize,
    seed: u64,
) -> PathStats {
    assert!(hops >= 1);
    #[derive(Debug)]
    enum Ev {
        /// Frame for packet `id` arrives at node `node`.
        Data { node: usize, id: u64 },
        /// End-to-end ACK arrives back at the source.
        Ack { id: u64 },
        /// Source retransmission timer.
        Timer { id: u64 },
    }
    let mut rng = Rng::from_seed(seed);
    let mut links = make_links(hops, loss);
    let mut acks = make_links(hops, loss); // ACK path, also lossy
    let mut sched: Scheduler<Ev> = Scheduler::new();
    // Timeout must cover the whole path.
    let timeout = Duration::from_millis(60) * (hops as u32);
    let mut stats = PathStats {
        delivered: 0,
        link_transmissions: 0,
        ack_transmissions: 0,
        finished_at: Instant::ZERO,
    };
    let mut next_to_send: u64 = 0;
    let mut awaiting: Option<u64> = None;
    let mut delivered_ids: Option<u64> = None; // highest delivered (in-order ids)

    #[allow(clippy::too_many_arguments)]
    fn source_send(
        id: u64,
        now: Instant,
        links: &mut [Link],
        rng: &mut Rng,
        sched: &mut Scheduler<Ev>,
        stats: &mut PathStats,
        packet_len: usize,
        timeout: Duration,
    ) {
        stats.link_transmissions += 1;
        let mut frame = vec![0u8; packet_len];
        match links[0].transmit(now, &mut frame, rng) {
            LinkOutcome::Delivered { at, .. } => {
                sched.schedule_at(at, Ev::Data { node: 1, id });
            }
            LinkOutcome::Dropped(_) => {}
        }
        sched.schedule_at(now + timeout, Ev::Timer { id });
    }

    if packets > 0 {
        awaiting = Some(0);
        next_to_send = 1;
        source_send(
            0,
            Instant::ZERO,
            &mut links,
            &mut rng,
            &mut sched,
            &mut stats,
            packet_len,
            timeout,
        );
    }

    while let Some((now, ev)) = sched.pop() {
        match ev {
            Ev::Data { node, id } => {
                if node == hops {
                    // Destination: dedup, deliver, ACK end to end.
                    if delivered_ids != Some(id) {
                        delivered_ids = Some(id);
                        stats.delivered += 1;
                        stats.finished_at = now;
                    }
                    // E2E ACK crosses the whole reverse path; model it as
                    // one traversal whose success requires every hop.
                    stats.ack_transmissions += 1;
                    let mut ok = true;
                    let mut at = now;
                    for ack_link in acks.iter_mut() {
                        let mut ack_frame = vec![0u8; 20];
                        match ack_link.transmit(at, &mut ack_frame, &mut rng) {
                            LinkOutcome::Delivered { at: arrival, .. } => at = arrival,
                            LinkOutcome::Dropped(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        sched.schedule_at(at, Ev::Ack { id });
                    }
                } else {
                    // A stateless gateway: forward, never store.
                    stats.link_transmissions += 1;
                    let mut frame = vec![0u8; packet_len];
                    match links[node].transmit(now, &mut frame, &mut rng) {
                        LinkOutcome::Delivered { at, .. } => {
                            sched.schedule_at(at, Ev::Data { node: node + 1, id });
                        }
                        LinkOutcome::Dropped(_) => {}
                    }
                }
            }
            Ev::Ack { id } => {
                if awaiting == Some(id) {
                    awaiting = if next_to_send < packets {
                        let next = next_to_send;
                        next_to_send += 1;
                        source_send(
                            next, now, &mut links, &mut rng, &mut sched, &mut stats,
                            packet_len, timeout,
                        );
                        Some(next)
                    } else {
                        None
                    };
                }
            }
            Ev::Timer { id } => {
                if awaiting == Some(id) {
                    source_send(
                        id, now, &mut links, &mut rng, &mut sched, &mut stats, packet_len,
                        timeout,
                    );
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_path_costs_exactly_hops() {
        for hops in [1, 3, 5] {
            let hbh = run_hop_by_hop(hops, 0.0, 50, 1000, 1);
            assert_eq!(hbh.delivered, 50);
            assert!((hbh.cost_per_packet() - hops as f64).abs() < 1e-9);
            let e2e = run_end_to_end(hops, 0.0, 50, 1000, 1);
            assert_eq!(e2e.delivered, 50);
            assert!((e2e.cost_per_packet() - hops as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn all_packets_delivered_under_loss() {
        let hbh = run_hop_by_hop(4, 0.1, 100, 1000, 2);
        assert_eq!(hbh.delivered, 100);
        let e2e = run_end_to_end(4, 0.1, 100, 1000, 2);
        assert_eq!(e2e.delivered, 100);
    }

    #[test]
    fn end_to_end_costs_more_under_loss_on_long_paths() {
        // The paper's concession, quantified: with per-link loss p and h
        // hops, hop-by-hop costs ~h/(1-p) transmissions; end-to-end costs
        // ~h/(1-p)^h. At p=10%, h=6 the gap is large.
        let hops = 6;
        let loss = 0.10;
        let hbh = run_hop_by_hop(hops, loss, 200, 1000, 3);
        let e2e = run_end_to_end(hops, loss, 200, 1000, 3);
        assert!(
            e2e.cost_per_packet() > hbh.cost_per_packet() * 1.2,
            "e2e {:.2} vs hbh {:.2}",
            e2e.cost_per_packet(),
            hbh.cost_per_packet()
        );
    }

    #[test]
    fn costs_match_theory_roughly() {
        let hops = 4;
        let loss = 0.05;
        let hbh = run_hop_by_hop(hops, loss, 400, 1000, 4);
        // Theory: h / (1-p) = 4.21 (ignoring lost ACK retransmits, which
        // add a little).
        let expected = hops as f64 / (1.0 - loss);
        assert!(
            hbh.cost_per_packet() >= expected * 0.95 && hbh.cost_per_packet() <= expected * 1.35,
            "hbh cost {:.2}, theory {:.2}",
            hbh.cost_per_packet(),
            expected
        );
        let e2e = run_end_to_end(hops, loss, 400, 1000, 4);
        let expected_e2e = hops as f64 / (1.0 - loss_pow(loss, hops));
        assert!(
            e2e.cost_per_packet() >= expected_e2e * 0.9,
            "e2e cost {:.2}, theory ≥ {:.2}",
            e2e.cost_per_packet(),
            expected_e2e
        );
    }

    fn loss_pow(loss: f64, hops: usize) -> f64 {
        1.0 - (1.0 - loss).powi(hops as i32)
    }

    #[test]
    fn determinism() {
        let a = run_hop_by_hop(3, 0.08, 100, 800, 9);
        let b = run_hop_by_hop(3, 0.08, 100, 800, 9);
        assert_eq!(a, b);
        let c = run_end_to_end(3, 0.08, 100, 800, 9);
        let d = run_end_to_end(3, 0.08, 100, 800, 9);
        assert_eq!(c, d);
    }
}
