//! The internetwork: nodes wired together over simulated links, driven
//! by one deterministic event loop.
//!
//! The network owns the scheduler, the links, and the failure switches
//! (node crash/reboot, link up/down) that the survivability experiments
//! script. It never looks inside a datagram: everything above the link
//! is the nodes' business — the same layering discipline the
//! architecture itself prescribes.

use crate::app::Application;
use crate::iface::{Framing, Iface};
use crate::node::{Node, NodeRole};
use catenet_sim::{
    Duration, FaultAction, FaultPlan, Instant, Link, LinkClass, LinkOutcome, LinkParams, Rng,
    Scheduler,
};
use catenet_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};
use std::collections::HashMap;

/// Index of a node within the network.
pub type NodeId = usize;
/// A frame observer installed with [`Network::set_tap`].
pub type FrameTap = Box<dyn FnMut(Instant, &[u8])>;
/// Index of a (duplex) link within the network.
pub type LinkId = usize;

#[derive(Debug, Clone, Copy)]
struct LinkEnd {
    node: NodeId,
    iface: usize,
}

struct DuplexLink {
    a: LinkEnd,
    b: LinkEnd,
    /// a → b direction.
    ab: Link,
    /// b → a direction.
    ba: Link,
}

enum Event {
    Frame {
        to: NodeId,
        iface: usize,
        frame: Vec<u8>,
    },
    Wake {
        node: NodeId,
    },
}

/// The simulated internetwork.
pub struct Network {
    nodes: Vec<Node>,
    apps: Vec<Vec<Box<dyn Application>>>,
    links: Vec<DuplexLink>,
    endpoint_index: HashMap<(NodeId, usize), (LinkId, bool)>,
    sched: Scheduler<Event>,
    rng: Rng,
    now: Instant,
    next_wake: Vec<Option<Instant>>,
    subnet_counter: u16,
    /// Optional frame tap (e.g. a pcap writer) observing every frame
    /// offered to any link.
    tap: Option<FrameTap>,
    /// Total frames offered to links.
    pub frames_offered: u64,
    /// Attached chaos schedule, executed interleaved with traffic.
    fault_plan: Option<FaultPlan>,
    /// Links cut by the active partition (only those that were up), so
    /// healing restores exactly what the partition severed.
    partition_cut: Vec<LinkId>,
    /// Fault actions applied so far (for experiment reporting).
    pub faults_applied: u64,
    /// Frames offered on an interface with no link attached (counted
    /// rather than silently ignored).
    pub unconnected_drops: u64,
}

impl Network {
    /// A fresh network. All randomness derives from `seed`.
    pub fn new(seed: u64) -> Network {
        Network {
            nodes: Vec::new(),
            apps: Vec::new(),
            links: Vec::new(),
            endpoint_index: HashMap::new(),
            sched: Scheduler::new(),
            rng: Rng::from_seed(seed),
            now: Instant::ZERO,
            next_wake: Vec::new(),
            subnet_counter: 0,
            tap: None,
            frames_offered: 0,
            fault_plan: None,
            partition_cut: Vec::new(),
            faults_applied: 0,
            unconnected_drops: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Add a host.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(Node::new(name, NodeRole::Host))
    }

    /// Add a gateway.
    pub fn add_gateway(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(Node::new(name, NodeRole::Gateway))
    }

    /// Add a pre-built node.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.apps.push(Vec::new());
        self.next_wake.push(None);
        self.nodes.len() - 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Borrow a node mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Attach an application to a node.
    pub fn attach_app(&mut self, node: NodeId, app: Box<dyn Application>) {
        self.apps[node].push(app);
        // Give it a chance to schedule its first wake.
        self.kick(node);
    }

    /// Install a frame tap observing every transmitted frame.
    pub fn set_tap(&mut self, tap: FrameTap) {
        self.tap = Some(tap);
    }

    // -------------------------------------------------------- topology

    /// Connect two nodes with a link of the given class, auto-assigning
    /// a /30 subnet. Hosts get a default route via the new peer if they
    /// have none yet. Returns the link id.
    pub fn connect(&mut self, a: NodeId, b: NodeId, class: LinkClass) -> LinkId {
        let framing = match class {
            LinkClass::EthernetLan | LinkClass::ModernLan => Framing::Ethernet,
            _ => Framing::RawIp,
        };
        self.connect_with(a, b, class.params(), framing)
    }

    /// Connect with explicit link parameters and framing.
    pub fn connect_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
        framing: Framing,
    ) -> LinkId {
        assert_ne!(a, b, "no self-links");
        let k = self.subnet_counter;
        self.subnet_counter += 1;
        // Each link gets 10.(128 + k/256).(k%256).0/30; hosts .1 and .2.
        let third = (k % 256) as u8;
        let second = 128 + (k / 256) as u8;
        let net = Ipv4Address::new(10, second, third, 0);
        let addr_a = Ipv4Address::new(10, second, third, 1);
        let addr_b = Ipv4Address::new(10, second, third, 2);
        let cidr = Ipv4Cidr::new(net, 30);
        let ip_mtu = params.mtu - framing.overhead();

        let hw_a = hw_addr(a, self.nodes[a].ifaces.len());
        let iface_a = self.nodes[a].attach_iface(Iface {
            addr: addr_a,
            cidr,
            hardware: hw_a,
            peer: addr_b,
            ip_mtu,
            framing,
            up: true,
        });
        let hw_b = hw_addr(b, self.nodes[b].ifaces.len());
        let iface_b = self.nodes[b].attach_iface(Iface {
            addr: addr_b,
            cidr,
            hardware: hw_b,
            peer: addr_a,
            ip_mtu,
            framing,
            up: true,
        });

        // Hosts: default route via the first gateway they attach to.
        for (node, iface, peer) in [(a, iface_a, addr_b), (b, iface_b, addr_a)] {
            if self.nodes[node].role == NodeRole::Host {
                let default = Ipv4Cidr::new(Ipv4Address::UNSPECIFIED, 0);
                if self.nodes[node].static_routes.get(&default).is_none() {
                    self.nodes[node]
                        .static_routes
                        .insert(default, (iface, Some(peer)));
                }
            }
        }

        let link_id = self.links.len();
        self.links.push(DuplexLink {
            a: LinkEnd { node: a, iface: iface_a },
            b: LinkEnd { node: b, iface: iface_b },
            ab: Link::new(params.clone()),
            ba: Link::new(params),
        });
        self.endpoint_index.insert((a, iface_a), (link_id, true));
        self.endpoint_index.insert((b, iface_b), (link_id, false));
        // New topology: let routing notice immediately.
        self.kick(a);
        self.kick(b);
        link_id
    }

    /// The subnet of a link.
    pub fn link_subnet(&self, link: LinkId) -> Ipv4Cidr {
        let end = self.links[link].a;
        self.nodes[end.node].ifaces[end.iface].cidr
    }

    /// Address of `node` on `link`.
    pub fn addr_on_link(&self, node: NodeId, link: LinkId) -> Ipv4Address {
        let duplex = &self.links[link];
        let end = if duplex.a.node == node {
            duplex.a
        } else {
            assert_eq!(duplex.b.node, node, "node not on link");
            duplex.b
        };
        self.nodes[end.node].ifaces[end.iface].addr
    }

    // -------------------------------------------------------- failures

    /// Take a link down (both directions) or bring it back up.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let (a, b) = {
            let duplex = &mut self.links[link];
            duplex.ab.set_up(up);
            duplex.ba.set_up(up);
            (duplex.a, duplex.b)
        };
        self.nodes[a.node].ifaces[a.iface].up = up;
        self.nodes[b.node].ifaces[b.iface].up = up;
        let now = self.now;
        for end in [a, b] {
            let cidr = self.nodes[end.node].ifaces[end.iface].cidr.network();
            if let Some(dv) = &mut self.nodes[end.node].dv {
                if up {
                    dv.add_connected(cidr, end.iface);
                } else {
                    // Connected prefix and every route learned over the
                    // interface die together.
                    dv.remove_connected(&cidr);
                    dv.fail_iface(end.iface, now);
                }
            }
            self.kick(end.node);
        }
    }

    /// Crash a node: all volatile state is lost, frames in its queues
    /// vanish, and attached links stop accepting traffic toward it.
    pub fn crash_node(&mut self, id: NodeId) {
        self.nodes[id].crash();
    }

    /// Reboot a crashed node.
    pub fn restart_node(&mut self, id: NodeId) {
        self.nodes[id].restart();
        self.kick(id);
    }

    /// Silently degrade a link's quality (both directions): interfaces
    /// stay up and routing notices nothing. `None` leaves a field at its
    /// current value.
    pub fn degrade_link(&mut self, link: LinkId, loss: Option<f64>, corruption: Option<f64>) {
        let duplex = &mut self.links[link];
        duplex.ab.degrade(loss, corruption);
        duplex.ba.degrade(loss, corruption);
    }

    /// Restore a degraded link to its configured quality.
    pub fn restore_link(&mut self, link: LinkId) {
        let duplex = &mut self.links[link];
        duplex.ab.restore();
        duplex.ba.restore();
    }

    /// Whether a link is up (both directions share fate).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link].ab.is_up()
    }

    // ------------------------------------------------------------ chaos

    /// Attach a fault schedule. Its events execute interleaved with
    /// traffic events in time order as [`Network::run_until`] advances.
    /// Replaces any previously attached plan.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Fault events not yet executed.
    pub fn pending_faults(&self) -> usize {
        self.fault_plan.as_ref().map_or(0, |p| p.remaining())
    }

    /// Apply one primitive fault action right now. Out-of-range node or
    /// link indices are ignored (a plan may be written for a larger
    /// topology than it is attached to); crash/restart of a node already
    /// in the target state is a no-op, so overlapping storm strikes are
    /// harmless.
    pub fn apply_fault(&mut self, action: &FaultAction) {
        self.faults_applied += 1;
        match action {
            FaultAction::LinkSet { link, up } => {
                if *link < self.links.len() && self.links[*link].ab.is_up() != *up {
                    // A partitioned-off link stays down until Heal.
                    if !self.partition_cut.contains(link) {
                        self.set_link_up(*link, *up);
                    }
                }
            }
            FaultAction::NodeCrash { node } => {
                if *node < self.nodes.len() && self.nodes[*node].alive {
                    self.crash_node(*node);
                }
            }
            FaultAction::NodeRestart { node } => {
                if *node < self.nodes.len() && !self.nodes[*node].alive {
                    self.restart_node(*node);
                }
            }
            FaultAction::Partition { side_a } => {
                // One partition at a time: a new cut heals the old first.
                self.heal_partition();
                let crossing: Vec<LinkId> = self
                    .links
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| {
                        side_a.contains(&d.a.node) != side_a.contains(&d.b.node) && d.ab.is_up()
                    })
                    .map(|(id, _)| id)
                    .collect();
                for &id in &crossing {
                    self.set_link_up(id, false);
                }
                self.partition_cut = crossing;
            }
            FaultAction::Heal => self.heal_partition(),
            FaultAction::Degrade {
                link,
                loss,
                corruption,
            } => {
                if *link < self.links.len() {
                    self.degrade_link(*link, *loss, *corruption);
                }
            }
            FaultAction::Restore { link } => {
                if *link < self.links.len() {
                    self.restore_link(*link);
                }
            }
        }
    }

    fn heal_partition(&mut self) {
        let cut = core::mem::take(&mut self.partition_cut);
        for id in cut {
            self.set_link_up(id, true);
        }
    }

    // ------------------------------------------------------------- run

    /// Run the event loop until virtual time `t`, executing attached
    /// fault-plan events interleaved with traffic in time order. At
    /// equal times faults fire first: a crash at T kills frames arriving
    /// at T, exactly as a real power cut would.
    pub fn run_until(&mut self, t: Instant) {
        loop {
            let sched_at = self.sched.peek_time();
            let fault_at = self.fault_plan.as_ref().and_then(|p| p.next_at());
            let at = match (sched_at, fault_at) {
                (None, None) => break,
                (Some(s), None) => s,
                (None, Some(f)) => f,
                (Some(s), Some(f)) => s.min(f),
            };
            if at > t {
                break;
            }
            self.now = at;
            if fault_at == Some(at) {
                let event = self
                    .fault_plan
                    .as_mut()
                    .and_then(|p| p.pop_due(at))
                    .expect("fault peeked as due");
                self.apply_fault(&event.action);
                continue;
            }
            let (at, event) = self.sched.pop().expect("peeked");
            match event {
                Event::Frame { to, iface, frame } => {
                    self.nodes[to].handle_frame(at, iface, frame);
                    self.service_node(to);
                }
                Event::Wake { node } => {
                    if self.next_wake[node] == Some(at) {
                        self.next_wake[node] = None;
                    }
                    self.service_node(node);
                }
            }
        }
        self.now = t;
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Run until no events remain or `limit` is reached.
    pub fn run_to_quiescence(&mut self, limit: Instant) {
        while self.sched.peek_time().is_some_and(|at| at <= limit) {
            let next = self.sched.peek_time().expect("checked");
            self.run_until(next);
        }
    }

    /// Force a service pass on a node right now (used after the caller
    /// mutated its sockets or apps from outside the loop).
    pub fn kick(&mut self, id: NodeId) {
        // Don't advance time: just service at the current instant.
        self.service_node(id);
    }

    fn service_node(&mut self, id: NodeId) {
        let now = self.now;
        // Applications first: they may write into sockets.
        let mut apps = core::mem::take(&mut self.apps[id]);
        for app in &mut apps {
            app.poll(&mut self.nodes[id], now);
        }
        self.apps[id] = apps;
        // Protocol machinery: timers, routing, socket dispatch.
        self.nodes[id].service(now);
        // Push produced frames onto links.
        let outbox = self.nodes[id].take_outbox();
        for (iface, frame) in outbox {
            self.transmit(id, iface, frame);
        }
        // Timer wake scheduling.
        let mut want = self.nodes[id].poll_at(now);
        for app in &self.apps[id] {
            if let Some(at) = app.next_wake() {
                let at = at.max(now);
                want = Some(match want {
                    Some(current) => current.min(at),
                    None => at,
                });
            }
        }
        if let Some(at) = want {
            let at = if at <= now {
                // "Immediately": schedule a hair later to let the event
                // loop breathe (prevents zero-delay spin).
                now + Duration::from_micros(1)
            } else {
                at
            };
            if self.next_wake[id].is_none_or(|pending| at < pending) {
                self.next_wake[id] = Some(at);
                self.sched.schedule_at(at, Event::Wake { node: id });
            }
        }
    }

    fn transmit(&mut self, from: NodeId, iface: usize, mut frame: Vec<u8>) {
        let Some(&(link_id, is_a)) = self.endpoint_index.get(&(from, iface)) else {
            self.unconnected_drops += 1;
            return;
        };
        if let Some(tap) = &mut self.tap {
            tap(self.now, &frame);
        }
        self.frames_offered += 1;
        let duplex = &mut self.links[link_id];
        let (link, dest) = if is_a {
            (&mut duplex.ab, duplex.b)
        } else {
            (&mut duplex.ba, duplex.a)
        };
        match link.transmit(self.now, &mut frame, &mut self.rng) {
            LinkOutcome::Delivered { at, .. } => {
                self.sched.schedule_at(
                    at,
                    Event::Frame {
                        to: dest.node,
                        iface: dest.iface,
                        frame,
                    },
                );
            }
            LinkOutcome::Dropped(reason) => {
                // Datagram service: the DESTINATION is never told. But
                // the offering node knows its own queue overflowed —
                // 1988 gateways answered that with ICMP source quench.
                if reason == catenet_sim::DropReason::QueueFull {
                    let now = self.now;
                    self.nodes[from].on_queue_drop(now, iface, &frame);
                    let outbox = self.nodes[from].take_outbox();
                    for (out_iface, out_frame) in outbox {
                        // One level of recursion at most: quenches are
                        // ICMP errors, and errors about errors are
                        // suppressed by `icmp_error_for`.
                        self.transmit(from, out_iface, out_frame);
                    }
                }
            }
        }
    }

    /// Aggregate link statistics: (frames offered, frames delivered,
    /// frames lost to loss/corruption-drop, frames overflowed).
    pub fn link_totals(&self) -> (u64, u64, u64, u64) {
        let mut offered = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut overflowed = 0;
        for duplex in &self.links {
            for link in [&duplex.ab, &duplex.ba] {
                let stats = link.stats();
                offered += stats.tx_frames;
                delivered += stats.delivered;
                lost += stats.lost;
                overflowed += stats.overflowed;
            }
        }
        (offered, delivered, lost, overflowed)
    }

    /// Run until every gateway's routing table is stable for one full
    /// update interval (or until `limit`). Returns the convergence time.
    pub fn converge_routing(&mut self, limit: Duration) -> Duration {
        let start = self.now;
        let deadline = start + limit;
        let mut last_change = self.routing_fingerprint();
        let mut stable_since = self.now;
        let step = Duration::from_millis(500);
        while self.now < deadline {
            self.run_for(step);
            let fp = self.routing_fingerprint();
            if fp != last_change {
                last_change = fp;
                stable_since = self.now;
            } else if self.now.duration_since(stable_since) >= Duration::from_secs(7) {
                return stable_since.duration_since(start);
            }
        }
        limit
    }

    fn routing_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for node in &self.nodes {
            if let Some(dv) = &node.dv {
                for (prefix, route) in dv.routes() {
                    prefix.address().to_u32().hash(&mut hasher);
                    prefix.prefix_len().hash(&mut hasher);
                    route.metric.hash(&mut hasher);
                    route.next_hop.iface().hash(&mut hasher);
                }
            }
        }
        hasher.finish()
    }
}

fn hw_addr(node: NodeId, iface: usize) -> EthernetAddress {
    EthernetAddress::new(
        0x02,
        0x00,
        (node >> 8) as u8,
        (node & 0xff) as u8,
        0x00,
        iface as u8,
    )
}

impl core::fmt::Debug for Network {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending_events", &self.sched.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Icmpv4Message;

    /// h1 — g — h2 over T1 trunks.
    fn small_net() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::T1Terrestrial);
        (net, h1, g, h2)
    }

    #[test]
    fn ping_across_one_gateway() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 32, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        let events = net.node_mut(h1).take_icmp_events();
        assert_eq!(events.len(), 1, "one echo reply");
        assert!(matches!(
            events[0].message,
            Icmpv4Message::EchoReply { ident: 1, seq_no: 1 }
        ));
        assert_eq!(events[0].from, dst);
        // RTT sanity: two T1 hops each way ≈ 120 ms + serialization.
        let rtt = events[0].at;
        assert!(rtt >= Instant::from_millis(120), "rtt {rtt}");
        assert!(rtt <= Instant::from_millis(200), "rtt {rtt}");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let h1 = net.add_host("h1");
            let g = net.add_gateway("g");
            let h2 = net.add_host("h2");
            net.connect(h1, g, LinkClass::ArpanetTrunk);
            net.connect(g, h2, LinkClass::PacketRadio);
            let dst = net.node(h2).primary_addr();
            for seq in 0..20 {
                let now = net.now();
                net.node_mut(h1).send_ping(dst, 1, seq, 32, now);
                net.kick(h1);
                net.run_for(Duration::from_millis(500));
            }
            let events = net.node_mut(h1).take_icmp_events();
            events
                .iter()
                .map(|e| (e.at.total_micros(), e.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same universe");
        assert_ne!(run(7), run(8), "different seed, different losses");
    }

    #[test]
    fn udp_delivery_across_network() {
        let (mut net, h1, _g, h2) = small_net();
        let dst_addr = net.node(h2).primary_addr();
        net.node_mut(h2).udp_bind(7000);
        let sock = net.node_mut(h1).udp_bind(7001);
        net.node_mut(h1).udp_sockets[sock]
            .send_to(crate::Endpoint::new(dst_addr, 7000), b"datagram service");
        net.kick(h1);
        net.run_for(Duration::from_secs(1));
        let received = net.node_mut(h2).udp_sockets[0].recv().unwrap();
        assert_eq!(received.payload, b"datagram service");
    }

    #[test]
    fn tcp_transfer_across_network() {
        let (mut net, h1, _g, h2) = small_net();
        let dst_addr = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, Default::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(crate::Endpoint::new(dst_addr, 80), Default::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(
            net.node(h1).tcp_sockets[handle].state(),
            catenet_tcp::State::Established
        );
        let payload = vec![0x42u8; 5_000];
        net.node_mut(h1).tcp_sockets[handle]
            .send_slice(&payload)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(10));
        let server = &mut net.node_mut(h2).tcp_sockets[0];
        let mut buf = vec![0u8; 8_192];
        let mut received = Vec::new();
        loop {
            match server.recv_slice(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => received.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(received, payload);
    }

    #[test]
    fn ethernet_lan_with_arp_works() {
        let mut net = Network::new(3);
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        net.connect(h1, h2, LinkClass::EthernetLan); // Ethernet framing + ARP
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 9, 0, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(1));
        let events = net.node_mut(h1).take_icmp_events();
        assert_eq!(events.len(), 1, "ARP resolved, ping succeeded");
    }

    #[test]
    fn link_down_partitions() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        net.set_link_up(1, false);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        let events = net.node_mut(h1).take_icmp_events();
        // Either silence or a net-unreachable from the gateway; never a
        // reply.
        assert!(events
            .iter()
            .all(|e| !matches!(e.message, Icmpv4Message::EchoReply { .. })));
    }

    #[test]
    fn routing_converges_on_triangle_and_heals() {
        // g1 — g2, g2 — g3, g1 — g3: full triangle with hosts on g1/g3.
        let mut net = Network::new(5);
        let h1 = net.add_host("h1");
        let g1 = net.add_gateway("g1");
        let g2 = net.add_gateway("g2");
        let g3 = net.add_gateway("g3");
        let h2 = net.add_host("h2");
        net.connect(h1, g1, LinkClass::EthernetLan);
        let direct = net.connect(g1, g3, LinkClass::T1Terrestrial);
        net.connect(g1, g2, LinkClass::T1Terrestrial);
        net.connect(g2, g3, LinkClass::T1Terrestrial);
        net.connect(g3, h2, LinkClass::EthernetLan);
        net.converge_routing(Duration::from_secs(60));
        let dst = net.node(h2).primary_addr();

        // Ping works over the direct g1—g3 edge.
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1);

        // Sever the direct edge; DV must reroute via g2.
        net.set_link_up(direct, false);
        net.converge_routing(Duration::from_secs(120));
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 2, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(3));
        let events = net.node_mut(h1).take_icmp_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.message, Icmpv4Message::EchoReply { .. })),
            "rerouted around the dead link: {events:?}"
        );
    }

    #[test]
    fn gateway_crash_and_reboot_relearns_routes() {
        let (mut net, h1, g, h2) = small_net();
        net.converge_routing(Duration::from_secs(30));
        let routes_before = net.node(g).dv.as_ref().unwrap().live_routes();
        assert!(routes_before >= 2);
        net.crash_node(g);
        assert_eq!(net.node(g).dv.as_ref().unwrap().live_routes(), 0);
        net.restart_node(g);
        net.run_for(Duration::from_secs(15));
        assert!(
            net.node(g).dv.as_ref().unwrap().live_routes() >= 2,
            "gateway relearned its world from configuration + neighbors"
        );
        // And traffic flows again.
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 9, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1);
    }

    #[test]
    fn gateway_quenches_overload_and_sender_slows() {
        // h1 --fast ethernet--> g --tiny-queue slow trunk--> h2:
        // the gateway's output queue overflows, it emits source quench,
        // and the TCP sender's congestion window collapses in response.
        let mut net = Network::new(77);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::EthernetLan);
        net.connect_with(
            g,
            h2,
            catenet_sim::LinkParams {
                queue_limit: 2,
                loss: 0.0,
                corruption: 0.0,
                ..LinkClass::ArpanetTrunk.params()
            },
            Framing::RawIp,
        );
        net.converge_routing(Duration::from_secs(30));
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, Default::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(crate::Endpoint::new(dst, 80), Default::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        // Blast data; the 56 kb/s trunk with queue 2 must overflow.
        let blob = vec![0x11u8; 60_000];
        net.node_mut(h1).tcp_sockets[handle].send_slice(&blob).unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(30));
        assert!(net.node(g).stats.quench_sent > 0, "gateway quenched");
        assert!(
            net.node(h1).tcp_sockets[handle].stats.quenches > 0,
            "sender applied the quench"
        );
        assert!(net.node(h1).stats.quench_applied > 0);
    }

    #[test]
    fn fragmentation_across_small_mtu_path() {
        // h1 —(1500)— g —(296)— h2: large UDP datagrams must fragment.
        let mut net = Network::new(11);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::SlipLine);
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).udp_bind(9000);
        let sock = net.node_mut(h1).udp_bind(9001);
        let payload = vec![0x5Au8; 1200];
        net.node_mut(h1).udp_sockets[sock].send_to(crate::Endpoint::new(dst, 9000), &payload);
        net.kick(h1);
        net.run_for(Duration::from_secs(5));
        let received = net.node_mut(h2).udp_sockets[0].recv().expect("reassembled");
        assert_eq!(received.payload, payload);
        assert!(net.node(g).stats.frags_created >= 4);
        assert_eq!(net.node(h2).stats.reassembled, 1);
    }

    #[test]
    fn fault_plan_executes_interleaved_with_traffic() {
        let (mut net, _h1, g, _h2) = small_net();
        let mut plan = catenet_sim::FaultPlan::new();
        plan.push(
            Instant::from_secs(1),
            catenet_sim::FaultAction::NodeCrash { node: g },
        );
        plan.push(
            Instant::from_secs(3),
            catenet_sim::FaultAction::NodeRestart { node: g },
        );
        plan.push(
            Instant::from_secs(5),
            catenet_sim::FaultAction::LinkSet { link: 0, up: false },
        );
        net.attach_fault_plan(plan);
        assert_eq!(net.pending_faults(), 3);
        net.run_until(Instant::from_secs(2));
        assert!(!net.node(g).alive, "crash fired");
        assert_eq!(net.pending_faults(), 2);
        net.run_until(Instant::from_secs(4));
        assert!(net.node(g).alive, "restart fired");
        net.run_until(Instant::from_secs(6));
        assert!(!net.link_is_up(0));
        assert_eq!(net.pending_faults(), 0);
        assert_eq!(net.faults_applied, 3);
    }

    #[test]
    fn partition_cuts_only_crossing_links_and_heals_exactly() {
        // h1 — gA — gB — h2, plus gA — gC — gB backup.
        let mut net = Network::new(9);
        let h1 = net.add_host("h1");
        let ga = net.add_gateway("gA");
        let gb = net.add_gateway("gB");
        let gc = net.add_gateway("gC");
        let h2 = net.add_host("h2");
        let l_h1 = net.connect(h1, ga, LinkClass::T1Terrestrial);
        let l_ab = net.connect(ga, gb, LinkClass::T1Terrestrial);
        let l_ac = net.connect(ga, gc, LinkClass::T1Terrestrial);
        let l_cb = net.connect(gc, gb, LinkClass::T1Terrestrial);
        let l_h2 = net.connect(gb, h2, LinkClass::T1Terrestrial);
        let mut plan = catenet_sim::FaultPlan::new();
        plan.partition(
            vec![h1, ga],
            Instant::from_secs(1),
            Duration::from_secs(2),
        );
        net.attach_fault_plan(plan);
        net.run_until(Instant::from_millis(1_500));
        // Links crossing the {h1, gA} boundary are down; the rest are up.
        assert!(net.link_is_up(l_h1));
        assert!(!net.link_is_up(l_ab));
        assert!(!net.link_is_up(l_ac));
        assert!(net.link_is_up(l_cb));
        assert!(net.link_is_up(l_h2));
        net.run_until(Instant::from_secs(4));
        for link in [l_h1, l_ab, l_ac, l_cb, l_h2] {
            assert!(net.link_is_up(link), "healed link {link}");
        }
    }

    #[test]
    fn flap_does_not_resurrect_partitioned_link() {
        let (mut net, _h1, _g, _h2) = small_net();
        let mut plan = catenet_sim::FaultPlan::new();
        plan.partition(vec![0], Instant::from_secs(1), Duration::from_secs(10));
        // A flap tries to raise link 0 mid-partition: must stay down.
        plan.push(
            Instant::from_secs(2),
            catenet_sim::FaultAction::LinkSet { link: 0, up: true },
        );
        net.attach_fault_plan(plan);
        net.run_until(Instant::from_secs(3));
        assert!(!net.link_is_up(0), "partition outranks the flap");
        net.run_until(Instant::from_secs(12));
        assert!(net.link_is_up(0), "heal restores the link");
    }

    #[test]
    fn degrade_window_is_invisible_to_routing_but_lossy() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        net.degrade_link(0, Some(1.0), None);
        assert!(net.link_is_up(0), "blackhole looks healthy");
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 4, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert!(net.node_mut(h1).take_icmp_events().is_empty(), "blackholed");
        net.restore_link(0);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 4, 2, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1, "restored");
    }

    #[test]
    fn fault_plans_replay_identically() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let h1 = net.add_host("h1");
            let g = net.add_gateway("g");
            let h2 = net.add_host("h2");
            net.connect(h1, g, LinkClass::ArpanetTrunk);
            net.connect(g, h2, LinkClass::PacketRadio);
            let mut rng = Rng::from_seed(seed ^ 0xc0ffee);
            let mut plan = catenet_sim::FaultPlan::new();
            plan.link_flap(
                1,
                Instant::from_secs(1),
                Instant::from_secs(20),
                Duration::from_secs(3),
                Duration::from_secs(1),
                &mut rng,
            );
            plan.crash_storm(
                &[g],
                Instant::from_secs(2),
                Instant::from_secs(18),
                2,
                (Duration::from_secs(1), Duration::from_secs(2)),
                &mut rng,
            );
            net.attach_fault_plan(plan);
            let dst = net.node(h2).primary_addr();
            for seq in 0..40 {
                let now = net.now();
                net.node_mut(h1).send_ping(dst, 1, seq, 32, now);
                net.kick(h1);
                net.run_for(Duration::from_millis(500));
            }
            let events = net.node_mut(h1).take_icmp_events();
            (
                net.faults_applied,
                events
                    .iter()
                    .map(|e| (e.at.total_micros(), e.message))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(13), run(13), "same seed, same chaos, same outcome");
    }
}
