//! The internetwork: nodes wired together over simulated links, driven
//! by one deterministic event loop.
//!
//! The network owns the lanes (shard partitions, each with its own
//! scheduler and link directions — see [`crate::lane`]), and the failure
//! switches (node crash/reboot, link up/down) that the survivability
//! experiments script. It never looks inside a datagram: everything
//! above the link is the nodes' business — the same layering discipline
//! the architecture itself prescribes.
//!
//! Under [`ShardKind::Single`] (the default) one lane covers every node
//! and execution is the classic serial event loop. Under
//! `Sharded`/`Parallel` the node set splits into K contiguous lanes at
//! the first `run_until`, and the loop becomes a barrier protocol:
//! conservative-lookahead windows per lane, cross-lane frames and
//! telemetry harvests exchanged at barrier instants. Every dump is
//! byte-identical across K — `tests/shard_equivalence.rs` is the proof.

use crate::accounting::{Ledger, Reconciliation, ReportCollector};
use crate::app::Application;
use crate::byzantine::ByzantineState;
use crate::flow::FlowTable;
use crate::iface::{Framing, Iface};
use crate::lane::{
    AcctCounters, CrossFrame, Event, GuardCounters, HarvestEntry, HarvestOp, Keyed, Lane, LaneLink,
    LaneView, LinkEnd, LinkMeta,
};
use crate::node::{Node, NodeRole};
use crate::par::{self, SendView};
use crate::partition::{self, CutLink};
use crate::pool::{PacketPool, PoolStats};
use catenet_routing::{Attestor, GuardPolicy, MacKey, OriginId, OriginRegistry};
use catenet_sim::{
    ByzantineAttack, Duration, FaultAction, FaultPlan, Instant, Link, LinkClass, LinkParams,
    SchedStats, Scheduler, SchedulerKind, ShardKind, ShardStats, TraceOp,
};
use catenet_telemetry::{EventKind, Scope, Telemetry};
use catenet_wire::{EthernetAddress, Ipv4Address, Ipv4Cidr};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Index of a node within the network.
pub type NodeId = usize;
/// A frame observer installed with [`Network::set_tap`].
pub type FrameTap = Box<dyn FnMut(Instant, &[u8])>;
/// Index of a (duplex) link within the network.
pub type LinkId = usize;

/// The goal-7 usage-report pipeline (see [`Network::enable_accounting`]):
/// flush cadence plus the administration's collector, which outlives any
/// gateway crash because it belongs to the network, not a node.
struct AccountingCtl {
    period: Duration,
    next_flush: Instant,
    collector: ReportCollector,
}

/// The simulated internetwork.
pub struct Network {
    nodes: Vec<Node>,
    apps: Vec<Vec<Box<dyn Application>>>,
    /// Who is on each end of each duplex link. The directed `Link`s
    /// themselves live in the lanes that own their senders.
    links_meta: Vec<LinkMeta>,
    /// Where each directed link lives: `link_home[id][0]` is the
    /// `(lane, index)` of the a→b direction, `[1]` of b→a.
    link_home: Vec<[(u32, u32); 2]>,
    endpoint_index: HashMap<(NodeId, usize), (LinkId, bool)>,
    /// The execution lanes. Exactly one (covering every node) until a
    /// `Sharded`/`Parallel` network splits at its first `run_until`.
    lanes: Vec<Lane>,
    /// Which lane each node lives in (all zeros before the split).
    lane_of: Vec<u32>,
    /// The seed every per-link RNG stream derives from.
    seed: u64,
    /// How the event loop partitions and executes the node set.
    shard: ShardKind,
    /// Set when a K>1 network has split into lanes; the topology is
    /// immutable from then on (contiguous partition and link homes
    /// would both be invalidated by growth).
    frozen: bool,
    now: Instant,
    next_wake: Vec<Option<Instant>>,
    /// Per-node origin sequence for delivery keys (see [`Keyed`]).
    event_seq: Vec<u64>,
    subnet_counter: u16,
    /// Optional frame tap (e.g. a pcap writer) observing every frame
    /// offered to any link.
    tap: Option<FrameTap>,
    /// Total frames offered to links.
    pub frames_offered: u64,
    /// Attached chaos schedule, executed interleaved with traffic.
    fault_plan: Option<FaultPlan>,
    /// Links cut by the active partition (only those that were up), so
    /// healing restores exactly what the partition severed.
    partition_cut: Vec<LinkId>,
    /// Fault actions applied so far (for experiment reporting).
    pub faults_applied: u64,
    /// Frames offered on an interface with no link attached (counted
    /// rather than silently ignored).
    pub unconnected_drops: u64,
    /// The observability subsystem: metrics registry, time-series
    /// sampler, flight recorder, convergence tracer.
    telemetry: Telemetry,
    /// Last observed DV table version per node (route-change detection).
    last_dv_version: Vec<u64>,
    /// Last observed cumulative RTO count per node.
    last_rto_total: Vec<u64>,
    /// Cumulative acked bytes per node at the previous sample (goodput).
    last_sampled_acked: Vec<u64>,
    /// Last harvested (arp gave-up, reassembled, reassembly timeouts,
    /// reassembly evictions) per node, for delta-counting into the
    /// registry.
    last_harvest: Vec<(u64, u64, u64, u64)>,
    /// Service passes executed per node (each pass may handle a whole
    /// batch of same-instant events; see [`Network::run_until`]).
    service_count: Vec<u64>,
    /// Byzantine corruption state per node (see
    /// [`FaultAction::Compromise`]): the liar's outgoing RIP frames are
    /// rewritten in the lane's `transmit`, after the node honestly
    /// computed them. Dense so the per-node slice splits across lanes.
    byz: Vec<Option<ByzantineState>>,
    /// Last harvested route-guard verdict totals per node and neighbor,
    /// for delta-counting into the registry.
    last_guard: Vec<BTreeMap<Ipv4Address, GuardCounters>>,
    /// Route-origin attestation trust anchor (see
    /// [`Network::enable_attestation`]); `None` means attestation has
    /// never been enabled and nothing is signed or registered.
    attest_master: Option<MacKey>,
    /// The shared packet-buffer pool every node allocates from. Frames
    /// recycle through it instead of hitting the allocator per hop.
    /// Under `ShardKind::Parallel` the split re-homes every node onto a
    /// lane-private pool and this one only serves coordinator-side
    /// allocation (fault-time frame corruption never needs it: lanes
    /// corrupt with their own pools).
    pool: PacketPool,
    /// Whether pool telemetry is harvested into the sampler. Off by
    /// default so dumps stay byte-identical to pool-unaware runs
    /// (recycling happens in *every* run, unlike guard verdicts).
    pool_metrics: bool,
    /// Pool counters at the previous sample, for delta rows.
    last_pool: PoolStats,
    /// The usage-report pipeline, when [`Network::enable_accounting`]
    /// armed it. `None` means no ledgers flush and no accounting
    /// telemetry interns, so unenabled dumps stay byte-identical.
    accounting: Option<AccountingCtl>,
    /// Last harvested accounting counters per node, for delta-counting
    /// into the registry.
    last_acct: Vec<AcctCounters>,
    /// The per-lane-pair lookahead closure, flattened K×K row-major in
    /// microseconds (`reach[j*k + i]` = lane j → lane i), built once at
    /// the split. Entry (j, i), j ≠ i, is the cheapest multi-hop relay
    /// chain from any node of lane j to any node of lane i, each hop
    /// priced at its link's base propagation plus the 1 µs
    /// serialization floor (`Link::tx_time` never rounds below one
    /// microsecond, so arrival is *strictly* later than the send even
    /// on a zero-propagation link). The diagonal is the cheapest cycle
    /// *through* the lane — a frame that leaves lane i can come back,
    /// and its return bounds how far i may run ahead of itself.
    /// `u64::MAX` = unreachable. Empty until a K>1 split.
    lane_reach: Vec<u64>,
    /// When set before the first run, `ensure_split` chooses lane
    /// boundaries with the latency-aware partitioner instead of equal
    /// chunks (see [`crate::partition`]). Performance-only: the reach
    /// matrix is computed from whatever lanes exist, so dumps are
    /// byte-identical either way.
    partitioner: bool,
    /// The PR 8 baseline arm for A/B pricing: one global window bound
    /// (minimum cross-lane base propagation) anchored at the round's
    /// earliest instant, every lane dispatched every round. Off by
    /// default; E17 and the lane-window regressions flip it to compare
    /// protocols on identical topologies.
    global_lookahead: bool,
    /// Window-protocol counters (all zero for single-lane execution).
    stats: ShardStats,
    /// Harvested telemetry the barrier may not apply yet. Under
    /// per-lane limits a fast lane can harvest an entry whose instant a
    /// slow lane has not reached; replaying it into the recorder early
    /// would reorder the flight dump against the serial reference. The
    /// barrier therefore banks entries here and applies only those at
    /// or below the global safe horizon (`min` of the round's limits) —
    /// everything later stays banked, flushed before any coordinator op
    /// and at run end. Kept `(at, token)`-sorted.
    pending_harvests: Vec<HarvestEntry>,
}

impl Network {
    /// A fresh network on the default scheduler backend. All randomness
    /// derives from `seed`.
    pub fn new(seed: u64) -> Network {
        Network::with_scheduler(seed, SchedulerKind::default())
    }

    /// A fresh network on an explicit scheduler backend (the
    /// differential harness and E13 run both and compare).
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Network {
        Network::with_config(seed, kind, ShardKind::Single)
    }

    /// A fresh network on an explicit shard mode (the shard-equivalence
    /// harness and E17 run several and compare dumps byte-for-byte).
    pub fn with_shards(seed: u64, shard: ShardKind) -> Network {
        Network::with_config(seed, SchedulerKind::default(), shard)
    }

    /// A fresh network with both the scheduler backend and the shard
    /// mode chosen explicitly.
    pub fn with_config(seed: u64, kind: SchedulerKind, shard: ShardKind) -> Network {
        let pool = PacketPool::new();
        Network {
            nodes: Vec::new(),
            apps: Vec::new(),
            links_meta: Vec::new(),
            link_home: Vec::new(),
            endpoint_index: HashMap::new(),
            lanes: vec![Lane::new(0, 0, Scheduler::with_kind(kind), pool.clone())],
            lane_of: Vec::new(),
            seed,
            shard,
            frozen: false,
            now: Instant::ZERO,
            next_wake: Vec::new(),
            event_seq: Vec::new(),
            subnet_counter: 0,
            tap: None,
            frames_offered: 0,
            fault_plan: None,
            partition_cut: Vec::new(),
            faults_applied: 0,
            unconnected_drops: 0,
            telemetry: Telemetry::new(),
            last_dv_version: Vec::new(),
            last_rto_total: Vec::new(),
            last_sampled_acked: Vec::new(),
            last_harvest: Vec::new(),
            service_count: Vec::new(),
            byz: Vec::new(),
            last_guard: Vec::new(),
            attest_master: None,
            pool,
            pool_metrics: false,
            last_pool: PoolStats::default(),
            accounting: None,
            last_acct: Vec::new(),
            lane_reach: Vec::new(),
            partitioner: false,
            global_lookahead: false,
            stats: ShardStats::default(),
            pending_harvests: Vec::new(),
        }
    }

    /// Choose lane boundaries with the latency-aware partitioner (see
    /// [`crate::partition`]) instead of equal `NodeId` chunks. Must be
    /// set before the first `run_until` freezes the topology. Changes
    /// which links become cross-lane — never what the simulation
    /// computes: dumps stay byte-identical across on/off (E17 asserts
    /// it).
    pub fn set_partitioner(&mut self, on: bool) {
        assert!(!self.frozen, "partitioner must be chosen before the split");
        self.partitioner = on;
    }

    /// Run the PR 8 baseline window protocol: a single global lookahead
    /// (the minimum cross-lane base propagation) anchored at each
    /// round's earliest pending instant, with every lane dispatched
    /// every round. Exists so E17 can price the per-pair matrix against
    /// its predecessor on the same topology; byte-identical dumps
    /// either way.
    pub fn set_global_lookahead(&mut self, on: bool) {
        assert!(!self.frozen, "lookahead mode must be chosen before the split");
        self.global_lookahead = on;
    }

    /// Window-protocol execution counters (zero under single-lane
    /// execution). Performance observables only — they vary across K
    /// and lookahead modes while dumps stay byte-identical.
    pub fn shard_stats(&self) -> ShardStats {
        self.stats
    }

    /// The `(lo, hi)` node ranges of the execution lanes (one `(0, n)`
    /// range before a K>1 split).
    pub fn lane_bounds(&self) -> Vec<(usize, usize)> {
        self.lanes.iter().map(|l| (l.lo, l.hi)).collect()
    }

    /// The shard mode this network executes under.
    pub fn shard_kind(&self) -> ShardKind {
        self.shard
    }

    /// How many lanes the node set is actually partitioned into. `1`
    /// until the first `run_until` splits a multi-shard network (the
    /// requested count is clamped to the node count).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Which scheduler backend this network runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.lanes[0].sched.kind()
    }

    /// Scheduler counters (events scheduled/processed, backend stats),
    /// summed over lanes. Note `scheduled` counts a boot event twice if
    /// a K>1 split redistributed it; `processed` never double-counts.
    pub fn sched_stats(&self) -> SchedStats {
        let mut total = self.lanes[0].sched.stats();
        for lane in &self.lanes[1..] {
            let stats = lane.sched.stats();
            total.scheduled += stats.scheduled;
            total.processed += stats.processed;
            total.pending += stats.pending;
        }
        total
    }

    /// Arm or disarm scheduler op tracing (see [`catenet_sim::TraceOp`])
    /// on the boot scheduler. Arm it before the first topology call: a
    /// replayable trace has to start at event zero. (Single-lane only —
    /// a split network's per-lane traces are not one replayable stream.)
    pub fn set_sched_trace(&mut self, on: bool) {
        self.lanes[0].sched.set_trace(on);
    }

    /// Take the recorded scheduler op trace, leaving tracing disarmed.
    pub fn take_sched_trace(&mut self) -> Vec<TraceOp> {
        self.lanes[0].sched.take_trace()
    }

    /// When the next scheduled event is due, if any (over all lanes).
    pub fn next_event_at(&self) -> Option<Instant> {
        self.lanes.iter().filter_map(|l| l.sched.peek_time()).min()
    }

    /// How many service passes a node has executed (a same-instant
    /// batch of events costs one pass, not one per event).
    pub fn service_passes(&self, id: NodeId) -> u64 {
        self.service_count[id]
    }

    /// Add a host.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(Node::new(name, NodeRole::Host))
    }

    /// Add a gateway.
    pub fn add_gateway(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(Node::new(name, NodeRole::Gateway))
    }

    /// Add a pre-built node. The node is wired to the network's shared
    /// packet pool so its datagrams ride recycled buffers.
    pub fn add_node(&mut self, mut node: Node) -> NodeId {
        assert!(
            !self.frozen,
            "topology is frozen once a sharded network has run"
        );
        node.set_pool(self.pool.clone());
        self.nodes.push(node);
        self.apps.push(Vec::new());
        self.next_wake.push(None);
        self.event_seq.push(0);
        self.last_dv_version.push(0);
        self.last_rto_total.push(0);
        self.last_sampled_acked.push(0);
        self.last_harvest.push((0, 0, 0, 0));
        self.service_count.push(0);
        self.byz.push(None);
        self.last_guard.push(BTreeMap::new());
        self.last_acct.push((0, 0, 0, 0));
        self.lane_of.push(0);
        self.lanes[0].hi = self.nodes.len();
        self.nodes.len() - 1
    }

    /// Install a route-guard policy on every node that runs routing.
    /// The policy survives node crash/restart (conversation state dies
    /// with a node; configuration does not). Call after the topology is
    /// built — nodes added later keep the default (guard off).
    pub fn set_guard_policy(&mut self, policy: GuardPolicy) {
        for node in &mut self.nodes {
            if let Some(dv) = &mut node.dv {
                dv.set_guard_policy(policy);
            }
        }
    }

    /// Build the route-origin attestation trust anchor and distribute
    /// it: every routing node's connected prefixes are registered under
    /// its node id, each engine gets a signing identity, and each guard
    /// gets the shared owner registry. Models the out-of-band PKI/IRR
    /// step real BGPsec assumes — ownership is established at topology
    /// build time, not learned from the routing protocol it protects.
    ///
    /// Call **before connecting links**: connecting a link emits the
    /// gateways' first triggered announcements immediately, and only an
    /// already-installed signing identity makes those go out attested.
    /// Links connected later re-derive and redistribute the registry,
    /// so topology growth keeps working. (Calling this after the
    /// topology is built also works, but the announcements already in
    /// flight went out unsigned and attested guards will drop them —
    /// they are re-learned, signed, at the next periodic round.)
    ///
    /// Guards only *verify* when their policy also sets
    /// [`GuardPolicy::attestation`].
    pub fn enable_attestation(&mut self) {
        // A fixed master key: the trust anchor is deterministic and
        // independent of the simulation's seeded randomness, so
        // enabling attestation perturbs no other random draw.
        self.attest_master = Some(MacKey([0x0bad_5eed_0f00_d001, 0xca7e_ae7a_77e5_7a11]));
        self.redistribute_attestation();
    }

    /// Rebuild the ownership registry from the current interfaces and
    /// push it (plus per-node signing identities) to every routing
    /// node. No-op until [`Network::enable_attestation`] has installed
    /// the trust anchor. An existing attestor keeps its serial so
    /// growth never steps the clock backwards under a receiver's
    /// replay window.
    fn redistribute_attestation(&mut self) {
        let Some(master) = self.attest_master else {
            return;
        };
        let mut registry = OriginRegistry::new(master);
        for (id, node) in self.nodes.iter().enumerate() {
            if node.dv.is_some() {
                for iface in &node.ifaces {
                    registry.register(iface.cidr.network(), OriginId(id as u16));
                }
            }
        }
        let registry = Rc::new(registry);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            if let Some(dv) = &mut node.dv {
                // Derive directly rather than looking up in the
                // registry: a node enabled before its first link has no
                // registered prefix yet, but its identity is fixed.
                let origin = OriginId(id as u16);
                let key = MacKey::derive(master, origin);
                let seq = dv.attestor().map(|a| a.seq()).unwrap_or(0);
                let mut attestor = Attestor::new(origin, key);
                attestor.advance(seq);
                dv.set_attestor(Some(attestor));
                dv.guard_mut().set_registry(Some(Rc::clone(&registry)));
            }
        }
    }

    /// Borrow the shared packet pool (counters, occupancy).
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Switch the whole network between the pooled zero-copy fast path
    /// and the allocate-and-copy baseline (E15's comparison arm).
    /// Packet *contents* are identical either way; only allocation and
    /// copy behavior differs. Flip before traffic starts.
    pub fn set_copy_mode(&mut self, copy: bool) {
        self.pool.set_zero_copy(!copy);
    }

    /// Harvest pool telemetry (occupancy, recycle rate, fresh allocs,
    /// copy volume) into the time series. Off by default: recycling
    /// happens in every run, so the rows would perturb dumps that
    /// predate the pool. Experiments that want the rows opt in.
    pub fn set_pool_metrics(&mut self, on: bool) {
        self.pool_metrics = on;
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Borrow a node mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Attach an application to a node.
    pub fn attach_app(&mut self, node: NodeId, app: Box<dyn Application>) {
        self.apps[node].push(app);
        // Give it a chance to schedule its first wake.
        self.kick(node);
    }

    /// Install a frame tap observing every transmitted frame.
    pub fn set_tap(&mut self, tap: FrameTap) {
        self.tap = Some(tap);
    }

    // -------------------------------------------------------- topology

    /// Connect two nodes with a link of the given class, auto-assigning
    /// a /30 subnet. Hosts get a default route via the new peer if they
    /// have none yet. Returns the link id.
    pub fn connect(&mut self, a: NodeId, b: NodeId, class: LinkClass) -> LinkId {
        let framing = match class {
            LinkClass::EthernetLan | LinkClass::ModernLan => Framing::Ethernet,
            _ => Framing::RawIp,
        };
        self.connect_with(a, b, class.params(), framing)
    }

    /// Connect with explicit link parameters and framing.
    pub fn connect_with(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
        framing: Framing,
    ) -> LinkId {
        assert_ne!(a, b, "no self-links");
        let k = self.subnet_counter;
        self.subnet_counter += 1;
        // Each link gets 10.(128 + k/256).(k%256).0/30; hosts .1 and .2.
        let third = (k % 256) as u8;
        let second = 128 + (k / 256) as u8;
        let net = Ipv4Address::new(10, second, third, 0);
        let addr_a = Ipv4Address::new(10, second, third, 1);
        let addr_b = Ipv4Address::new(10, second, third, 2);
        let cidr = Ipv4Cidr::new(net, 30);
        let ip_mtu = params.mtu - framing.overhead();

        let hw_a = hw_addr(a, self.nodes[a].ifaces.len());
        let iface_a = self.nodes[a].attach_iface(Iface {
            addr: addr_a,
            cidr,
            hardware: hw_a,
            peer: addr_b,
            ip_mtu,
            framing,
            up: true,
        });
        let hw_b = hw_addr(b, self.nodes[b].ifaces.len());
        let iface_b = self.nodes[b].attach_iface(Iface {
            addr: addr_b,
            cidr,
            hardware: hw_b,
            peer: addr_a,
            ip_mtu,
            framing,
            up: true,
        });

        // Hosts: default route via the first gateway they attach to.
        for (node, iface, peer) in [(a, iface_a, addr_b), (b, iface_b, addr_a)] {
            if self.nodes[node].role == NodeRole::Host {
                let default = Ipv4Cidr::new(Ipv4Address::UNSPECIFIED, 0);
                if self.nodes[node].static_routes.get(&default).is_none() {
                    self.nodes[node]
                        .static_routes
                        .insert(default, (iface, Some(peer)));
                }
            }
        }

        assert!(
            !self.frozen,
            "topology is frozen once a sharded network has run"
        );
        let link_id = self.links_meta.len();
        self.links_meta.push(LinkMeta {
            a: LinkEnd { node: a, iface: iface_a },
            b: LinkEnd { node: b, iface: iface_b },
        });
        // Both directions boot in lane 0; the split moves each to the
        // lane owning its sender. Each direction rolls its own RNG
        // stream keyed to (seed, link, direction), so frame fates are
        // independent of shard count by construction.
        let boot = &mut self.lanes[0];
        let idx = boot.links.len() as u32;
        boot.links.push(LaneLink {
            link: Link::new(params.clone()),
            rng: LaneLink::seeded(self.seed, link_id, true),
        });
        boot.links.push(LaneLink {
            link: Link::new(params),
            rng: LaneLink::seeded(self.seed, link_id, false),
        });
        self.link_home.push([(0, idx), (0, idx + 1)]);
        self.endpoint_index.insert((a, iface_a), (link_id, true));
        self.endpoint_index.insert((b, iface_b), (link_id, false));
        // Register the new subnet before the kicks below make routing
        // announce it — the triggered update must go out signed.
        self.redistribute_attestation();
        // New topology: let routing notice immediately.
        self.kick(a);
        self.kick(b);
        link_id
    }

    /// The subnet of a link.
    pub fn link_subnet(&self, link: LinkId) -> Ipv4Cidr {
        let end = self.links_meta[link].a;
        self.nodes[end.node].ifaces[end.iface].cidr
    }

    /// Address of `node` on `link`.
    pub fn addr_on_link(&self, node: NodeId, link: LinkId) -> Ipv4Address {
        let meta = &self.links_meta[link];
        let end = if meta.a.node == node {
            meta.a
        } else {
            assert_eq!(meta.b.node, node, "node not on link");
            meta.b
        };
        self.nodes[end.node].ifaces[end.iface].addr
    }

    /// Borrow one direction of a link (`ab` selects a→b) wherever its
    /// owning lane keeps it.
    fn link_dir(&self, link: LinkId, ab: bool) -> &Link {
        let (lane, idx) = self.link_home[link][usize::from(!ab)];
        &self.lanes[lane as usize].links[idx as usize].link
    }

    /// Mutably borrow one direction of a link.
    fn link_dir_mut(&mut self, link: LinkId, ab: bool) -> &mut Link {
        let (lane, idx) = self.link_home[link][usize::from(!ab)];
        &mut self.lanes[lane as usize].links[idx as usize].link
    }

    // -------------------------------------------------------- failures

    /// Take a link down (both directions) or bring it back up.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.link_dir_mut(link, true).set_up(up);
        self.link_dir_mut(link, false).set_up(up);
        let (a, b) = {
            let meta = &self.links_meta[link];
            (meta.a, meta.b)
        };
        self.nodes[a.node].ifaces[a.iface].up = up;
        self.nodes[b.node].ifaces[b.iface].up = up;
        let now = self.now;
        for end in [a, b] {
            let cidr = self.nodes[end.node].ifaces[end.iface].cidr.network();
            if let Some(dv) = &mut self.nodes[end.node].dv {
                if up {
                    dv.add_connected(cidr, end.iface);
                } else {
                    // Connected prefix and every route learned over the
                    // interface die together.
                    dv.remove_connected(&cidr);
                    dv.fail_iface(end.iface, now);
                }
            }
            self.kick(end.node);
        }
    }

    /// Switch on the goal-7 accounting pipeline: every gateway gets a
    /// soft-state [`FlowTable`] and an epoch-stamped [`Ledger`] (keeping
    /// any it already carries), and every `period` the network flushes
    /// each live ledger into the administration's report collector. The
    /// collector belongs to the network, not a node, so a gateway crash
    /// loses at most one unflushed period — and even that tail is
    /// captured into the forfeited bucket at the crash instant (an
    /// omniscient-oracle convenience a real network would buy with
    /// battery-backed counters). Off by default: unenabled runs intern
    /// no accounting telemetry and their dumps stay byte-identical.
    pub fn enable_accounting(&mut self, period: Duration) {
        for node in &mut self.nodes {
            if node.role == NodeRole::Gateway {
                if node.flows.is_none() {
                    node.flows = Some(FlowTable::new());
                }
                if node.ledger.is_none() {
                    node.ledger = Some(Ledger::new());
                }
            }
        }
        self.accounting = Some(AccountingCtl {
            period,
            next_flush: self.now + period,
            collector: ReportCollector::new(),
        });
    }

    /// The administration's report collector, if accounting is enabled.
    pub fn report_collector(&self) -> Option<&ReportCollector> {
        self.accounting.as_ref().map(|ctl| &ctl.collector)
    }

    /// Network-wide reconciliation: every flushed report, every
    /// crash-forfeited tail, and every live ledger's unflushed tail,
    /// merged into one view. `None` until [`Network::enable_accounting`].
    pub fn reconcile(&self) -> Option<Reconciliation> {
        let ctl = self.accounting.as_ref()?;
        let tails = self.nodes.iter().filter_map(|node| {
            node.ledger
                .as_ref()
                .and_then(|ledger| ledger.peek_tail(&node.name))
        });
        Some(ctl.collector.reconcile(tails))
    }

    /// Flush every live gateway's ledger into the collector and arm the
    /// next flush instant.
    fn flush_ledgers(&mut self) {
        let Some(mut ctl) = self.accounting.take() else {
            return;
        };
        ctl.next_flush += ctl.period;
        for id in 0..self.nodes.len() {
            let node = &mut self.nodes[id];
            if !node.alive {
                continue;
            }
            let Some(ledger) = &mut node.ledger else {
                continue;
            };
            let name = node.name.clone();
            if let Some(report) = ledger.flush(&name) {
                let unattributed = report.unattributed;
                ctl.collector.absorb(report);
                let c = self
                    .telemetry
                    .registry
                    .counter("acct_reports_flushed", Scope::Node(id));
                self.telemetry.registry.add(c, 1);
                if unattributed > 0 {
                    let c = self
                        .telemetry
                        .registry
                        .counter("acct_unattributed", Scope::Node(id));
                    self.telemetry.registry.add(c, unattributed);
                }
            }
        }
        self.accounting = Some(ctl);
    }

    /// Crash a node: all volatile state is lost, frames in its queues
    /// vanish, and attached links stop accepting traffic toward it.
    pub fn crash_node(&mut self, id: NodeId) {
        // Oracle step: capture the dying ledger's unflushed tail into
        // the forfeited bucket before the crash wipes it, so the
        // conservation identity (flushed + forfeited + live tails =
        // everything recorded) survives arbitrary crash storms.
        if let Some(ctl) = &mut self.accounting {
            let node = &self.nodes[id];
            if node.alive {
                if let Some(tail) = node
                    .ledger
                    .as_ref()
                    .and_then(|ledger| ledger.peek_tail(&node.name))
                {
                    let unattributed = tail.unattributed;
                    ctl.collector.forfeit(tail);
                    let c = self
                        .telemetry
                        .registry
                        .counter("acct_tails_forfeited", Scope::Node(id));
                    self.telemetry.registry.add(c, 1);
                    if unattributed > 0 {
                        let c = self
                            .telemetry
                            .registry
                            .counter("acct_unattributed", Scope::Node(id));
                        self.telemetry.registry.add(c, unattributed);
                    }
                }
            }
        }
        self.nodes[id].crash();
    }

    /// Reboot a crashed node.
    pub fn restart_node(&mut self, id: NodeId) {
        self.nodes[id].restart();
        self.kick(id);
    }

    /// Silently degrade a link's quality (both directions): interfaces
    /// stay up and routing notices nothing. `None` leaves a field at its
    /// current value.
    pub fn degrade_link(&mut self, link: LinkId, loss: Option<f64>, corruption: Option<f64>) {
        self.link_dir_mut(link, true).degrade(loss, corruption);
        self.link_dir_mut(link, false).degrade(loss, corruption);
    }

    /// Silently degrade *one direction* of a link (`a_to_b` selects
    /// which). The reverse direction keeps its current quality — the
    /// asymmetric failure where data drowns while ACKs sail through.
    pub fn degrade_link_dir(
        &mut self,
        link: LinkId,
        a_to_b: bool,
        loss: Option<f64>,
        corruption: Option<f64>,
    ) {
        self.link_dir_mut(link, a_to_b).degrade(loss, corruption);
    }

    /// Inflate a link's latency (both directions): propagation grows by
    /// `extra` and jitter becomes `jitter`. Nothing is dropped; large
    /// jitter reorders back-to-back frames.
    pub fn delay_spike_link(&mut self, link: LinkId, extra: Duration, jitter: Duration) {
        self.link_dir_mut(link, true).delay_spike(extra, jitter);
        self.link_dir_mut(link, false).delay_spike(extra, jitter);
    }

    /// Restore a degraded or delay-spiked link to its configured quality
    /// and timing (both directions, both kinds of damage).
    pub fn restore_link(&mut self, link: LinkId) {
        for ab in [true, false] {
            let dir = self.link_dir_mut(link, ab);
            dir.restore();
            dir.restore_delay();
        }
    }

    /// Whether a link is up (both directions share fate).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_dir(link, true).is_up()
    }

    // ------------------------------------------------------------ chaos

    /// Attach a fault schedule. Its events execute interleaved with
    /// traffic events in time order as [`Network::run_until`] advances.
    /// Replaces any previously attached plan.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Fault events not yet executed.
    pub fn pending_faults(&self) -> usize {
        self.fault_plan.as_ref().map_or(0, |p| p.remaining())
    }

    /// Apply one primitive fault action right now. Out-of-range node or
    /// link indices are ignored (a plan may be written for a larger
    /// topology than it is attached to); crash/restart of a node already
    /// in the target state is a no-op, so overlapping storm strikes are
    /// harmless.
    ///
    /// Every application lands in the flight recorder; *effective*
    /// topology-affecting actions additionally feed the convergence
    /// tracer (a crash of an already-dead node disrupts nothing, so it
    /// must not open a measurement window).
    pub fn apply_fault(&mut self, action: &FaultAction) {
        self.faults_applied += 1;
        let now = self.now;
        self.telemetry.recorder.record(
            now,
            EventKind::FaultInjected {
                description: describe_fault(action),
            },
        );
        let id = self
            .telemetry
            .registry
            .counter("faults_applied", Scope::Global);
        self.telemetry.registry.add(id, 1);
        match action {
            FaultAction::LinkSet { link, up } => {
                if *link < self.links_meta.len() && self.link_is_up(*link) != *up {
                    // A partitioned-off link stays down until Heal.
                    if !self.partition_cut.contains(link) {
                        self.set_link_up(*link, *up);
                        if *up {
                            self.telemetry.convergence.heal(now);
                        } else {
                            self.telemetry.convergence.disruption(now);
                        }
                    }
                }
            }
            FaultAction::NodeCrash { node } => {
                if *node < self.nodes.len() && self.nodes[*node].alive {
                    self.crash_node(*node);
                    self.telemetry.convergence.disruption(now);
                }
            }
            FaultAction::NodeRestart { node } => {
                if *node < self.nodes.len() && !self.nodes[*node].alive {
                    self.restart_node(*node);
                    self.telemetry.convergence.heal(now);
                }
            }
            FaultAction::Partition { side_a } => {
                // One partition at a time: a new cut heals the old first.
                self.heal_partition();
                let crossing: Vec<LinkId> = (0..self.links_meta.len())
                    .filter(|&id| {
                        let meta = &self.links_meta[id];
                        side_a.contains(&meta.a.node) != side_a.contains(&meta.b.node)
                            && self.link_is_up(id)
                    })
                    .collect();
                for &id in &crossing {
                    self.set_link_up(id, false);
                }
                if !crossing.is_empty() {
                    self.telemetry.convergence.disruption(now);
                }
                self.partition_cut = crossing;
            }
            FaultAction::Heal => self.heal_partition(),
            FaultAction::Degrade {
                link,
                loss,
                corruption,
            } => {
                if *link < self.links_meta.len() {
                    self.degrade_link(*link, *loss, *corruption);
                }
            }
            FaultAction::Restore { link } => {
                if *link < self.links_meta.len() {
                    self.restore_link(*link);
                }
            }
            FaultAction::DegradeOneWay {
                link,
                a_to_b,
                loss,
                corruption,
            } => {
                if *link < self.links_meta.len() {
                    self.degrade_link_dir(*link, *a_to_b, *loss, *corruption);
                }
            }
            FaultAction::DelaySpike { link, extra, jitter } => {
                if *link < self.links_meta.len() {
                    self.delay_spike_link(*link, *extra, *jitter);
                }
            }
            FaultAction::RestoreDelay { link } => {
                if *link < self.links_meta.len() {
                    self.link_dir_mut(*link, true).restore_delay();
                    self.link_dir_mut(*link, false).restore_delay();
                }
            }
            FaultAction::Compromise { node, attack } => {
                if *node < self.nodes.len() && self.byz[*node].is_none() {
                    self.byz[*node] = Some(ByzantineState::new(*attack));
                    // The lie needs teeth: for every traffic-attraction
                    // attack the liar's forwarding path silently eats
                    // what it captures.
                    if let ByzantineAttack::BlackholeVictim { addr, prefix_len }
                    | ByzantineAttack::HijackPrefix { addr, prefix_len }
                    | ByzantineAttack::HijackAttested { addr, prefix_len }
                    | ByzantineAttack::SpoofOrigin { addr, prefix_len } = attack
                    {
                        self.nodes[*node].blackhole_prefixes.push(
                            Ipv4Cidr::new(Ipv4Address::from_bytes(addr), *prefix_len).network(),
                        );
                    }
                    self.telemetry.convergence.disruption(now);
                }
            }
            FaultAction::Rehabilitate { node } => {
                if *node < self.byz.len() && self.byz[*node].take().is_some() {
                    self.nodes[*node].blackhole_prefixes.clear();
                    self.telemetry.convergence.heal(now);
                }
            }
        }
    }

    fn heal_partition(&mut self) {
        let cut = core::mem::take(&mut self.partition_cut);
        if !cut.is_empty() {
            self.telemetry.convergence.heal(self.now);
        }
        for id in cut {
            self.set_link_up(id, true);
        }
    }

    // ------------------------------------------------------------- run

    /// Split a `Sharded`/`Parallel` network into its K lanes. Runs once,
    /// at the first `run_until`; the topology is frozen from then on.
    /// Nothing has been *processed* yet at that point (kicks service
    /// nodes directly; they only schedule), so redistributing the boot
    /// scheduler's pending events into per-lane schedulers loses no
    /// ordering or counter state.
    fn ensure_split(&mut self) {
        if self.frozen {
            return;
        }
        let n = self.nodes.len();
        let k = self.shard.shards().min(n.max(1));
        if k <= 1 {
            return;
        }
        self.frozen = true;
        let parallel = matches!(self.shard, ShardKind::Parallel { .. });
        let kind = self.lanes[0].sched.kind();
        // Lane boundaries: equal `NodeId` chunks by default; with the
        // partitioner on, boundaries slide (within a 25 % balance
        // slack) to maximize the cheapest cut link, so LANs and other
        // zero/low-latency links stay lane-internal without the
        // builder arranging node order for it. Read latencies before
        // the boot lane (which still homes every link) is popped.
        let bounds: Vec<(usize, usize)> = if self.partitioner {
            let links: Vec<CutLink> = self
                .links_meta
                .iter()
                .enumerate()
                .map(|(id, meta)| CutLink {
                    a: meta.a.node,
                    b: meta.b.node,
                    micros: self
                        .link_dir(id, true)
                        .base_propagation()
                        .total_micros()
                        .min(self.link_dir(id, false).base_propagation().total_micros())
                        .saturating_add(1),
                })
                .collect();
            partition::partition(n, k, &links).bounds
        } else {
            (0..k).map(|i| (i * n / k, (i + 1) * n / k)).collect()
        };
        debug_assert_eq!(bounds.len(), k, "partitioner preserves the lane count");
        let boot = self.lanes.pop().expect("boot lane");
        debug_assert_eq!(
            boot.sched.stats().processed,
            0,
            "split must happen before the first event pops"
        );
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            let pool = if parallel {
                // Lane-private pool: `Rc`-based recycling cannot cross
                // threads. Carries the zero-copy mode of the shared one.
                let pool = PacketPool::new();
                pool.set_zero_copy(self.pool.zero_copy());
                pool
            } else {
                self.pool.clone()
            };
            let mut lane = Lane::new(lo, hi, Scheduler::with_kind(kind), pool);
            lane.detach_cross = parallel;
            self.lanes.push(lane);
            for id in lo..hi {
                self.lane_of[id] = i as u32;
            }
        }
        // Each directed link moves to the lane owning its sender, RNG
        // state intact (connect-time kicks already drew from it).
        let mut boot_links = boot.links;
        for (slot, lane_link) in boot_links.drain(..).enumerate() {
            let link_id = slot / 2;
            let ab = slot % 2 == 0;
            let meta = &self.links_meta[link_id];
            let sender = if ab { meta.a.node } else { meta.b.node };
            let home = self.lane_of[sender] as usize;
            let idx = self.lanes[home].links.len() as u32;
            self.lanes[home].links.push(lane_link);
            self.link_home[link_id][usize::from(!ab)] = (home as u32, idx);
        }
        // Pending boot events follow their destination node.
        for (at, mut keyed) in boot.sched.into_drain() {
            let dest = match &mut keyed.event {
                Event::Frame { to, frame, .. } => {
                    if parallel {
                        // Sever from the pre-split shared pool; see
                        // `rehome_pool` for the same step on node state.
                        frame.detach();
                    }
                    *to
                }
                Event::Wake { node } => *node,
            };
            self.lanes[self.lane_of[dest] as usize]
                .sched
                .schedule_at(at, keyed);
        }
        if parallel {
            for id in 0..n {
                let pool = self.lanes[self.lane_of[id] as usize].pool.clone();
                self.nodes[id].rehome_pool(pool);
            }
        }
        self.build_lane_reach();
    }

    /// Build [`Network::lane_reach`]: directed per-lane-pair minimum
    /// hop latencies (base propagation + the 1 µs serialization floor),
    /// closed over relay chains with Floyd–Warshall. The closure is
    /// load-bearing, not pedantry: an *empty* lane imposes no
    /// next-event bound, yet can still relay a frame — lane A's frame
    /// can reach lane C through an idle lane B, so C's window must be
    /// bounded by `T_A + reach(A→C)` even with no direct A→C link. The
    /// diagonal starts at `MAX` (not zero) so Floyd–Warshall computes
    /// each lane's cheapest round-trip cycle: a lane far ahead of its
    /// peers can be re-entered by its own earlier output.
    fn build_lane_reach(&mut self) {
        let k = self.lanes.len();
        let mut reach = vec![u64::MAX; k * k];
        for (id, meta) in self.links_meta.iter().enumerate() {
            for ab in [true, false] {
                let (s, d) = if ab {
                    (meta.a.node, meta.b.node)
                } else {
                    (meta.b.node, meta.a.node)
                };
                let (lj, li) = (self.lane_of[s] as usize, self.lane_of[d] as usize);
                if lj != li {
                    let hop = self
                        .link_dir(id, ab)
                        .base_propagation()
                        .total_micros()
                        .saturating_add(1);
                    let cell = &mut reach[lj * k + li];
                    *cell = (*cell).min(hop);
                }
            }
        }
        for m in 0..k {
            for j in 0..k {
                let jm = reach[j * k + m];
                if jm == u64::MAX {
                    continue;
                }
                for i in 0..k {
                    let mi = reach[m * k + i];
                    if mi == u64::MAX {
                        continue;
                    }
                    let via = jm.saturating_add(mi);
                    let cell = &mut reach[j * k + i];
                    if via < *cell {
                        *cell = via;
                    }
                }
            }
        }
        self.lane_reach = reach;
    }

    /// The PR 8 global lookahead: the minimum base propagation delay of
    /// any cross-lane link, in microseconds. `None` means no cross-lane
    /// link exists (single lane) and windows are unbounded. Delay spikes
    /// only *add* delay on top of the base, so the bound stays sound
    /// under every fault the plan can inject. Kept as the baseline arm
    /// (see [`Network::set_global_lookahead`]); the default protocol
    /// uses [`Network::lane_reach`] instead.
    fn cross_lookahead(&self) -> Option<u64> {
        let mut lookahead: Option<u64> = None;
        for (id, meta) in self.links_meta.iter().enumerate() {
            if self.lane_of[meta.a.node] != self.lane_of[meta.b.node] {
                let micros = self.link_dir(id, true).base_propagation().total_micros();
                lookahead = Some(lookahead.map_or(micros, |cur| cur.min(micros)));
            }
        }
        lookahead
    }

    /// Run one lane's window serially (tap included, if installed).
    fn run_lane_window(&mut self, lane_index: usize, limit: Instant) {
        let lane = &mut self.lanes[lane_index];
        let (lo, hi) = (lane.lo, lane.hi);
        let mut view = LaneView {
            lane,
            lane_index,
            lo,
            nodes: &mut self.nodes[lo..hi],
            apps: &mut self.apps[lo..hi],
            next_wake: &mut self.next_wake[lo..hi],
            event_seq: &mut self.event_seq[lo..hi],
            service_count: &mut self.service_count[lo..hi],
            byz: &mut self.byz[lo..hi],
            last_dv_version: &mut self.last_dv_version[lo..hi],
            last_rto_total: &mut self.last_rto_total[lo..hi],
            last_harvest: &mut self.last_harvest[lo..hi],
            last_acct: &mut self.last_acct[lo..hi],
            last_guard: &mut self.last_guard[lo..hi],
            endpoint_index: &self.endpoint_index,
            links_meta: &self.links_meta,
            link_home: &self.link_home,
            lane_of: &self.lane_of,
            tap: self.tap.as_mut(),
        };
        view.run_window(limit);
    }

    /// Run the dispatched lanes' windows on scoped threads, each to its
    /// own per-pair limit. Only called when no coordinator-shared state
    /// (tap, attestation registry) can leak into a lane. Skipped lanes
    /// cost no thread spawn — their chunks are carved and dropped.
    fn run_windows_threaded(&mut self, limits: &[Instant], dispatch: &[bool]) {
        fn chunks<'a, T>(
            mut slice: &'a mut [T],
            bounds: &[(usize, usize)],
        ) -> std::vec::IntoIter<&'a mut [T]> {
            let mut out = Vec::with_capacity(bounds.len());
            let mut offset = 0;
            for &(lo, hi) in bounds {
                debug_assert_eq!(lo, offset, "lanes tile the node range");
                let (chunk, rest) = slice.split_at_mut(hi - offset);
                out.push(chunk);
                slice = rest;
                offset = hi;
            }
            out.into_iter()
        }
        let bounds: Vec<(usize, usize)> = self.lanes.iter().map(|l| (l.lo, l.hi)).collect();
        let mut nodes = chunks(&mut self.nodes, &bounds);
        let mut apps = chunks(&mut self.apps, &bounds);
        let mut next_wake = chunks(&mut self.next_wake, &bounds);
        let mut event_seq = chunks(&mut self.event_seq, &bounds);
        let mut service_count = chunks(&mut self.service_count, &bounds);
        let mut byz = chunks(&mut self.byz, &bounds);
        let mut last_dv_version = chunks(&mut self.last_dv_version, &bounds);
        let mut last_rto_total = chunks(&mut self.last_rto_total, &bounds);
        let mut last_harvest = chunks(&mut self.last_harvest, &bounds);
        let mut last_acct = chunks(&mut self.last_acct, &bounds);
        let mut last_guard = chunks(&mut self.last_guard, &bounds);
        let mut views: Vec<(SendView<'_>, Instant)> = Vec::with_capacity(self.lanes.len());
        for (lane_index, lane) in self.lanes.iter_mut().enumerate() {
            let view = LaneView {
                lo: lane.lo,
                lane,
                lane_index,
                nodes: nodes.next().expect("one chunk per lane"),
                apps: apps.next().expect("one chunk per lane"),
                next_wake: next_wake.next().expect("one chunk per lane"),
                event_seq: event_seq.next().expect("one chunk per lane"),
                service_count: service_count.next().expect("one chunk per lane"),
                byz: byz.next().expect("one chunk per lane"),
                last_dv_version: last_dv_version.next().expect("one chunk per lane"),
                last_rto_total: last_rto_total.next().expect("one chunk per lane"),
                last_harvest: last_harvest.next().expect("one chunk per lane"),
                last_acct: last_acct.next().expect("one chunk per lane"),
                last_guard: last_guard.next().expect("one chunk per lane"),
                endpoint_index: &self.endpoint_index,
                links_meta: &self.links_meta,
                link_home: &self.link_home,
                lane_of: &self.lane_of,
                tap: None,
            };
            if dispatch[lane_index] {
                views.push((SendView(view), limits[lane_index]));
            }
        }
        par::run_each_threaded(views);
    }

    /// Barrier absorb: fold lane counters into the network totals,
    /// schedule buffered cross-lane frames into their destination lanes
    /// (the lookahead guarantees every one lands strictly after the
    /// window that produced it), and apply harvested telemetry in
    /// `(instant, token)` order — exactly the order the single-lane arm
    /// would have written it inline.
    fn absorb(&mut self, horizon: Instant) {
        let mut offered = 0;
        let mut unconnected = 0;
        let mut crosses: Vec<CrossFrame> = Vec::new();
        for lane in &mut self.lanes {
            offered += core::mem::take(&mut lane.frames_offered);
            unconnected += core::mem::take(&mut lane.unconnected_drops);
            crosses.append(&mut lane.cross);
            self.pending_harvests.append(&mut lane.harvests);
        }
        self.frames_offered += offered;
        self.unconnected_drops += unconnected;
        // Canonical insertion order, so per-lane scheduler state is a
        // pure function of the event multiset, not of lane iteration.
        crosses.sort_unstable_by_key(|c| (c.at, c.key));
        for cross in crosses {
            self.lanes[self.lane_of[cross.to] as usize].sched.schedule_at(
                cross.at,
                Keyed {
                    key: cross.key,
                    event: Event::Frame {
                        to: cross.to,
                        iface: cross.iface,
                        frame: cross.frame,
                    },
                },
            );
        }
        // Each lane's list is already (at, token)-sorted; the merge
        // recovers the global service order. Tokens are delivery keys,
        // unique across lanes, so the order is total. Only entries at
        // or below the horizon are complete — every lane has executed
        // past them, so no later-harvested entry can sort before them.
        // The rest stay banked for a later barrier (or an op flush).
        self.pending_harvests.sort_unstable_by_key(|h| (h.at, h.token));
        let done = self
            .pending_harvests
            .partition_point(|h| h.at <= horizon);
        for entry in self.pending_harvests.drain(..done).collect::<Vec<_>>() {
            self.apply_harvest(entry);
        }
    }

    /// Apply every banked harvest entry, in order. Called before a
    /// coordinator op runs (the op's own recorder writes and registry
    /// reads must see all earlier traffic — every banked entry is
    /// strictly earlier, because traffic windows are capped one
    /// microsecond short of the next op instant) and at run end.
    fn flush_harvests(&mut self) {
        if self.pending_harvests.is_empty() {
            return;
        }
        for entry in core::mem::take(&mut self.pending_harvests) {
            self.apply_harvest(entry);
        }
    }

    /// Replay one lane-harvested telemetry entry into the recorder,
    /// registry and convergence tracer. Op order within an entry (and
    /// entry order at the caller) mirrors the inline writes the
    /// pre-shard loop performed, keeping dumps byte-identical.
    fn apply_harvest(&mut self, entry: HarvestEntry) {
        let HarvestEntry { at, node: id, ops, .. } = entry;
        for op in ops {
            match op {
                HarvestOp::RouteChanged { version } => {
                    self.telemetry
                        .recorder
                        .record(at, EventKind::RouteChanged { node: id, version });
                    self.telemetry.convergence.route_changed(at);
                    let c = self
                        .telemetry
                        .registry
                        .counter("route_changes", Scope::Node(id));
                    self.telemetry.registry.add(c, 1);
                }
                HarvestOp::RtoFired { total, delta } => {
                    self.telemetry.recorder.record(
                        at,
                        EventKind::RtoFired {
                            node: id,
                            total_timeouts: total,
                        },
                    );
                    let c = self
                        .telemetry
                        .registry
                        .counter("tcp_rto_fired", Scope::Node(id));
                    self.telemetry.registry.add(c, delta);
                }
                HarvestOp::Count { name, delta } => {
                    let c = self.telemetry.registry.counter(name, Scope::Node(id));
                    self.telemetry.registry.add(c, delta);
                }
                HarvestOp::NeighborCount { name, addr, delta } => {
                    let scope = Scope::Neighbor { node: id, addr: addr.0 };
                    let c = self.telemetry.registry.counter(name, scope);
                    self.telemetry.registry.add(c, delta);
                }
                HarvestOp::Incident { detail } => {
                    self.telemetry
                        .recorder
                        .record(at, EventKind::GuardAction { node: id, detail });
                }
            }
        }
    }

    /// Run the event loop until virtual time `t`, executing attached
    /// fault-plan events, telemetry samples and ledger flushes
    /// interleaved with traffic in time order. At equal times faults
    /// fire first (a crash at T kills frames arriving at T, exactly as
    /// a real power cut would), then the sampler (so a sample scheduled
    /// at a fault instant sees the post-fault world), then ledger
    /// flushes, then ordinary events.
    ///
    /// Execution proceeds in rounds. From the earliest pending instant
    /// `at`, each lane `i` runs up to its own limit
    /// `min(t, next-op-instant − 1 µs, A_i − 1 µs)`, where
    /// `A_i = min over lanes j of (T_j + reach(j→i))` is the earliest
    /// instant any peer's pending work (`T_j`, lane j's next event)
    /// could possibly reach lane i — the CMB-style per-pair bound, with
    /// `reach` the relay-closed lane-pair latency matrix (see
    /// [`Network::lane_reach`]); the diagonal term bounds a lane
    /// against its own round-tripped output. Lanes with nothing due
    /// inside their window are skipped (no view built, no thread
    /// spawned), then the barrier absorbs cross-lane frames and
    /// harvested telemetry. With one lane there is no bound and this
    /// collapses to the classic serial loop (one window per op-free
    /// span).
    ///
    /// Safety of the per-pair bound (why dumps stay byte-identical):
    /// every future cross-lane arrival into lane i happens at or after
    /// `A_i` — by induction over sends, a send from lane j is either a
    /// pre-scheduled event (time ≥ `T_j`) or descends from an earlier
    /// arrival, and each hop adds at least its link's base propagation
    /// plus the 1 µs serialization floor, which is exactly what `reach`
    /// sums. Lane i only executes instants strictly below `A_i`, so no
    /// event it processes can be preempted by a later-scheduled one,
    /// and same-instant batches stay complete. Progress is guaranteed:
    /// the lane owning `at` always has `A ≥ at + 1`, so it executes.
    pub fn run_until(&mut self, t: Instant) {
        self.ensure_split();
        let k = self.lanes.len();
        let threaded = matches!(self.shard, ShardKind::Parallel { .. })
            && k > 1
            && self.tap.is_none()
            && self.attest_master.is_none();
        // The PR 8 baseline arm prices the old protocol: one global
        // bound anchored at `at`, every lane dispatched every round.
        let global_w = if self.global_lookahead {
            self.cross_lookahead()
        } else {
            None
        };
        let mut limits: Vec<Instant> = vec![Instant::ZERO; k];
        let mut dispatch: Vec<bool> = vec![true; k];
        loop {
            let lane_at = self.next_event_at();
            let fault_at = self.fault_plan.as_ref().and_then(|p| p.next_at());
            let sample_at = self.telemetry.sampler.next_sample_at().filter(|&s| s <= t);
            let flush_at = self
                .accounting
                .as_ref()
                .map(|ctl| ctl.next_flush)
                .filter(|&f| f <= t);
            let at = match [lane_at, fault_at, sample_at, flush_at]
                .into_iter()
                .flatten()
                .min()
            {
                None => break,
                Some(at) => at,
            };
            if at > t {
                break;
            }
            self.now = at;
            if fault_at == Some(at) {
                self.flush_harvests();
                // Batched dispatch: a dense plan often schedules many
                // actions at one instant; draining them all here costs
                // one barrier interruption instead of one per action.
                let mut applied = 0u64;
                while let Some(event) = self.fault_plan.as_mut().and_then(|p| p.pop_due(at)) {
                    self.apply_fault(&event.action);
                    applied += 1;
                }
                debug_assert!(applied > 0, "fault peeked as due");
                if k > 1 {
                    self.stats.op_batches += 1;
                    self.stats.ops_applied += applied;
                }
                continue;
            }
            if sample_at == Some(at) {
                self.flush_harvests();
                self.take_sample(at);
                if k > 1 {
                    self.stats.op_batches += 1;
                    self.stats.ops_applied += 1;
                }
                continue;
            }
            // Ledger flushes ride the same timeline, after faults (a
            // crash at T forfeits the tail a flush at T would have
            // reported — power cuts don't wait for bookkeeping) and
            // after samples.
            if flush_at == Some(at) {
                self.flush_harvests();
                self.flush_ledgers();
                if k > 1 {
                    self.stats.op_batches += 1;
                    self.stats.ops_applied += 1;
                }
                continue;
            }
            // A round of pure traffic: no op is due at `at` (the
            // continues above dispatched any), so lanes may run up to
            // just before the next op instant, capped by `t` and each
            // lane's lookahead bound.
            let cap_t = t.total_micros();
            let op_us = [fault_at, sample_at, flush_at]
                .into_iter()
                .flatten()
                .min()
                .map(|op| op.total_micros() - 1);
            let cap = op_us.map_or(cap_t, |op| op.min(cap_t));
            let at_us = at.total_micros();
            let mut stalled = false;
            if k == 1 {
                limits[0] = Instant::from_micros(cap);
            } else if self.global_lookahead {
                let la = global_w.map_or(u64::MAX, |w| at_us.saturating_add(w));
                if op_us.is_some_and(|op| op < cap_t && la > op) {
                    stalled = true;
                }
                if la < cap && la == at_us {
                    self.stats.collapsed += k as u64;
                }
                let end = Instant::from_micros(la.min(cap));
                limits.iter_mut().for_each(|l| *l = end);
            } else {
                for (i, slot) in limits.iter_mut().enumerate() {
                    let mut bound = u64::MAX;
                    for (j, lane) in self.lanes.iter().enumerate() {
                        if let Some(tj) = lane.sched.peek_time() {
                            let r = self.lane_reach[j * k + i];
                            if r != u64::MAX {
                                bound = bound.min(tj.total_micros().saturating_add(r));
                            }
                        }
                    }
                    // Strictly below the earliest possible arrival: the
                    // 1 µs floor in `reach` makes `bound − 1` safe and
                    // still ≥ `at` for the lane owning the round start.
                    let la = bound.saturating_sub(1);
                    if op_us.is_some_and(|op| op < cap_t && la > op) {
                        stalled = true;
                    }
                    let lim = la.min(cap);
                    debug_assert!(lim >= at_us, "every lane window includes the round start");
                    if la < cap && lim == at_us {
                        self.stats.collapsed += 1;
                    }
                    *slot = Instant::from_micros(lim);
                }
            }
            if threaded {
                for (i, lane) in self.lanes.iter().enumerate() {
                    dispatch[i] = self.global_lookahead
                        || lane.sched.peek_time().is_some_and(|ti| ti <= limits[i]);
                }
                self.run_windows_threaded(&limits, &dispatch);
            } else {
                // Serial: a lane's window never schedules into another
                // lane's queue (cross frames buffer until the absorb),
                // so the due-check stays valid as earlier lanes run.
                for i in 0..k {
                    let due = self.global_lookahead
                        || self.lanes[i].sched.peek_time().is_some_and(|ti| ti <= limits[i]);
                    dispatch[i] = due;
                    if due {
                        self.run_lane_window(i, limits[i]);
                    }
                }
            }
            if k > 1 {
                self.stats.windows += 1;
                if stalled {
                    self.stats.barrier_stalls += 1;
                }
                for (i, &lim) in limits.iter().enumerate() {
                    self.stats.span_us += lim.total_micros() - at_us;
                    if dispatch[i] {
                        self.stats.lanes_dispatched += 1;
                    } else {
                        self.stats.lanes_skipped += 1;
                    }
                }
            }
            let horizon = limits.iter().copied().min().unwrap_or(at);
            self.absorb(horizon);
            self.now = horizon;
        }
        self.flush_harvests();
        self.now = t;
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Run until no events remain or `limit` is reached.
    pub fn run_to_quiescence(&mut self, limit: Instant) {
        while self.next_event_at().is_some_and(|at| at <= limit) {
            let next = self.next_event_at().expect("checked");
            self.run_until(next);
        }
    }

    /// Force a service pass on a node right now (used after the caller
    /// mutated its sockets or apps from outside the loop). The pass runs
    /// through the node's lane view and the barrier absorbs immediately,
    /// so frames it emits toward other lanes are scheduled before the
    /// caller regains control.
    pub fn kick(&mut self, id: NodeId) {
        // Don't advance time: just service at the current instant.
        let now = self.now;
        let lane_index = self.lane_of[id] as usize;
        let lane = &mut self.lanes[lane_index];
        let (lo, hi) = (lane.lo, lane.hi);
        let mut view = LaneView {
            lane,
            lane_index,
            lo,
            nodes: &mut self.nodes[lo..hi],
            apps: &mut self.apps[lo..hi],
            next_wake: &mut self.next_wake[lo..hi],
            event_seq: &mut self.event_seq[lo..hi],
            service_count: &mut self.service_count[lo..hi],
            byz: &mut self.byz[lo..hi],
            last_dv_version: &mut self.last_dv_version[lo..hi],
            last_rto_total: &mut self.last_rto_total[lo..hi],
            last_harvest: &mut self.last_harvest[lo..hi],
            last_acct: &mut self.last_acct[lo..hi],
            last_guard: &mut self.last_guard[lo..hi],
            endpoint_index: &self.endpoint_index,
            links_meta: &self.links_meta,
            link_home: &self.link_home,
            lane_of: &self.lane_of,
            tap: self.tap.as_mut(),
        };
        // Token 0: a kick is absorbed by itself, never merge-sorted
        // against window entries.
        view.service_node(id, now, 0);
        self.absorb(now);
    }

    // -------------------------------------------------- observability

    /// Borrow the telemetry bundle (registry, sampler, recorder,
    /// convergence tracer).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutably borrow the telemetry bundle — to change the sampler
    /// cadence, annotate the flight recorder, or size the ring.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Log an invariant evaluation in the flight recorder. A failed
    /// check also records an `InvariantTripped` event carrying the
    /// rendered violation, so the dump pinpoints the moment.
    pub fn record_invariant(&mut self, name: &'static str, ok: bool, detail: impl Into<String>) {
        let now = self.now;
        self.telemetry
            .recorder
            .record(now, EventKind::InvariantChecked { name, ok });
        if !ok {
            self.telemetry.recorder.record(
                now,
                EventKind::InvariantTripped {
                    description: detail.into(),
                },
            );
        }
    }

    /// The flight recorder's black-box readout.
    pub fn flight_dump(&self) -> String {
        self.telemetry.recorder.dump()
    }

    /// The metrics registry, rendered deterministically.
    pub fn metrics_dump(&self) -> String {
        self.telemetry.registry.dump()
    }

    /// The time-series rows, rendered deterministically.
    pub fn series_dump(&self) -> String {
        self.telemetry.sampler.dump()
    }

    /// One sampler pass: read every instrumented surface at `at` and
    /// append time-series rows. Pure observation — nothing in the
    /// simulation changes, so sampling can never perturb the run it
    /// measures.
    fn take_sample(&mut self, at: Instant) {
        self.telemetry.sampler.begin_sample(at);
        let cadence = self.telemetry.sampler.cadence();
        for id in 0..self.nodes.len() {
            let node = &self.nodes[id];
            if let Some(dv) = &node.dv {
                let version = dv.version();
                self.telemetry
                    .sampler
                    .record(at, "route_version", Scope::Node(id), version);
            }
            // Goodput: acked-byte delta over the cadence window, bits/s.
            let acked: u64 = node.tcp_sockets.iter().map(|s| s.stats.bytes_acked).sum();
            let delta = acked.saturating_sub(self.last_sampled_acked[id]);
            self.last_sampled_acked[id] = acked;
            if delta > 0 && !cadence.is_zero() {
                let bps = delta.saturating_mul(8_000_000) / cadence.total_micros();
                self.telemetry
                    .sampler
                    .record(at, "goodput_bps", Scope::Node(id), bps);
            }
            for (handle, sock) in node.tcp_sockets.iter().enumerate() {
                if !sock.is_active() {
                    continue;
                }
                let scope = Scope::Socket { node: id, handle };
                self.telemetry.sampler.record(
                    at,
                    "cwnd",
                    scope,
                    sock.congestion().window() as u64,
                );
                if let Some(srtt) = sock.rtt().srtt() {
                    self.telemetry
                        .sampler
                        .record(at, "srtt_us", scope, srtt.total_micros());
                }
            }
        }
        for lid in 0..self.links_meta.len() {
            let depth = (self.link_dir(lid, true).queue_depth(at)
                + self.link_dir(lid, false).queue_depth(at)) as u64;
            if depth > 0 {
                self.telemetry
                    .sampler
                    .record(at, "queue_depth", Scope::Link(lid), depth);
            }
        }
        // Always-on heartbeat row: makes "a sample landed exactly here"
        // observable even on an otherwise idle network.
        self.telemetry
            .sampler
            .record(at, "faults_applied", Scope::Global, self.faults_applied);
        // Event-loop progress rows. Both are backend-independent by
        // construction (the loop drives them, not the queue's innards),
        // which the differential harness relies on: they make the dumps
        // sensitive to scheduling or batching divergence without making
        // them sensitive to which backend ran.
        // Summed over lanes; every event is processed in exactly one
        // lane (the split redistributes before anything pops), so the
        // row is identical for every shard count.
        self.telemetry.sampler.record(
            at,
            "sched_events",
            Scope::Global,
            self.lanes.iter().map(|l| l.sched.processed()).sum(),
        );
        self.telemetry.sampler.record(
            at,
            "service_passes",
            Scope::Global,
            self.service_count.iter().sum(),
        );
        // Pool telemetry, opt-in (see `set_pool_metrics`): occupancy as
        // a sampler gauge, counter deltas into the registry, mirroring
        // how the reassembly counters are harvested.
        if self.pool_metrics {
            self.telemetry.sampler.record(
                at,
                "pool_free_buffers",
                Scope::Global,
                self.pool.free_buffers() as u64,
            );
            let stats = self.pool.stats();
            let last = self.last_pool;
            self.last_pool = stats;
            for (name, value, floor) in [
                ("pool_fresh_allocs", stats.fresh_allocs, last.fresh_allocs),
                ("pool_recycled", stats.recycled, last.recycled),
                ("pool_released", stats.released, last.released),
                ("pool_discarded", stats.discarded, last.discarded),
                ("pool_shift_copies", stats.shift_copies, last.shift_copies),
                ("pool_bytes_copied", stats.bytes_copied, last.bytes_copied),
            ] {
                if value > floor {
                    let c = self.telemetry.registry.counter(name, Scope::Global);
                    self.telemetry.registry.add(c, value - floor);
                }
            }
        }
    }

    /// Aggregate link statistics: (frames offered, frames delivered,
    /// frames lost to loss/corruption-drop, frames overflowed).
    pub fn link_totals(&self) -> (u64, u64, u64, u64) {
        let mut offered = 0;
        let mut delivered = 0;
        let mut lost = 0;
        let mut overflowed = 0;
        for lane in &self.lanes {
            for lane_link in &lane.links {
                let stats = lane_link.link.stats();
                offered += stats.tx_frames;
                delivered += stats.delivered;
                lost += stats.lost;
                overflowed += stats.overflowed;
            }
        }
        (offered, delivered, lost, overflowed)
    }

    /// Run until every gateway's routing table is stable for one full
    /// update interval (or until `limit`). Returns the convergence time.
    pub fn converge_routing(&mut self, limit: Duration) -> Duration {
        let start = self.now;
        let deadline = start + limit;
        let mut last_change = self.routing_fingerprint();
        let mut stable_since = self.now;
        let step = Duration::from_millis(500);
        while self.now < deadline {
            self.run_for(step);
            let fp = self.routing_fingerprint();
            if fp != last_change {
                last_change = fp;
                stable_since = self.now;
            } else if self.now.duration_since(stable_since) >= Duration::from_secs(7) {
                return stable_since.duration_since(start);
            }
        }
        limit
    }

    fn routing_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for node in &self.nodes {
            if let Some(dv) = &node.dv {
                for (prefix, route) in dv.routes() {
                    prefix.address().to_u32().hash(&mut hasher);
                    prefix.prefix_len().hash(&mut hasher);
                    route.metric.hash(&mut hasher);
                    route.next_hop.iface().hash(&mut hasher);
                }
            }
        }
        hasher.finish()
    }
}

fn describe_fault(action: &FaultAction) -> String {
    match action {
        FaultAction::LinkSet { link, up } => {
            format!("link {link} {}", if *up { "up" } else { "down" })
        }
        FaultAction::NodeCrash { node } => format!("crash node {node}"),
        FaultAction::NodeRestart { node } => format!("restart node {node}"),
        FaultAction::Partition { side_a } => format!("partition {side_a:?}"),
        FaultAction::Heal => "heal partition".to_string(),
        FaultAction::Degrade {
            link,
            loss,
            corruption,
        } => format!("degrade link {link} loss={loss:?} corruption={corruption:?}"),
        FaultAction::Restore { link } => format!("restore link {link}"),
        FaultAction::DegradeOneWay {
            link,
            a_to_b,
            loss,
            corruption,
        } => format!(
            "degrade link {link} ({}) loss={loss:?} corruption={corruption:?}",
            if *a_to_b { "a->b" } else { "b->a" }
        ),
        FaultAction::DelaySpike { link, extra, jitter } => {
            format!("delay-spike link {link} +{extra} jitter {jitter}")
        }
        FaultAction::RestoreDelay { link } => format!("restore-delay link {link}"),
        FaultAction::Compromise { node, attack } => {
            format!("compromise node {node} ({})", attack.name())
        }
        FaultAction::Rehabilitate { node } => format!("rehabilitate node {node}"),
    }
}

fn hw_addr(node: NodeId, iface: usize) -> EthernetAddress {
    EthernetAddress::new(
        0x02,
        0x00,
        (node >> 8) as u8,
        (node & 0xff) as u8,
        0x00,
        iface as u8,
    )
}

impl core::fmt::Debug for Network {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links_meta.len())
            .field("lanes", &self.lanes.len())
            .field(
                "pending_events",
                &self.lanes.iter().map(|l| l.sched.len()).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Icmpv4Message;

    /// h1 — g — h2 over T1 trunks.
    fn small_net() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::T1Terrestrial);
        (net, h1, g, h2)
    }

    #[test]
    fn ping_across_one_gateway() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 32, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        let events = net.node_mut(h1).take_icmp_events();
        assert_eq!(events.len(), 1, "one echo reply");
        assert!(matches!(
            events[0].message,
            Icmpv4Message::EchoReply { ident: 1, seq_no: 1 }
        ));
        assert_eq!(events[0].from, dst);
        // RTT sanity: two T1 hops each way ≈ 120 ms + serialization.
        let rtt = events[0].at;
        assert!(rtt >= Instant::from_millis(120), "rtt {rtt}");
        assert!(rtt <= Instant::from_millis(200), "rtt {rtt}");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let h1 = net.add_host("h1");
            let g = net.add_gateway("g");
            let h2 = net.add_host("h2");
            net.connect(h1, g, LinkClass::ArpanetTrunk);
            net.connect(g, h2, LinkClass::PacketRadio);
            let dst = net.node(h2).primary_addr();
            for seq in 0..20 {
                let now = net.now();
                net.node_mut(h1).send_ping(dst, 1, seq, 32, now);
                net.kick(h1);
                net.run_for(Duration::from_millis(500));
            }
            let events = net.node_mut(h1).take_icmp_events();
            events
                .iter()
                .map(|e| (e.at.total_micros(), e.message))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same universe");
        assert_ne!(run(7), run(8), "different seed, different losses");
    }

    #[test]
    fn replay_payload_matches_the_real_event_size() {
        // E13's trace replay measures the scheduler backends with a
        // dummy payload sized like the real scheduler entry — the event
        // enum plus its 8-byte delivery key; if Keyed grows or shrinks,
        // the replay constant must follow.
        assert_eq!(
            std::mem::size_of::<Keyed>(),
            catenet_sim::diffsched::REPLAY_PAYLOAD_BYTES,
        );
    }

    #[test]
    fn same_instant_frames_keep_fifo_order_in_one_service_pass() {
        // Two senders on identical deterministic links, equal-size
        // datagrams loaded before either is serviced: both frames
        // arrive at the receiver at the same instant. Batched delivery
        // must hand them over in schedule order and charge the receiver
        // exactly one service pass for the pair.
        let mut net = Network::new(5);
        let a = net.add_host("a");
        let b = net.add_host("b");
        let c = net.add_host("c");
        let quiet = LinkParams {
            name: "quiet-t1",
            bandwidth_bps: 1_544_000,
            propagation: Duration::from_millis(5),
            jitter: Duration::ZERO,
            loss: 0.0,
            corruption: 0.0,
            mtu: 1500,
            queue_limit: 50,
        };
        net.connect_with(a, c, quiet.clone(), Framing::RawIp);
        net.connect_with(b, c, quiet, Framing::RawIp);
        net.node_mut(c).udp_bind(9000);
        let dst = crate::Endpoint::new(net.node(c).primary_addr(), 9000);
        let sa = net.node_mut(a).udp_bind(9001);
        let sb = net.node_mut(b).udp_bind(9002);
        net.node_mut(a).udp_sockets[sa].send_to(dst, b"first");
        net.node_mut(b).udp_sockets[sb].send_to(dst, b"other");
        net.kick(a);
        net.kick(b);
        let passes_before = net.service_passes(c);
        let arrival = net.next_event_at().expect("two frames in flight");
        net.run_until(arrival);
        assert_eq!(
            net.service_passes(c),
            passes_before + 1,
            "two same-instant frames cost one batched service pass"
        );
        let first = net.node_mut(c).udp_sockets[0].recv().expect("first frame");
        let other = net.node_mut(c).udp_sockets[0].recv().expect("second frame");
        assert_eq!(first.payload, b"first", "FIFO by schedule order");
        assert_eq!(other.payload, b"other");
    }

    #[test]
    fn udp_delivery_across_network() {
        let (mut net, h1, _g, h2) = small_net();
        let dst_addr = net.node(h2).primary_addr();
        net.node_mut(h2).udp_bind(7000);
        let sock = net.node_mut(h1).udp_bind(7001);
        net.node_mut(h1).udp_sockets[sock]
            .send_to(crate::Endpoint::new(dst_addr, 7000), b"datagram service");
        net.kick(h1);
        net.run_for(Duration::from_secs(1));
        let received = net.node_mut(h2).udp_sockets[0].recv().unwrap();
        assert_eq!(received.payload, b"datagram service");
    }

    #[test]
    fn tcp_transfer_across_network() {
        let (mut net, h1, _g, h2) = small_net();
        let dst_addr = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, Default::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(crate::Endpoint::new(dst_addr, 80), Default::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(
            net.node(h1).tcp_sockets[handle].state(),
            catenet_tcp::State::Established
        );
        let payload = vec![0x42u8; 5_000];
        net.node_mut(h1).tcp_sockets[handle]
            .send_slice(&payload)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(10));
        let server = &mut net.node_mut(h2).tcp_sockets[0];
        let mut buf = vec![0u8; 8_192];
        let mut received = Vec::new();
        loop {
            match server.recv_slice(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => received.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(received, payload);
    }

    #[test]
    fn ethernet_lan_with_arp_works() {
        let mut net = Network::new(3);
        let h1 = net.add_host("h1");
        let h2 = net.add_host("h2");
        net.connect(h1, h2, LinkClass::EthernetLan); // Ethernet framing + ARP
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 9, 0, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(1));
        let events = net.node_mut(h1).take_icmp_events();
        assert_eq!(events.len(), 1, "ARP resolved, ping succeeded");
    }

    #[test]
    fn link_down_partitions() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        net.set_link_up(1, false);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        let events = net.node_mut(h1).take_icmp_events();
        // Either silence or a net-unreachable from the gateway; never a
        // reply.
        assert!(events
            .iter()
            .all(|e| !matches!(e.message, Icmpv4Message::EchoReply { .. })));
    }

    #[test]
    fn routing_converges_on_triangle_and_heals() {
        // g1 — g2, g2 — g3, g1 — g3: full triangle with hosts on g1/g3.
        let mut net = Network::new(5);
        let h1 = net.add_host("h1");
        let g1 = net.add_gateway("g1");
        let g2 = net.add_gateway("g2");
        let g3 = net.add_gateway("g3");
        let h2 = net.add_host("h2");
        net.connect(h1, g1, LinkClass::EthernetLan);
        let direct = net.connect(g1, g3, LinkClass::T1Terrestrial);
        net.connect(g1, g2, LinkClass::T1Terrestrial);
        net.connect(g2, g3, LinkClass::T1Terrestrial);
        net.connect(g3, h2, LinkClass::EthernetLan);
        net.converge_routing(Duration::from_secs(60));
        let dst = net.node(h2).primary_addr();

        // Ping works over the direct g1—g3 edge.
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1);

        // Sever the direct edge; DV must reroute via g2.
        net.set_link_up(direct, false);
        net.converge_routing(Duration::from_secs(120));
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 2, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(3));
        let events = net.node_mut(h1).take_icmp_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.message, Icmpv4Message::EchoReply { .. })),
            "rerouted around the dead link: {events:?}"
        );
    }

    #[test]
    fn gateway_crash_and_reboot_relearns_routes() {
        let (mut net, h1, g, h2) = small_net();
        net.converge_routing(Duration::from_secs(30));
        let routes_before = net.node(g).dv.as_ref().unwrap().live_routes();
        assert!(routes_before >= 2);
        net.crash_node(g);
        assert_eq!(net.node(g).dv.as_ref().unwrap().live_routes(), 0);
        net.restart_node(g);
        net.run_for(Duration::from_secs(15));
        assert!(
            net.node(g).dv.as_ref().unwrap().live_routes() >= 2,
            "gateway relearned its world from configuration + neighbors"
        );
        // And traffic flows again.
        let dst = net.node(h2).primary_addr();
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 1, 9, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1);
    }

    #[test]
    fn gateway_quenches_overload_and_sender_slows() {
        // h1 --fast ethernet--> g --tiny-queue slow trunk--> h2:
        // the gateway's output queue overflows, it emits source quench,
        // and the TCP sender's congestion window collapses in response.
        let mut net = Network::new(77);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::EthernetLan);
        net.connect_with(
            g,
            h2,
            catenet_sim::LinkParams {
                queue_limit: 2,
                loss: 0.0,
                corruption: 0.0,
                ..LinkClass::ArpanetTrunk.params()
            },
            Framing::RawIp,
        );
        net.converge_routing(Duration::from_secs(30));
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).tcp_listen(80, Default::default());
        let now = net.now();
        let handle = net
            .node_mut(h1)
            .tcp_connect(crate::Endpoint::new(dst, 80), Default::default(), now)
            .unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        // Blast data; the 56 kb/s trunk with queue 2 must overflow.
        let blob = vec![0x11u8; 60_000];
        net.node_mut(h1).tcp_sockets[handle].send_slice(&blob).unwrap();
        net.kick(h1);
        net.run_for(Duration::from_secs(30));
        assert!(net.node(g).stats.quench_sent > 0, "gateway quenched");
        assert!(
            net.node(h1).tcp_sockets[handle].stats.quenches > 0,
            "sender applied the quench"
        );
        assert!(net.node(h1).stats.quench_applied > 0);
    }

    #[test]
    fn fragmentation_across_small_mtu_path() {
        // h1 —(1500)— g —(296)— h2: large UDP datagrams must fragment.
        let mut net = Network::new(11);
        let h1 = net.add_host("h1");
        let g = net.add_gateway("g");
        let h2 = net.add_host("h2");
        net.connect(h1, g, LinkClass::T1Terrestrial);
        net.connect(g, h2, LinkClass::SlipLine);
        let dst = net.node(h2).primary_addr();
        net.node_mut(h2).udp_bind(9000);
        let sock = net.node_mut(h1).udp_bind(9001);
        let payload = vec![0x5Au8; 1200];
        net.node_mut(h1).udp_sockets[sock].send_to(crate::Endpoint::new(dst, 9000), &payload);
        net.kick(h1);
        net.run_for(Duration::from_secs(5));
        let received = net.node_mut(h2).udp_sockets[0].recv().expect("reassembled");
        assert_eq!(received.payload, payload);
        assert!(net.node(g).stats.frags_created >= 4);
        assert_eq!(net.node(h2).reassembler().completed, 1);
        // The registry mirrors the reassembler's counter.
        assert_eq!(
            net.telemetry()
                .registry
                .get("reassembled_datagrams", Scope::Node(h2)),
            1
        );
    }

    #[test]
    fn fault_plan_executes_interleaved_with_traffic() {
        let (mut net, _h1, g, _h2) = small_net();
        let mut plan = catenet_sim::FaultPlan::new();
        plan.push(
            Instant::from_secs(1),
            catenet_sim::FaultAction::NodeCrash { node: g },
        );
        plan.push(
            Instant::from_secs(3),
            catenet_sim::FaultAction::NodeRestart { node: g },
        );
        plan.push(
            Instant::from_secs(5),
            catenet_sim::FaultAction::LinkSet { link: 0, up: false },
        );
        net.attach_fault_plan(plan);
        assert_eq!(net.pending_faults(), 3);
        net.run_until(Instant::from_secs(2));
        assert!(!net.node(g).alive, "crash fired");
        assert_eq!(net.pending_faults(), 2);
        net.run_until(Instant::from_secs(4));
        assert!(net.node(g).alive, "restart fired");
        net.run_until(Instant::from_secs(6));
        assert!(!net.link_is_up(0));
        assert_eq!(net.pending_faults(), 0);
        assert_eq!(net.faults_applied, 3);
    }

    #[test]
    fn partition_cuts_only_crossing_links_and_heals_exactly() {
        // h1 — gA — gB — h2, plus gA — gC — gB backup.
        let mut net = Network::new(9);
        let h1 = net.add_host("h1");
        let ga = net.add_gateway("gA");
        let gb = net.add_gateway("gB");
        let gc = net.add_gateway("gC");
        let h2 = net.add_host("h2");
        let l_h1 = net.connect(h1, ga, LinkClass::T1Terrestrial);
        let l_ab = net.connect(ga, gb, LinkClass::T1Terrestrial);
        let l_ac = net.connect(ga, gc, LinkClass::T1Terrestrial);
        let l_cb = net.connect(gc, gb, LinkClass::T1Terrestrial);
        let l_h2 = net.connect(gb, h2, LinkClass::T1Terrestrial);
        let mut plan = catenet_sim::FaultPlan::new();
        plan.partition(
            vec![h1, ga],
            Instant::from_secs(1),
            Duration::from_secs(2),
        );
        net.attach_fault_plan(plan);
        net.run_until(Instant::from_millis(1_500));
        // Links crossing the {h1, gA} boundary are down; the rest are up.
        assert!(net.link_is_up(l_h1));
        assert!(!net.link_is_up(l_ab));
        assert!(!net.link_is_up(l_ac));
        assert!(net.link_is_up(l_cb));
        assert!(net.link_is_up(l_h2));
        net.run_until(Instant::from_secs(4));
        for link in [l_h1, l_ab, l_ac, l_cb, l_h2] {
            assert!(net.link_is_up(link), "healed link {link}");
        }
    }

    #[test]
    fn flap_does_not_resurrect_partitioned_link() {
        let (mut net, _h1, _g, _h2) = small_net();
        let mut plan = catenet_sim::FaultPlan::new();
        plan.partition(vec![0], Instant::from_secs(1), Duration::from_secs(10));
        // A flap tries to raise link 0 mid-partition: must stay down.
        plan.push(
            Instant::from_secs(2),
            catenet_sim::FaultAction::LinkSet { link: 0, up: true },
        );
        net.attach_fault_plan(plan);
        net.run_until(Instant::from_secs(3));
        assert!(!net.link_is_up(0), "partition outranks the flap");
        net.run_until(Instant::from_secs(12));
        assert!(net.link_is_up(0), "heal restores the link");
    }

    #[test]
    fn degrade_window_is_invisible_to_routing_but_lossy() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        net.degrade_link(0, Some(1.0), None);
        assert!(net.link_is_up(0), "blackhole looks healthy");
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 4, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert!(net.node_mut(h1).take_icmp_events().is_empty(), "blackholed");
        net.restore_link(0);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 4, 2, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1, "restored");
    }

    #[test]
    fn telemetry_dumps_are_byte_identical_across_runs() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let h1 = net.add_host("h1");
            let g = net.add_gateway("g");
            let h2 = net.add_host("h2");
            net.connect(h1, g, LinkClass::ArpanetTrunk);
            net.connect(g, h2, LinkClass::PacketRadio);
            let mut plan = catenet_sim::FaultPlan::new();
            plan.push(
                Instant::from_secs(3),
                catenet_sim::FaultAction::LinkSet { link: 1, up: false },
            );
            plan.push(
                Instant::from_secs(8),
                catenet_sim::FaultAction::LinkSet { link: 1, up: true },
            );
            net.attach_fault_plan(plan);
            let dst = net.node(h2).primary_addr();
            net.node_mut(h2).tcp_listen(80, Default::default());
            let now = net.now();
            let handle = net
                .node_mut(h1)
                .tcp_connect(crate::Endpoint::new(dst, 80), Default::default(), now)
                .unwrap();
            net.kick(h1);
            net.run_for(Duration::from_secs(2));
            let _ = net.node_mut(h1).tcp_sockets[handle].send_slice(&[0x33u8; 20_000]);
            net.kick(h1);
            net.run_for(Duration::from_secs(28));
            (net.metrics_dump(), net.series_dump(), net.flight_dump())
        };
        let (m1, s1, f1) = run(21);
        let (m2, s2, f2) = run(21);
        assert_eq!(m1, m2, "registry dump must replay bit-for-bit");
        assert_eq!(s1, s2, "time-series dump must replay bit-for-bit");
        assert_eq!(f1, f2, "flight-recorder dump must replay bit-for-bit");
        assert!(!s1.is_empty(), "sampler ran");
        assert!(f1.contains("fault: link 1 down"), "faults recorded: {f1}");
    }

    #[test]
    fn sample_at_a_fault_instant_sees_the_post_fault_world() {
        // Default cadence 500 ms; the fault lands exactly on a sample
        // boundary. Faults apply before the sample, so the heartbeat row
        // at that instant must already count it.
        let (mut net, _h1, _g, _h2) = small_net();
        let mut plan = catenet_sim::FaultPlan::new();
        plan.push(
            Instant::from_millis(1_500),
            catenet_sim::FaultAction::Degrade {
                link: 0,
                loss: Some(1.0),
                corruption: None,
            },
        );
        net.attach_fault_plan(plan);
        net.run_until(Instant::from_secs(3));
        let rows = net.telemetry().sampler.rows();
        let at_fault: Vec<_> = rows
            .iter()
            .filter(|s| {
                s.at == Instant::from_millis(1_500) && s.metric == "faults_applied"
            })
            .collect();
        assert_eq!(at_fault.len(), 1, "exactly one heartbeat at the boundary");
        assert_eq!(at_fault[0].value, 1, "fault applied before the sample");
        let before: Vec<_> = rows
            .iter()
            .filter(|s| {
                s.at == Instant::from_millis(1_000) && s.metric == "faults_applied"
            })
            .collect();
        assert_eq!(before[0].value, 0, "previous sample predates the fault");
        // Cadence kept ticking: samples at 0.5, 1.0, 1.5, 2.0, 2.5, 3.0 s.
        let heartbeat = rows.iter().filter(|s| s.metric == "faults_applied").count();
        assert_eq!(heartbeat, 6);
    }

    #[test]
    fn link_cut_and_heal_yields_one_measured_reconvergence() {
        // Triangle with a backup path: cut the direct edge, heal it,
        // and the tracer must pair the heal with a settled measurement.
        let mut net = Network::new(17);
        let h1 = net.add_host("h1");
        let g1 = net.add_gateway("g1");
        let g2 = net.add_gateway("g2");
        let g3 = net.add_gateway("g3");
        let h2 = net.add_host("h2");
        net.connect(h1, g1, LinkClass::EthernetLan);
        let direct = net.connect(g1, g3, LinkClass::T1Terrestrial);
        net.connect(g1, g2, LinkClass::T1Terrestrial);
        net.connect(g2, g3, LinkClass::T1Terrestrial);
        net.connect(g3, h2, LinkClass::EthernetLan);
        net.converge_routing(Duration::from_secs(60));
        let mut plan = catenet_sim::FaultPlan::new();
        let cut_at = net.now() + Duration::from_secs(2);
        plan.push(cut_at, catenet_sim::FaultAction::LinkSet { link: direct, up: false });
        plan.push(
            cut_at + Duration::from_secs(20),
            catenet_sim::FaultAction::LinkSet { link: direct, up: true },
        );
        net.attach_fault_plan(plan);
        net.run_for(Duration::from_secs(60));
        let tracer = &net.telemetry().convergence;
        assert_eq!(tracer.heal_count(), 1);
        assert!(tracer.route_change_count() > 0, "DV reacted to the cut");
        let recs = tracer.reconvergences(net.now());
        assert_eq!(recs.len(), 1);
        assert!(recs[0].settled, "routing went quiescent after the heal");
        assert!(
            recs[0].took <= Duration::from_secs(30),
            "reconvergence took {}",
            recs[0].took
        );
    }

    #[test]
    fn one_way_degrade_hits_only_the_named_direction() {
        let (mut net, h1, _g, h2) = small_net();
        let dst = net.node(h2).primary_addr();
        let src = net.node(h1).primary_addr();
        // Kill h1→g entirely; g→h1 stays clean.
        net.degrade_link_dir(0, true, Some(1.0), None);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 5, 1, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert!(
            net.node_mut(h1).take_icmp_events().is_empty(),
            "forward direction blackholed"
        );
        assert_eq!(
            net.node(h2).stats.icmp_received,
            0,
            "request never crossed the degraded a→b direction"
        );
        // The reverse direction still delivers: h2's echo request
        // reaches h1 (the *reply* dies on the degraded direction, so
        // count arrivals at h1 rather than waiting for a round trip).
        let now = net.now();
        net.node_mut(h2).send_ping(src, 5, 2, 16, now);
        net.kick(h2);
        net.run_for(Duration::from_secs(2));
        assert_eq!(
            net.node(h1).stats.icmp_received,
            1,
            "request crossed the clean b→a direction of link 0"
        );
        net.restore_link(0);
        let now = net.now();
        net.node_mut(h1).send_ping(dst, 5, 3, 16, now);
        net.kick(h1);
        net.run_for(Duration::from_secs(2));
        assert_eq!(net.node_mut(h1).take_icmp_events().len(), 1, "restored");
    }

    #[test]
    fn fault_plans_replay_identically() {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let h1 = net.add_host("h1");
            let g = net.add_gateway("g");
            let h2 = net.add_host("h2");
            net.connect(h1, g, LinkClass::ArpanetTrunk);
            net.connect(g, h2, LinkClass::PacketRadio);
            let mut rng = catenet_sim::Rng::from_seed(seed ^ 0xc0ffee);
            let mut plan = catenet_sim::FaultPlan::new();
            plan.link_flap(
                1,
                Instant::from_secs(1),
                Instant::from_secs(20),
                Duration::from_secs(3),
                Duration::from_secs(1),
                &mut rng,
            );
            plan.crash_storm(
                &[g],
                Instant::from_secs(2),
                Instant::from_secs(18),
                2,
                (Duration::from_secs(1), Duration::from_secs(2)),
                &mut rng,
            );
            net.attach_fault_plan(plan);
            let dst = net.node(h2).primary_addr();
            for seq in 0..40 {
                let now = net.now();
                net.node_mut(h1).send_ping(dst, 1, seq, 32, now);
                net.kick(h1);
                net.run_for(Duration::from_millis(500));
            }
            let events = net.node_mut(h1).take_icmp_events();
            (
                net.faults_applied,
                events
                    .iter()
                    .map(|e| (e.at.total_micros(), e.message))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(13), run(13), "same seed, same chaos, same outcome");
    }

    /// Five-gateway ring, source host at g4, victim host at g2. g0 is
    /// compromised to advertise metric 0 for the victim's LAN and eat
    /// whatever arrives. Returns echo replies received by the source
    /// plus the liar's byzantine-drop count and the metrics dump.
    fn blackhole_ring(guard: bool) -> (usize, u64, String) {
        let mut net = Network::new(42);
        let gs: Vec<NodeId> = (0..5)
            .map(|i| net.add_gateway(format!("g{i}")))
            .collect();
        for &g in &gs {
            net.node_mut(g).set_dv_config(catenet_routing::DvConfig::fast());
        }
        for i in 0..5 {
            net.connect(gs[i], gs[(i + 1) % 5], LinkClass::T1Terrestrial);
        }
        let src = net.add_host("src");
        net.connect(src, gs[4], LinkClass::EthernetLan);
        let victim = net.add_host("victim");
        let victim_link = net.connect(gs[2], victim, LinkClass::EthernetLan);
        if guard {
            net.set_guard_policy(GuardPolicy::standard());
        }
        net.converge_routing(Duration::from_secs(120));
        let lan = net.link_subnet(victim_link);
        net.apply_fault(&FaultAction::Compromise {
            node: gs[0],
            attack: ByzantineAttack::BlackholeVictim {
                addr: lan.address().0,
                prefix_len: lan.prefix_len(),
            },
        });
        // Two fast periodic intervals: the lie (or its rejection) settles.
        net.run_for(Duration::from_secs(10));
        let dst = net.node(victim).primary_addr();
        let now = net.now();
        net.node_mut(src).send_ping(dst, 7, 1, 32, now);
        net.kick(src);
        net.run_for(Duration::from_secs(5));
        let replies = net.node_mut(src).take_icmp_events().len();
        (replies, net.node(gs[0]).stats.dropped_byzantine, net.metrics_dump())
    }

    #[test]
    fn compromised_gateway_blackholes_unguarded_ring() {
        let (replies, eaten, metrics) = blackhole_ring(false);
        assert_eq!(replies, 0, "metric-0 lie pulls traffic into the liar");
        assert!(eaten > 0, "the liar ate the redirected datagram");
        assert!(
            !metrics.contains("guard_"),
            "guard off: no guard metric is ever interned"
        );
    }

    #[test]
    fn route_guard_defeats_the_blackhole() {
        let (replies, eaten, metrics) = blackhole_ring(true);
        assert_eq!(replies, 1, "sanitized neighbors keep the honest route");
        assert_eq!(eaten, 0, "nothing is pulled toward the liar");
        assert!(
            metrics.contains("guard_sanitized"),
            "verdict counters harvested into the registry:\n{metrics}"
        );
    }

    /// Same five-gateway ring as [`blackhole_ring`], but the liar runs a
    /// metric-1 prefix hijack — wire-legal, so sanitization alone cannot
    /// catch it. Guards are armed *before* convergence (cold boot, with
    /// the boot learning window absorbing the initial storm) and
    /// `attested` additionally distributes the origin registry and
    /// verifies proofs.
    fn hijack_ring(attested: bool, keep_proof: bool) -> (usize, u64, String) {
        let mut net = Network::new(42);
        let gs: Vec<NodeId> = (0..5)
            .map(|i| net.add_gateway(format!("g{i}")))
            .collect();
        for &g in &gs {
            net.node_mut(g).set_dv_config(catenet_routing::DvConfig::fast());
        }
        // The trust anchor is distributed before the first link exists,
        // so even the build-time triggered announcements go out signed.
        if attested {
            net.enable_attestation();
        }
        for i in 0..5 {
            net.connect(gs[i], gs[(i + 1) % 5], LinkClass::T1Terrestrial);
        }
        let src = net.add_host("src");
        net.connect(src, gs[4], LinkClass::EthernetLan);
        let victim = net.add_host("victim");
        let victim_link = net.connect(gs[2], victim, LinkClass::EthernetLan);
        if attested {
            net.set_guard_policy(GuardPolicy::attested());
        } else {
            net.set_guard_policy(GuardPolicy::boot_armed());
        }
        net.converge_routing(Duration::from_secs(120));
        let lan = net.link_subnet(victim_link);
        let attack = if keep_proof {
            ByzantineAttack::HijackAttested {
                addr: lan.address().0,
                prefix_len: lan.prefix_len(),
            }
        } else {
            ByzantineAttack::HijackPrefix {
                addr: lan.address().0,
                prefix_len: lan.prefix_len(),
            }
        };
        net.apply_fault(&FaultAction::Compromise { node: gs[0], attack });
        net.run_for(Duration::from_secs(10));
        let dst = net.node(victim).primary_addr();
        let now = net.now();
        net.node_mut(src).send_ping(dst, 7, 1, 32, now);
        net.kick(src);
        net.run_for(Duration::from_secs(5));
        let replies = net.node_mut(src).take_icmp_events().len();
        (replies, net.node(gs[0]).stats.dropped_byzantine, net.metrics_dump())
    }

    #[test]
    fn metric_one_hijack_walks_past_the_plain_guard() {
        let (replies, eaten, metrics) = hijack_ring(false, false);
        assert_eq!(replies, 0, "a wire-legal metric-1 lie is believed");
        assert!(eaten > 0, "the liar ate the redirected datagram");
        assert!(
            !metrics.contains("guard_attest_rejected"),
            "no attestation verdict without verification"
        );
    }

    #[test]
    fn origin_attestation_defeats_the_hijack() {
        let (replies, eaten, metrics) = hijack_ring(true, false);
        assert_eq!(replies, 1, "the unattested claim is dropped, honest route kept");
        assert_eq!(eaten, 0, "nothing is pulled toward the liar");
        assert!(
            metrics.contains("guard_attest_rejected"),
            "rejections harvested into the registry:\n{metrics}"
        );
    }

    #[test]
    fn attested_hijack_is_the_designed_residual() {
        let (replies, eaten, _metrics) = hijack_ring(true, true);
        assert_eq!(
            replies, 0,
            "a relayed genuine proof plus a shortened metric still wins: \
             origin attestation proves ownership, not path honesty"
        );
        assert!(eaten > 0, "the residual attack still eats traffic");
    }
}
