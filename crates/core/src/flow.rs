//! Per-flow soft state — re-exported from [`catenet_accounting`].
//!
//! The flow table grew out of this module into the dedicated
//! accountability crate (sharded, bounded, fragment-aware); the types
//! live in [`catenet_accounting::flow`] and
//! [`catenet_accounting::table`] now. This shim keeps the original
//! `catenet_core::flow::{FlowTable, FlowId, FlowState}` paths working.

pub use catenet_accounting::flow::{Classified, FlowId, FlowState, FragKey};
pub use catenet_accounting::table::{FlowTable, ShardStats};
