//! Soft-state flow tracking in gateways — the paper's closing proposal.
//!
//! Clark §10: "a new building block ... the flow ... it would be
//! necessary for the gateways to have flow state ... but the state
//! information would not be critical ... 'soft state' ... could be lost
//! in a crash and reconstructed from the datagrams themselves." This
//! module is that proposal made concrete: a gateway observes the
//! datagrams it forwards, keys them by the 5-tuple, and maintains a rate
//! estimate and counters per flow. Nothing *depends* on the table — it
//! serves resource management and accounting — so losing it costs
//! nothing but a short re-learning transient, which experiment E8
//! measures.

use catenet_sim::{Duration, Instant};
use catenet_wire::{IpProtocol, Ipv4Address, Ipv4Packet, TcpPacket, UdpPacket};
use std::collections::HashMap;

/// The flow key: the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    /// Source address.
    pub src_addr: Ipv4Address,
    /// Destination address.
    pub dst_addr: Ipv4Address,
    /// Transport protocol.
    pub protocol: u8,
    /// Source port (0 for portless protocols).
    pub src_port: u16,
    /// Destination port (0 for portless protocols).
    pub dst_port: u16,
}

impl FlowId {
    /// Extract the flow key from an IPv4 datagram, if parseable.
    /// Fragments with nonzero offset have no transport header; they are
    /// attributed to the portless flow of their protocol (the honest
    /// 1988 answer — datagram accounting is approximate, see E7).
    pub fn of_datagram(datagram: &[u8]) -> Option<FlowId> {
        let packet = Ipv4Packet::new_checked(datagram).ok()?;
        let (src_port, dst_port) = if packet.frag_offset() != 0 {
            (0, 0)
        } else {
            match packet.protocol() {
                IpProtocol::Tcp => match TcpPacket::new_checked(packet.payload()) {
                    Ok(tcp) => (tcp.src_port(), tcp.dst_port()),
                    Err(_) => (0, 0),
                },
                IpProtocol::Udp => match UdpPacket::new_checked(packet.payload()) {
                    Ok(udp) => (udp.src_port(), udp.dst_port()),
                    Err(_) => (0, 0),
                },
                _ => (0, 0),
            }
        };
        Some(FlowId {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol().into(),
            src_port,
            dst_port,
        })
    }
}

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_addr, self.src_port, self.dst_addr, self.dst_port, self.protocol
        )
    }
}

/// Per-flow soft state.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Packets observed.
    pub packets: u64,
    /// Bytes observed (IP datagram bytes).
    pub bytes: u64,
    /// When the flow was first seen (since the last table loss).
    pub first_seen: Instant,
    /// When the flow was last seen.
    pub last_seen: Instant,
    /// EWMA rate estimate in bytes/second.
    pub rate_bps: f64,
}

impl FlowState {
    /// Whether the rate estimate has converged to within `tolerance`
    /// (fractional) of `true_rate`.
    pub fn rate_within(&self, true_rate: f64, tolerance: f64) -> bool {
        if true_rate == 0.0 {
            return self.rate_bps.abs() < 1.0;
        }
        ((self.rate_bps - true_rate) / true_rate).abs() <= tolerance
    }
}

/// The gateway's soft-state flow table.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowId, FlowState>,
    /// Idle time after which an entry evaporates (soft state!).
    idle_timeout: Duration,
    /// EWMA time constant for the rate estimate.
    rate_tau: Duration,
    /// Total entries expired so far.
    pub expired: u64,
    /// Total table losses (crashes).
    pub losses: u64,
}

impl FlowTable {
    /// Default idle timeout.
    pub const DEFAULT_IDLE: Duration = Duration::from_secs(30);

    /// A table with default parameters.
    pub fn new() -> FlowTable {
        FlowTable::with_params(Self::DEFAULT_IDLE, Duration::from_secs(1))
    }

    /// A table with explicit idle timeout and rate time-constant.
    pub fn with_params(idle_timeout: Duration, rate_tau: Duration) -> FlowTable {
        FlowTable {
            flows: HashMap::new(),
            idle_timeout,
            rate_tau,
            expired: 0,
            losses: 0,
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Observe one forwarded datagram.
    pub fn observe(&mut self, datagram: &[u8], now: Instant) {
        let Some(id) = FlowId::of_datagram(datagram) else {
            return;
        };
        let bytes = datagram.len() as u64;
        match self.flows.get_mut(&id) {
            Some(state) => {
                let dt = now.duration_since(state.last_seen).secs_f64();
                let tau = self.rate_tau.secs_f64();
                let inst_rate = if dt > 0.0 { bytes as f64 / dt } else { 0.0 };
                // Exponentially weighted moving average with gap decay.
                let alpha = if dt > 0.0 {
                    1.0 - (-dt / tau).exp()
                } else {
                    0.0
                };
                state.rate_bps += alpha * (inst_rate - state.rate_bps);
                state.packets += 1;
                state.bytes += bytes;
                state.last_seen = now;
            }
            None => {
                self.flows.insert(
                    id,
                    FlowState {
                        packets: 1,
                        bytes,
                        first_seen: now,
                        last_seen: now,
                        rate_bps: 0.0,
                    },
                );
            }
        }
    }

    /// Look up a flow.
    pub fn get(&self, id: &FlowId) -> Option<&FlowState> {
        self.flows.get(id)
    }

    /// Iterate flows in deterministic (sorted) order.
    pub fn iter_sorted(&self) -> Vec<(&FlowId, &FlowState)> {
        let mut entries: Vec<_> = self.flows.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        entries
    }

    /// Evaporate idle entries. The essence of soft state: nothing
    /// refreshes, nothing stays.
    pub fn expire_idle(&mut self, now: Instant) {
        let timeout = self.idle_timeout;
        let before = self.flows.len();
        self.flows
            .retain(|_, state| now.duration_since(state.last_seen) < timeout);
        self.expired += (before - self.flows.len()) as u64;
    }

    /// Lose everything (gateway crash). The paper's point: this is
    /// *survivable* — the table rebuilds from the traffic itself.
    pub fn lose(&mut self) {
        self.flows.clear();
        self.losses += 1;
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_ip::build_ipv4;
    use catenet_wire::{Ipv4Repr, Tos, UdpRepr};

    fn udp_datagram(src_port: u16, dst_port: u16, len: usize) -> Vec<u8> {
        let udp_repr = UdpRepr {
            src_port,
            dst_port,
            payload_len: len,
        };
        let mut udp_buf = vec![0u8; udp_repr.buffer_len()];
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 9, 0, 1);
        {
            let mut udp = UdpPacket::new_unchecked(&mut udp_buf[..]);
            udp_repr.emit(&mut udp);
            udp.fill_checksum(src, dst);
        }
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: udp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            1,
            false,
            &udp_buf,
        )
    }

    #[test]
    fn flow_id_extraction() {
        let dgram = udp_datagram(5000, 6000, 100);
        let id = FlowId::of_datagram(&dgram).unwrap();
        assert_eq!(id.src_port, 5000);
        assert_eq!(id.dst_port, 6000);
        assert_eq!(id.protocol, 17);
        assert_eq!(id.src_addr, Ipv4Address::new(10, 0, 0, 1));
    }

    #[test]
    fn observe_accumulates() {
        let mut table = FlowTable::new();
        let dgram = udp_datagram(5000, 6000, 100);
        for i in 0..10 {
            table.observe(&dgram, Instant::from_millis(i * 10));
        }
        assert_eq!(table.len(), 1);
        let id = FlowId::of_datagram(&dgram).unwrap();
        let state = table.get(&id).unwrap();
        assert_eq!(state.packets, 10);
        assert_eq!(state.bytes, 10 * dgram.len() as u64);
        assert_eq!(state.first_seen, Instant::ZERO);
        assert_eq!(state.last_seen, Instant::from_millis(90));
    }

    #[test]
    fn rate_estimate_converges() {
        let mut table = FlowTable::with_params(Duration::from_secs(30), Duration::from_secs(1));
        let dgram = udp_datagram(5000, 6000, 972); // 1000-byte datagram
        // 1000 bytes every 10 ms = 100 kB/s.
        for i in 0..500 {
            table.observe(&dgram, Instant::from_millis(i * 10));
        }
        let id = FlowId::of_datagram(&dgram).unwrap();
        let state = table.get(&id).unwrap();
        assert!(
            state.rate_within(100_000.0, 0.1),
            "rate estimate {} not within 10% of 100 kB/s",
            state.rate_bps
        );
    }

    #[test]
    fn distinct_flows_tracked_separately() {
        let mut table = FlowTable::new();
        table.observe(&udp_datagram(1, 2, 10), Instant::ZERO);
        table.observe(&udp_datagram(3, 4, 10), Instant::ZERO);
        assert_eq!(table.len(), 2);
        let sorted = table.iter_sorted();
        assert!(sorted[0].0 < sorted[1].0);
    }

    #[test]
    fn idle_entries_evaporate() {
        let mut table = FlowTable::with_params(Duration::from_secs(5), Duration::from_secs(1));
        table.observe(&udp_datagram(1, 2, 10), Instant::ZERO);
        table.observe(&udp_datagram(3, 4, 10), Instant::from_secs(4));
        table.expire_idle(Instant::from_secs(6));
        assert_eq!(table.len(), 1, "only the idle flow evaporated");
        assert_eq!(table.expired, 1);
    }

    #[test]
    fn lose_clears_but_rebuilds() {
        let mut table = FlowTable::new();
        let dgram = udp_datagram(5000, 6000, 100);
        table.observe(&dgram, Instant::ZERO);
        table.lose();
        assert!(table.is_empty());
        assert_eq!(table.losses, 1);
        // Traffic keeps flowing: the table rebuilds without help.
        table.observe(&dgram, Instant::from_millis(10));
        assert_eq!(table.len(), 1);
        let id = FlowId::of_datagram(&dgram).unwrap();
        assert_eq!(table.get(&id).unwrap().packets, 1);
    }

    #[test]
    fn garbage_input_ignored() {
        let mut table = FlowTable::new();
        table.observe(&[0u8; 10], Instant::ZERO);
        assert!(table.is_empty());
    }
}
