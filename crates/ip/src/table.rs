//! Longest-prefix-match routing tables.
//!
//! A gateway's routing table is the *only* state it holds — and that state
//! describes the topology, not any conversation. That is the fate-sharing
//! design: the table can be rebuilt from scratch after a crash (by the
//! routing protocol) without any end-to-end connection noticing more than
//! a pause. The table is generic over its next-hop type `M` so the same
//! structure backs static host routes and the distance-vector protocol's
//! metric-bearing entries.

use catenet_wire::{Ipv4Address, Ipv4Cidr};

/// A routing table mapping CIDR prefixes to values of type `M`.
#[derive(Debug, Clone)]
pub struct RoutingTable<M> {
    /// Entries sorted by descending prefix length, so the first match in
    /// iteration order is the longest match.
    entries: Vec<(Ipv4Cidr, M)>,
}

impl<M> Default for RoutingTable<M> {
    fn default() -> Self {
        RoutingTable {
            entries: Vec::new(),
        }
    }
}

impl<M> RoutingTable<M> {
    /// An empty table.
    pub fn new() -> RoutingTable<M> {
        Self::default()
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace the route for exactly `prefix`.
    /// Returns the previous value if one was replaced.
    pub fn insert(&mut self, prefix: Ipv4Cidr, value: M) -> Option<M> {
        let prefix = prefix.network();
        match self
            .entries
            .iter_mut()
            .find(|(existing, _)| *existing == prefix)
        {
            Some((_, slot)) => Some(core::mem::replace(slot, value)),
            None => {
                let pos = self
                    .entries
                    .partition_point(|(existing, _)| existing.prefix_len() >= prefix.prefix_len());
                self.entries.insert(pos, (prefix, value));
                None
            }
        }
    }

    /// Remove the route for exactly `prefix`, returning its value.
    pub fn remove(&mut self, prefix: &Ipv4Cidr) -> Option<M> {
        let prefix = prefix.network();
        let pos = self
            .entries
            .iter()
            .position(|(existing, _)| *existing == prefix)?;
        Some(self.entries.remove(pos).1)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, addr: Ipv4Address) -> Option<&M> {
        self.entries
            .iter()
            .find(|(prefix, _)| prefix.contains(addr))
            .map(|(_, value)| value)
    }

    /// Longest-prefix-match lookup returning the matched prefix too.
    pub fn lookup_entry(&self, addr: Ipv4Address) -> Option<(&Ipv4Cidr, &M)> {
        self.entries
            .iter()
            .find(|(prefix, _)| prefix.contains(addr))
            .map(|(prefix, value)| (prefix, value))
    }

    /// The value stored for exactly `prefix`, if any.
    pub fn get(&self, prefix: &Ipv4Cidr) -> Option<&M> {
        let prefix = prefix.network();
        self.entries
            .iter()
            .find(|(existing, _)| *existing == prefix)
            .map(|(_, value)| value)
    }

    /// Mutable access to the value stored for exactly `prefix`.
    pub fn get_mut(&mut self, prefix: &Ipv4Cidr) -> Option<&mut M> {
        let prefix = prefix.network();
        self.entries
            .iter_mut()
            .find(|(existing, _)| *existing == prefix)
            .map(|(_, value)| value)
    }

    /// Iterate over `(prefix, value)` pairs, longest prefixes first.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Cidr, &M)> {
        self.entries.iter().map(|(prefix, value)| (prefix, value))
    }

    /// Iterate mutably over `(prefix, value)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Ipv4Cidr, &mut M)> {
        self.entries
            .iter_mut()
            .map(|(prefix, value)| (&*prefix, value))
    }

    /// Remove every entry for which `keep` returns false.
    pub fn retain(&mut self, mut keep: impl FnMut(&Ipv4Cidr, &mut M) -> bool) {
        self.entries.retain_mut(|(prefix, value)| keep(prefix, value));
    }

    /// Remove all routes.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut table = RoutingTable::new();
        table.insert(cidr("0.0.0.0/0"), "default");
        table.insert(cidr("10.0.0.0/8"), "ten");
        table.insert(cidr("10.1.0.0/16"), "ten-one");
        table.insert(cidr("10.1.2.0/24"), "ten-one-two");

        assert_eq!(table.lookup(addr("10.1.2.3")), Some(&"ten-one-two"));
        assert_eq!(table.lookup(addr("10.1.9.9")), Some(&"ten-one"));
        assert_eq!(table.lookup(addr("10.200.0.1")), Some(&"ten"));
        assert_eq!(table.lookup(addr("192.0.2.1")), Some(&"default"));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut forward = RoutingTable::new();
        forward.insert(cidr("10.0.0.0/8"), 8);
        forward.insert(cidr("10.1.0.0/16"), 16);
        let mut reverse = RoutingTable::new();
        reverse.insert(cidr("10.1.0.0/16"), 16);
        reverse.insert(cidr("10.0.0.0/8"), 8);
        for table in [&forward, &reverse] {
            assert_eq!(table.lookup(addr("10.1.0.1")), Some(&16));
            assert_eq!(table.lookup(addr("10.2.0.1")), Some(&8));
        }
    }

    #[test]
    fn no_match_without_default() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.0.0.0/8"), ());
        assert_eq!(table.lookup(addr("192.0.2.1")), None);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut table = RoutingTable::new();
        assert_eq!(table.insert(cidr("10.0.0.0/8"), 1), None);
        assert_eq!(table.insert(cidr("10.0.0.0/8"), 2), Some(1));
        assert_eq!(table.len(), 1);
        assert_eq!(table.lookup(addr("10.0.0.1")), Some(&2));
    }

    #[test]
    fn host_bits_normalized_on_insert() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.1.2.3/8"), "a");
        // Same network expressed differently replaces it.
        assert_eq!(table.insert(cidr("10.9.9.9/8"), "b"), Some("a"));
        assert_eq!(table.get(&cidr("10.0.0.0/8")), Some(&"b"));
    }

    #[test]
    fn remove_and_get() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.0.0.0/8"), 1);
        table.insert(cidr("172.16.0.0/12"), 2);
        assert_eq!(table.remove(&cidr("10.0.0.0/8")), Some(1));
        assert_eq!(table.remove(&cidr("10.0.0.0/8")), None);
        assert_eq!(table.lookup(addr("10.0.0.1")), None);
        assert_eq!(table.len(), 1);
        *table.get_mut(&cidr("172.16.0.0/12")).unwrap() = 9;
        assert_eq!(table.get(&cidr("172.16.0.0/12")), Some(&9));
    }

    #[test]
    fn lookup_entry_reports_prefix() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.1.0.0/16"), ());
        let (prefix, _) = table.lookup_entry(addr("10.1.5.5")).unwrap();
        assert_eq!(*prefix, cidr("10.1.0.0/16"));
    }

    #[test]
    fn retain_filters() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.0.0.0/8"), 1);
        table.insert(cidr("11.0.0.0/8"), 2);
        table.insert(cidr("12.0.0.0/8"), 3);
        table.retain(|_, metric| *metric % 2 == 1);
        assert_eq!(table.len(), 2);
        assert_eq!(table.lookup(addr("11.0.0.1")), None);
    }

    #[test]
    fn iter_longest_first() {
        let mut table = RoutingTable::new();
        table.insert(cidr("0.0.0.0/0"), 0);
        table.insert(cidr("10.1.2.0/24"), 24);
        table.insert(cidr("10.0.0.0/8"), 8);
        let lens: Vec<u8> = table.iter().map(|(p, _)| p.prefix_len()).collect();
        assert_eq!(lens, vec![24, 8, 0]);
    }

    #[test]
    fn host_route_matches_exactly() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.0.0.5/32"), "host");
        table.insert(cidr("10.0.0.0/24"), "net");
        assert_eq!(table.lookup(addr("10.0.0.5")), Some(&"host"));
        assert_eq!(table.lookup(addr("10.0.0.6")), Some(&"net"));
    }

    #[test]
    fn clear_empties() {
        let mut table = RoutingTable::new();
        table.insert(cidr("10.0.0.0/8"), ());
        table.clear();
        assert!(table.is_empty());
    }
}
