//! # catenet-ip
//!
//! The internet layer: the machinery that realizes Clark's "variety of
//! networks" goal. It contains
//!
//! - [`table::RoutingTable`] — longest-prefix-match route lookup, generic
//!   over the next-hop type so both hosts (static routes) and the
//!   distance-vector protocol (metric-bearing routes) reuse it;
//! - [`frag`] — IPv4 fragmentation and reassembly, the mechanism that
//!   lets a datagram sized for one network cross another with a smaller
//!   MTU;
//! - [`icmp`] — construction of ICMP error datagrams (destination
//!   unreachable, time exceeded, source quench) with the RFC 1122 rules
//!   about when *not* to send them;
//! - [`builder`] — convenience constructors for whole IPv4 datagrams.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod frag;
pub mod icmp;
pub mod table;

pub use builder::build_ipv4;
pub use frag::{fragment, FragError, Reassembler};
pub use table::RoutingTable;
