//! Construction of ICMP error datagrams, with the RFC 1122 suppression
//! rules that keep the error channel from amplifying failures:
//! never answer an ICMP error with another error, never answer a
//! non-initial fragment, never answer broadcast/multicast traffic.

use crate::builder::build_ipv4;
use catenet_wire::{
    Icmpv4Message, Icmpv4Packet, Icmpv4Repr, IpProtocol, Ipv4Address, Ipv4Packet, Ipv4Repr, Tos,
};

/// How many bytes of the offending datagram an error message quotes:
/// the IP header plus 8 bytes of upper-layer header (RFC 792).
pub const QUOTE_EXTRA: usize = 8;

/// Default TTL for generated ICMP messages.
pub const ICMP_TTL: u8 = 64;

/// Decide whether an ICMP error may be sent about `original`, and if so
/// build the complete IPv4 datagram carrying it, sourced from `replier`.
///
/// Returns `None` when the suppression rules forbid a reply.
pub fn icmp_error_for(
    original: &[u8],
    message: Icmpv4Message,
    replier: Ipv4Address,
) -> Option<Vec<u8>> {
    debug_assert!(message.is_error(), "not an error message");
    let packet = Ipv4Packet::new_checked(original).ok()?;

    // Rule: no errors about non-initial fragments.
    if packet.frag_offset() != 0 {
        return None;
    }
    // Rule: no errors about broadcast/multicast/unspecified traffic.
    let src = packet.src_addr();
    let dst = packet.dst_addr();
    if !src.is_unicast() || dst.is_broadcast() || dst.is_multicast() {
        return None;
    }
    // Rule: no errors about ICMP errors.
    if packet.protocol() == IpProtocol::Icmp {
        if let Ok(inner) = Icmpv4Packet::new_checked(packet.payload()) {
            let is_echo = matches!(inner.msg_type(), 0 | 8);
            if !is_echo {
                return None;
            }
        } else {
            return None;
        }
    }

    let header_len = usize::from(packet.header_len());
    let quote_len = (header_len + QUOTE_EXTRA).min(original.len());
    let icmp_repr = Icmpv4Repr {
        message,
        payload_len: quote_len,
    };
    let mut icmp_buf = vec![0u8; icmp_repr.buffer_len()];
    let mut icmp = Icmpv4Packet::new_unchecked(&mut icmp_buf[..]);
    icmp_repr.emit(&mut icmp);
    icmp.payload_mut().copy_from_slice(&original[..quote_len]);
    icmp.fill_checksum();

    Some(build_ipv4(
        &Ipv4Repr {
            src_addr: replier,
            dst_addr: src,
            protocol: IpProtocol::Icmp,
            payload_len: icmp_buf.len(),
            hop_limit: ICMP_TTL,
            tos: Tos::default(),
        },
        0,
        false,
        &icmp_buf,
    ))
}

/// Build an echo reply datagram answering `request_payload` (the ICMP
/// payload of an echo request), swapping the addresses.
pub fn echo_reply(
    request: &Ipv4Packet<&[u8]>,
    replier: Ipv4Address,
) -> Option<Vec<u8>> {
    let icmp = Icmpv4Packet::new_checked(request.payload()).ok()?;
    let repr = Icmpv4Repr::parse(&icmp).ok()?;
    let (ident, seq_no) = match repr.message {
        Icmpv4Message::EchoRequest { ident, seq_no } => (ident, seq_no),
        _ => return None,
    };
    let reply_repr = Icmpv4Repr {
        message: Icmpv4Message::EchoReply { ident, seq_no },
        payload_len: repr.payload_len,
    };
    let mut icmp_buf = vec![0u8; reply_repr.buffer_len()];
    let mut reply = Icmpv4Packet::new_unchecked(&mut icmp_buf[..]);
    reply_repr.emit(&mut reply);
    reply.payload_mut().copy_from_slice(icmp.payload());
    reply.fill_checksum();

    Some(build_ipv4(
        &Ipv4Repr {
            src_addr: replier,
            dst_addr: request.src_addr(),
            protocol: IpProtocol::Icmp,
            payload_len: icmp_buf.len(),
            hop_limit: ICMP_TTL,
            tos: Tos::default(),
        },
        0,
        false,
        &icmp_buf,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::{DstUnreachable, Ipv4Flags, TimeExceeded};

    fn udp_datagram(src: Ipv4Address, dst: Ipv4Address) -> Vec<u8> {
        build_ipv4(
            &Ipv4Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Udp,
                payload_len: 16,
                hop_limit: 1,
                tos: Tos::default(),
            },
            77,
            false,
            &[0xAB; 16],
        )
    }

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 9, 0, 1);
    const GW: Ipv4Address = Ipv4Address::new(10, 0, 0, 254);

    #[test]
    fn error_quotes_header_plus_eight() {
        let original = udp_datagram(SRC, DST);
        let error = icmp_error_for(
            &original,
            Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired),
            GW,
        )
        .unwrap();
        let packet = Ipv4Packet::new_checked(&error[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(packet.src_addr(), GW);
        assert_eq!(packet.dst_addr(), SRC);
        assert_eq!(packet.protocol(), IpProtocol::Icmp);
        let icmp = Icmpv4Packet::new_checked(packet.payload()).unwrap();
        assert!(icmp.verify_checksum());
        let repr = Icmpv4Repr::parse(&icmp).unwrap();
        assert_eq!(
            repr.message,
            Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired)
        );
        assert_eq!(repr.payload_len, 28); // 20-byte header + 8
        assert_eq!(&icmp.payload()[..20], &original[..20]);
    }

    #[test]
    fn quote_truncated_to_original_length() {
        // A 4-byte-payload datagram quotes only what exists.
        let original = build_ipv4(
            &Ipv4Repr {
                src_addr: SRC,
                dst_addr: DST,
                protocol: IpProtocol::Udp,
                payload_len: 4,
                hop_limit: 1,
                tos: Tos::default(),
            },
            1,
            false,
            &[1, 2, 3, 4],
        );
        let error = icmp_error_for(
            &original,
            Icmpv4Message::DstUnreachable(DstUnreachable::HostUnreachable),
            GW,
        )
        .unwrap();
        let packet = Ipv4Packet::new_checked(&error[..]).unwrap();
        let icmp = Icmpv4Packet::new_checked(packet.payload()).unwrap();
        assert_eq!(icmp.payload().len(), 24);
    }

    #[test]
    fn no_error_about_non_initial_fragment() {
        let mut original = udp_datagram(SRC, DST);
        {
            let mut packet = Ipv4Packet::new_unchecked(&mut original[..]);
            packet.set_flags_and_frag_offset(
                Ipv4Flags {
                    dont_frag: false,
                    more_frags: true,
                },
                8,
            );
            packet.fill_checksum();
        }
        assert!(icmp_error_for(
            &original,
            Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired),
            GW
        )
        .is_none());
    }

    #[test]
    fn no_error_about_broadcast_or_bad_source() {
        let broadcast = udp_datagram(SRC, Ipv4Address::BROADCAST);
        assert!(icmp_error_for(
            &broadcast,
            Icmpv4Message::DstUnreachable(DstUnreachable::PortUnreachable),
            GW
        )
        .is_none());
        let multicast = udp_datagram(SRC, Ipv4Address::new(224, 0, 0, 9));
        assert!(icmp_error_for(
            &multicast,
            Icmpv4Message::DstUnreachable(DstUnreachable::PortUnreachable),
            GW
        )
        .is_none());
        let from_nowhere = udp_datagram(Ipv4Address::UNSPECIFIED, DST);
        assert!(icmp_error_for(
            &from_nowhere,
            Icmpv4Message::DstUnreachable(DstUnreachable::PortUnreachable),
            GW
        )
        .is_none());
    }

    #[test]
    fn no_error_about_icmp_error() {
        let original = udp_datagram(SRC, DST);
        let first_error = icmp_error_for(
            &original,
            Icmpv4Message::TimeExceeded(TimeExceeded::TtlExpired),
            GW,
        )
        .unwrap();
        // A gateway trying to report a problem with the error itself must
        // stay silent.
        assert!(icmp_error_for(
            &first_error,
            Icmpv4Message::DstUnreachable(DstUnreachable::HostUnreachable),
            GW
        )
        .is_none());
    }

    #[test]
    fn error_about_echo_request_is_allowed() {
        // Echo requests are ICMP but not errors; reporting on them is legal
        // (this is what makes `ping` diagnose unreachable hosts).
        let echo_repr = Icmpv4Repr {
            message: Icmpv4Message::EchoRequest { ident: 1, seq_no: 1 },
            payload_len: 8,
        };
        let mut icmp_buf = vec![0u8; echo_repr.buffer_len()];
        let mut icmp = Icmpv4Packet::new_unchecked(&mut icmp_buf[..]);
        echo_repr.emit(&mut icmp);
        icmp.payload_mut().copy_from_slice(b"pingdata");
        icmp.fill_checksum();
        let original = build_ipv4(
            &Ipv4Repr {
                src_addr: SRC,
                dst_addr: DST,
                protocol: IpProtocol::Icmp,
                payload_len: icmp_buf.len(),
                hop_limit: 1,
                tos: Tos::default(),
            },
            3,
            false,
            &icmp_buf,
        );
        assert!(icmp_error_for(
            &original,
            Icmpv4Message::DstUnreachable(DstUnreachable::HostUnreachable),
            GW
        )
        .is_some());
    }

    #[test]
    fn echo_reply_swaps_addresses_and_preserves_payload() {
        let echo_repr = Icmpv4Repr {
            message: Icmpv4Message::EchoRequest {
                ident: 42,
                seq_no: 3,
            },
            payload_len: 12,
        };
        let mut icmp_buf = vec![0u8; echo_repr.buffer_len()];
        let mut icmp = Icmpv4Packet::new_unchecked(&mut icmp_buf[..]);
        echo_repr.emit(&mut icmp);
        icmp.payload_mut().copy_from_slice(b"echo-payload");
        icmp.fill_checksum();
        let request = build_ipv4(
            &Ipv4Repr {
                src_addr: SRC,
                dst_addr: DST,
                protocol: IpProtocol::Icmp,
                payload_len: icmp_buf.len(),
                hop_limit: 64,
                tos: Tos::default(),
            },
            5,
            false,
            &icmp_buf,
        );
        let request_packet = Ipv4Packet::new_checked(&request[..]).unwrap();
        let reply = echo_reply(&request_packet, DST).unwrap();
        let reply_packet = Ipv4Packet::new_checked(&reply[..]).unwrap();
        assert_eq!(reply_packet.src_addr(), DST);
        assert_eq!(reply_packet.dst_addr(), SRC);
        let reply_icmp = Icmpv4Packet::new_checked(reply_packet.payload()).unwrap();
        let repr = Icmpv4Repr::parse(&reply_icmp).unwrap();
        assert_eq!(
            repr.message,
            Icmpv4Message::EchoReply {
                ident: 42,
                seq_no: 3
            }
        );
        assert_eq!(reply_icmp.payload(), b"echo-payload");
    }

    #[test]
    fn echo_reply_ignores_non_requests() {
        let original = udp_datagram(SRC, DST);
        let packet = Ipv4Packet::new_checked(&original[..]).unwrap();
        assert!(echo_reply(&packet, DST).is_none());
    }
}
