//! Convenience constructors for whole IPv4 datagrams.

use catenet_wire::{Ipv4Flags, Ipv4Packet, Ipv4Repr};

/// Build a complete IPv4 datagram (header + payload) as an owned buffer.
///
/// `ident` seeds the identification field (needed if the datagram may be
/// fragmented downstream); `dont_frag` sets the DF flag.
pub fn build_ipv4(repr: &Ipv4Repr, ident: u16, dont_frag: bool, payload: &[u8]) -> Vec<u8> {
    assert_eq!(repr.payload_len, payload.len(), "repr/payload length mismatch");
    let mut buffer = vec![0u8; repr.total_len()];
    let mut packet = Ipv4Packet::new_unchecked(&mut buffer[..]);
    repr.emit(&mut packet);
    packet.set_ident(ident);
    packet.set_flags_and_frag_offset(
        Ipv4Flags {
            dont_frag,
            more_frags: false,
        },
        0,
    );
    packet.payload_mut().copy_from_slice(payload);
    packet.fill_checksum();
    buffer
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::{IpProtocol, Ipv4Address, Tos};

    fn repr(payload_len: usize) -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len,
            hop_limit: 32,
            tos: Tos::default(),
        }
    }

    #[test]
    fn builds_valid_datagram() {
        let buffer = build_ipv4(&repr(5), 42, false, b"hello");
        let packet = Ipv4Packet::new_checked(&buffer[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(packet.ident(), 42);
        assert_eq!(packet.payload(), b"hello");
        assert!(!packet.flags().dont_frag);
        assert!(!packet.is_fragment());
    }

    #[test]
    fn df_flag_set_when_requested() {
        let buffer = build_ipv4(&repr(0), 1, true, b"");
        let packet = Ipv4Packet::new_checked(&buffer[..]).unwrap();
        assert!(packet.flags().dont_frag);
        assert!(packet.verify_checksum());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = build_ipv4(&repr(3), 0, false, b"four");
    }
}
