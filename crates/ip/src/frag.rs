//! IPv4 fragmentation and reassembly (RFC 791 §2.3, §3.2).
//!
//! Fragmentation is the concession the internet layer makes to the
//! "variety of networks" goal: rather than require every network to carry
//! the largest datagram any host might send, a gateway may split a
//! datagram to fit the next network's MTU, and *only the destination host*
//! reassembles — gateways never hold fragments, keeping them stateless
//! (the survivability goal again).
//!
//! The cost the paper acknowledges (§7, cost-effectiveness): losing any
//! one fragment loses the whole datagram, so fragmented traffic amplifies
//! loss. Experiment E3 measures exactly this.

use catenet_sim::{Duration, Instant};
use catenet_wire::{Ipv4Flags, Ipv4FragKey, Ipv4Packet, IPV4_HEADER_LEN};
use std::collections::HashMap;

/// Errors from fragmentation or reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragError {
    /// The datagram needs fragmenting but carries the Don't-Fragment flag.
    /// A gateway answers this with ICMP "fragmentation required".
    DontFragment,
    /// The MTU cannot fit even a single 8-byte payload slice.
    MtuTooSmall,
    /// The input was not a valid IPv4 packet.
    Malformed,
    /// Fragments describe a datagram larger than the reassembler accepts.
    TooLarge,
    /// Too many concurrent reassemblies in progress; fragment discarded.
    /// (No longer returned by [`Reassembler::push`], which now evicts
    /// the oldest reassembly instead of shedding the newest — kept for
    /// callers that implement a shedding policy themselves.)
    Overloaded,
    /// Two fragments disagree about overlapping bytes (suspicious; the
    /// whole reassembly is abandoned, the conservative 1988 response).
    InconsistentOverlap,
}

impl core::fmt::Display for FragError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FragError::DontFragment => write!(f, "fragmentation needed but DF set"),
            FragError::MtuTooSmall => write!(f, "MTU too small to fragment into"),
            FragError::Malformed => write!(f, "malformed fragment"),
            FragError::TooLarge => write!(f, "reassembled datagram too large"),
            FragError::Overloaded => write!(f, "too many concurrent reassemblies"),
            FragError::InconsistentOverlap => write!(f, "inconsistent fragment overlap"),
        }
    }
}

impl std::error::Error for FragError {}

/// Split `datagram` (a complete, checksummed IPv4 packet) into fragments
/// that each fit in `mtu` bytes. Returns the input unchanged (as a single
/// element) if it already fits.
pub fn fragment(datagram: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>, FragError> {
    if datagram.len() <= mtu {
        return Ok(vec![datagram.to_vec()]);
    }
    let packet = Ipv4Packet::new_checked(datagram).map_err(|_| FragError::Malformed)?;
    if packet.flags().dont_frag {
        return Err(FragError::DontFragment);
    }
    // Each fragment's payload must be a multiple of 8 (except the last).
    let slice = (mtu.saturating_sub(IPV4_HEADER_LEN)) & !7;
    if slice == 0 {
        return Err(FragError::MtuTooSmall);
    }

    let payload = packet.payload();
    let base_offset = packet.frag_offset(); // refragmenting a fragment is legal
    let original_more = packet.flags().more_frags;
    let mut fragments = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = (offset + slice).min(payload.len());
        let chunk = &payload[offset..end];
        let is_last_piece = end == payload.len();
        let mut buffer = vec![0u8; IPV4_HEADER_LEN + chunk.len()];
        buffer[..IPV4_HEADER_LEN].copy_from_slice(&datagram[..IPV4_HEADER_LEN]);
        let mut frag = Ipv4Packet::new_unchecked(&mut buffer[..]);
        frag.set_version_and_header_len(); // normalize: we copied 20 bytes only
        frag.set_total_len((IPV4_HEADER_LEN + chunk.len()) as u16);
        frag.set_flags_and_frag_offset(
            Ipv4Flags {
                dont_frag: false,
                more_frags: !is_last_piece || original_more,
            },
            base_offset + offset as u16,
        );
        frag.rest_mut().copy_from_slice(chunk);
        frag.fill_checksum();
        fragments.push(buffer);
        offset = end;
    }
    Ok(fragments)
}

#[derive(Debug)]
struct Partial {
    /// Header copied from the offset-zero fragment (once seen).
    header: Option<[u8; IPV4_HEADER_LEN]>,
    /// Reassembly buffer for the upper-layer payload.
    data: Vec<u8>,
    /// Received byte ranges of the payload, kept sorted and coalesced.
    ranges: Vec<(usize, usize)>,
    /// Total payload length, known once the MF=0 fragment arrives.
    total_len: Option<usize>,
    /// When this reassembly gives up.
    deadline: Instant,
}

impl Partial {
    fn new(deadline: Instant) -> Partial {
        Partial {
            header: None,
            data: Vec::new(),
            ranges: Vec::new(),
            total_len: None,
            deadline,
        }
    }

    fn insert(&mut self, start: usize, bytes: &[u8]) -> Result<(), FragError> {
        let end = start + bytes.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        // Verify consistency with already-received overlapping ranges.
        for &(r0, r1) in &self.ranges {
            let lo = start.max(r0);
            let hi = end.min(r1);
            if lo < hi && self.data[lo..hi] != bytes[lo - start..hi - start] {
                return Err(FragError::InconsistentOverlap);
            }
        }
        self.data[start..end].copy_from_slice(bytes);
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
        Ok(())
    }

    fn is_complete(&self) -> bool {
        match (self.total_len, self.header.as_ref(), self.ranges.first()) {
            (Some(total), Some(_), Some(&(0, end))) => end >= total && self.ranges.len() == 1,
            _ => false,
        }
    }
}

/// The destination host's fragment reassembler.
#[derive(Debug)]
pub struct Reassembler {
    partials: HashMap<Ipv4FragKey, Partial>,
    timeout: Duration,
    max_datagram: usize,
    max_concurrent: usize,
    /// Datagrams successfully reassembled.
    pub completed: u64,
    /// Reassemblies abandoned on timeout.
    pub timed_out: u64,
    /// Reassemblies evicted to make room for a newer one.
    pub evicted: u64,
}

impl Reassembler {
    /// The classic 15-second reassembly timeout (RFC 791's suggested TTL-
    /// derived upper bound).
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(15);
    /// The largest datagram this reassembler will rebuild (full IPv4 max).
    pub const DEFAULT_MAX_DATAGRAM: usize = 65_535;

    /// A reassembler with default limits.
    pub fn new() -> Reassembler {
        Reassembler::with_limits(Self::DEFAULT_TIMEOUT, Self::DEFAULT_MAX_DATAGRAM, 64)
    }

    /// A reassembler with explicit limits.
    pub fn with_limits(timeout: Duration, max_datagram: usize, max_concurrent: usize) -> Reassembler {
        Reassembler {
            partials: HashMap::new(),
            timeout,
            max_datagram,
            max_concurrent,
            completed: 0,
            timed_out: 0,
            evicted: 0,
        }
    }

    /// Number of reassemblies in progress.
    pub fn in_progress(&self) -> usize {
        self.partials.len()
    }

    /// Accept one fragment. Returns `Ok(Some(datagram))` when the arrival
    /// completes a datagram (returned as a full IPv4 packet buffer with
    /// cleared fragmentation fields), `Ok(None)` while holes remain.
    pub fn push(&mut self, fragment: &[u8], now: Instant) -> Result<Option<Vec<u8>>, FragError> {
        let packet = Ipv4Packet::new_checked(fragment).map_err(|_| FragError::Malformed)?;
        debug_assert!(packet.is_fragment(), "non-fragment fed to reassembler");

        let key = packet.key();
        let offset = usize::from(packet.frag_offset());
        let payload = packet.payload();
        let end = offset + payload.len();
        if end > self.max_datagram {
            self.partials.remove(&key);
            return Err(FragError::TooLarge);
        }
        // Bounded buffer: a new reassembly arriving at capacity evicts
        // the *oldest* partial (earliest deadline; deterministic key
        // order breaks ties). Graceful degradation: under a fragment
        // flood the newest traffic — most likely to still complete —
        // keeps working, and the stale half-datagrams that were probably
        // never finishing are the ones that pay.
        if !self.partials.contains_key(&key) && self.partials.len() >= self.max_concurrent {
            if let Some(victim) = self
                .partials
                .iter()
                .min_by_key(|(k, p)| (p.deadline, k.src_addr, k.dst_addr, k.ident))
                .map(|(k, _)| *k)
            {
                self.partials.remove(&victim);
                self.evicted += 1;
            }
        }

        let deadline = now + self.timeout;
        let partial = self
            .partials
            .entry(key)
            .or_insert_with(|| Partial::new(deadline));

        if offset == 0 {
            let mut header = [0u8; IPV4_HEADER_LEN];
            header.copy_from_slice(&fragment[..IPV4_HEADER_LEN]);
            partial.header = Some(header);
        }
        if !packet.flags().more_frags {
            partial.total_len = Some(end);
        }
        if let Err(e) = partial.insert(offset, payload) {
            self.partials.remove(&key);
            return Err(e);
        }

        if !self.partials[&key].is_complete() {
            return Ok(None);
        }

        let partial = self.partials.remove(&key).expect("present");
        let total = partial.total_len.expect("complete implies total");
        let header = partial.header.expect("complete implies header");
        let mut buffer = vec![0u8; IPV4_HEADER_LEN + total];
        buffer[..IPV4_HEADER_LEN].copy_from_slice(&header);
        buffer[IPV4_HEADER_LEN..].copy_from_slice(&partial.data[..total]);
        let mut whole = Ipv4Packet::new_unchecked(&mut buffer[..]);
        whole.set_total_len((IPV4_HEADER_LEN + total) as u16);
        whole.set_flags_and_frag_offset(Ipv4Flags::default(), 0);
        whole.fill_checksum();
        self.completed += 1;
        Ok(Some(buffer))
    }

    /// Abandon reassemblies whose deadline has passed. Returns the keys of
    /// abandoned datagrams paired with whether their first fragment had
    /// arrived (RFC 1122: send ICMP time-exceeded only if it had).
    pub fn expire(&mut self, now: Instant) -> Vec<(Ipv4FragKey, bool)> {
        let mut expired = Vec::new();
        self.partials.retain(|key, partial| {
            if partial.deadline <= now {
                expired.push((*key, partial.header.is_some()));
                false
            } else {
                true
            }
        });
        self.timed_out += expired.len() as u64;
        // Deterministic order for the simulator's sake.
        expired.sort_by_key(|(key, _)| (key.src_addr, key.dst_addr, key.ident));
        expired
    }
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_ipv4;
    use catenet_wire::{IpProtocol, Ipv4Address, Ipv4Repr, Tos};

    fn datagram(len: usize, ident: u16, dont_frag: bool) -> Vec<u8> {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        build_ipv4(
            &Ipv4Repr {
                src_addr: Ipv4Address::new(10, 0, 0, 1),
                dst_addr: Ipv4Address::new(10, 0, 0, 2),
                protocol: IpProtocol::Udp,
                payload_len: len,
                hop_limit: 32,
                tos: Tos::default(),
            },
            ident,
            dont_frag,
            &payload,
        )
    }

    #[test]
    fn small_datagram_passes_through() {
        let dgram = datagram(100, 1, false);
        let frags = fragment(&dgram, 576).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], dgram);
    }

    #[test]
    fn fragments_fit_mtu_and_reassemble() {
        let dgram = datagram(4000, 7, false);
        let frags = fragment(&dgram, 576).unwrap();
        assert!(frags.len() > 1);
        for frag in &frags {
            assert!(frag.len() <= 576);
            let packet = Ipv4Packet::new_checked(&frag[..]).unwrap();
            assert!(packet.verify_checksum());
            assert!(packet.is_fragment());
            assert_eq!(packet.ident(), 7);
        }
        // Last fragment clears MF; all others set it.
        let mf: Vec<bool> = frags
            .iter()
            .map(|f| Ipv4Packet::new_unchecked(&f[..]).flags().more_frags)
            .collect();
        assert!(mf[..mf.len() - 1].iter().all(|&b| b));
        assert!(!mf[mf.len() - 1]);

        let mut reasm = Reassembler::new();
        let mut result = None;
        for frag in &frags {
            result = reasm.push(frag, Instant::ZERO).unwrap();
        }
        let whole = result.expect("complete after last fragment");
        assert_eq!(whole, dgram);
        assert_eq!(reasm.completed, 1);
    }

    #[test]
    fn reassembly_handles_any_arrival_order() {
        let dgram = datagram(3000, 9, false);
        let frags = fragment(&dgram, 296).unwrap();
        assert!(frags.len() >= 10);
        // Reverse order.
        let mut reasm = Reassembler::new();
        let mut result = None;
        for frag in frags.iter().rev() {
            assert!(result.is_none());
            result = reasm.push(frag, Instant::ZERO).unwrap();
        }
        assert_eq!(result.unwrap(), dgram);
        // Interleaved order.
        let mut reasm = Reassembler::new();
        let mut order: Vec<usize> = (0..frags.len()).collect();
        order.rotate_left(frags.len() / 2);
        let mut result = None;
        for &i in &order {
            result = reasm.push(&frags[i], Instant::ZERO).unwrap();
        }
        assert_eq!(result.unwrap(), dgram);
    }

    #[test]
    fn duplicate_fragments_harmless() {
        let dgram = datagram(1000, 3, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut reasm = Reassembler::new();
        assert!(reasm.push(&frags[0], Instant::ZERO).unwrap().is_none());
        assert!(reasm.push(&frags[0], Instant::ZERO).unwrap().is_none());
        let whole = reasm.push(&frags[1], Instant::ZERO).unwrap().unwrap();
        assert_eq!(whole, dgram);
    }

    #[test]
    fn df_refuses_fragmentation() {
        let dgram = datagram(4000, 1, true);
        assert_eq!(fragment(&dgram, 576).unwrap_err(), FragError::DontFragment);
    }

    #[test]
    fn df_datagram_that_fits_is_fine() {
        let dgram = datagram(100, 1, true);
        assert_eq!(fragment(&dgram, 576).unwrap().len(), 1);
    }

    #[test]
    fn hopeless_mtu_rejected() {
        let dgram = datagram(4000, 1, false);
        assert_eq!(fragment(&dgram, 24).unwrap_err(), FragError::MtuTooSmall);
    }

    #[test]
    fn refragmenting_a_fragment_preserves_offsets() {
        let dgram = datagram(4000, 11, false);
        let first_pass = fragment(&dgram, 1500).unwrap();
        // Take a middle fragment across a smaller-MTU network.
        let second_pass = fragment(&first_pass[1], 296).unwrap();
        assert!(second_pass.len() > 1);
        // All pieces from both passes reassemble to the original.
        let mut reasm = Reassembler::new();
        let mut result = None;
        for frag in first_pass
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, f)| f)
            .chain(second_pass.iter())
        {
            result = reasm.push(frag, Instant::ZERO).unwrap();
        }
        assert_eq!(result.unwrap(), dgram);
    }

    #[test]
    fn missing_fragment_never_completes() {
        let dgram = datagram(2000, 5, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut reasm = Reassembler::new();
        for frag in frags.iter().skip(1) {
            assert!(reasm.push(frag, Instant::ZERO).unwrap().is_none());
        }
        assert_eq!(reasm.in_progress(), 1);
    }

    #[test]
    fn timeout_expires_partial_reassembly() {
        let dgram = datagram(2000, 5, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut reasm = Reassembler::new();
        reasm.push(&frags[0], Instant::ZERO).unwrap();
        assert!(reasm.expire(Instant::from_secs(10)).is_empty());
        let expired = reasm.expire(Instant::from_secs(16));
        assert_eq!(expired.len(), 1);
        assert!(expired[0].1, "first fragment had arrived");
        assert_eq!(reasm.in_progress(), 0);
        assert_eq!(reasm.timed_out, 1);
    }

    #[test]
    fn expire_reports_missing_first_fragment() {
        let dgram = datagram(2000, 5, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut reasm = Reassembler::new();
        reasm.push(&frags[1], Instant::ZERO).unwrap();
        let expired = reasm.expire(Instant::from_secs(20));
        assert_eq!(expired.len(), 1);
        assert!(!expired[0].1);
    }

    #[test]
    fn distinct_idents_reassemble_independently() {
        let a = datagram(1000, 100, false);
        let b = datagram(1000, 101, false);
        let frags_a = fragment(&a, 576).unwrap();
        let frags_b = fragment(&b, 576).unwrap();
        let mut reasm = Reassembler::new();
        assert!(reasm.push(&frags_a[0], Instant::ZERO).unwrap().is_none());
        assert!(reasm.push(&frags_b[0], Instant::ZERO).unwrap().is_none());
        assert_eq!(reasm.in_progress(), 2);
        let whole_b = reasm.push(&frags_b[1], Instant::ZERO).unwrap().unwrap();
        assert_eq!(whole_b, b);
        let whole_a = reasm.push(&frags_a[1], Instant::ZERO).unwrap().unwrap();
        assert_eq!(whole_a, a);
    }

    #[test]
    fn overload_evicts_oldest_reassembly() {
        let mut reasm = Reassembler::with_limits(Duration::from_secs(15), 65_535, 2);
        // Two partials, started at distinct times: ident 0 is oldest.
        for ident in 0..2 {
            let d = datagram(1000, ident, false);
            let frags = fragment(&d, 576).unwrap();
            reasm
                .push(&frags[0], Instant::from_secs(u64::from(ident)))
                .unwrap();
        }
        // A third reassembly arrives at capacity: the oldest is evicted,
        // the newcomer is accepted.
        let d = datagram(1000, 99, false);
        let frags = fragment(&d, 576).unwrap();
        assert!(reasm.push(&frags[0], Instant::from_secs(5)).unwrap().is_none());
        assert_eq!(reasm.in_progress(), 2, "still at the cap");
        assert_eq!(reasm.evicted, 1);
        // The evicted datagram (ident 0) can no longer complete from its
        // second fragment alone…
        let d0 = datagram(1000, 0, false);
        let frags0 = fragment(&d0, 576).unwrap();
        // (this re-admits ident 0 as a *new* partial, evicting ident 1)
        assert!(reasm.push(&frags0[1], Instant::from_secs(6)).unwrap().is_none());
        assert_eq!(reasm.evicted, 2);
        // …while the newcomer completes fine.
        assert!(reasm.push(&frags[1], Instant::from_secs(6)).unwrap().is_some());
        assert_eq!(reasm.completed, 1);
    }

    #[test]
    fn eviction_never_exceeds_cap_under_flood() {
        let cap = 8;
        let mut reasm = Reassembler::with_limits(Duration::from_secs(15), 65_535, cap);
        for ident in 0..200u16 {
            let d = datagram(1000, ident, false);
            let frags = fragment(&d, 576).unwrap();
            // Only first fragments: nothing ever completes.
            reasm
                .push(&frags[0], Instant::from_millis(u64::from(ident)))
                .unwrap();
            assert!(reasm.in_progress() <= cap, "cap held at ident {ident}");
        }
        assert_eq!(reasm.in_progress(), cap);
        assert_eq!(reasm.evicted, 200 - cap as u64);
        // The survivors are exactly the newest `cap` reassemblies: each
        // still completes when its missing fragment arrives.
        for ident in (200 - cap as u16)..200 {
            let d = datagram(1000, ident, false);
            let frags = fragment(&d, 576).unwrap();
            let whole = reasm
                .push(&frags[1], Instant::from_secs(1))
                .unwrap()
                .expect("survivor completes");
            assert_eq!(whole, d);
        }
        assert_eq!(reasm.in_progress(), 0);
    }

    #[test]
    fn duplicate_fragment_of_existing_partial_never_evicts() {
        let mut reasm = Reassembler::with_limits(Duration::from_secs(15), 65_535, 2);
        let a = datagram(1000, 1, false);
        let b = datagram(1000, 2, false);
        let frags_a = fragment(&a, 576).unwrap();
        let frags_b = fragment(&b, 576).unwrap();
        reasm.push(&frags_a[0], Instant::ZERO).unwrap();
        reasm.push(&frags_b[0], Instant::from_secs(1)).unwrap();
        // A duplicate of an in-progress reassembly is not "new": at the
        // cap it must not evict anything.
        reasm.push(&frags_a[0], Instant::from_secs(2)).unwrap();
        assert_eq!(reasm.evicted, 0);
        assert!(reasm.push(&frags_a[1], Instant::from_secs(2)).unwrap().is_some());
        assert!(reasm.push(&frags_b[1], Instant::from_secs(2)).unwrap().is_some());
    }

    #[test]
    fn timeout_eviction_interacts_with_cap() {
        // Partials that expire free room without counting as evictions.
        let mut reasm = Reassembler::with_limits(Duration::from_secs(15), 65_535, 4);
        for ident in 0..4u16 {
            let d = datagram(1000, ident, false);
            let frags = fragment(&d, 576).unwrap();
            reasm.push(&frags[0], Instant::ZERO).unwrap();
        }
        assert_eq!(reasm.in_progress(), 4);
        let expired = reasm.expire(Instant::from_secs(20));
        assert_eq!(expired.len(), 4);
        assert_eq!(reasm.timed_out, 4);
        assert_eq!(reasm.evicted, 0);
        // Room again: a new reassembly starts and completes cleanly.
        let d = datagram(1000, 50, false);
        let frags = fragment(&d, 576).unwrap();
        reasm.push(&frags[0], Instant::from_secs(21)).unwrap();
        assert!(reasm.push(&frags[1], Instant::from_secs(21)).unwrap().is_some());
        assert_eq!(reasm.evicted, 0);
    }

    #[test]
    fn inconsistent_overlap_abandons_reassembly() {
        let dgram = datagram(1200, 13, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut reasm = Reassembler::new();
        reasm.push(&frags[0], Instant::ZERO).unwrap();
        // Re-send fragment 0 with altered payload bytes.
        let mut evil = frags[0].clone();
        let len = evil.len();
        evil[len - 1] ^= 0xff;
        let mut packet = Ipv4Packet::new_unchecked(&mut evil[..]);
        packet.fill_checksum();
        assert_eq!(
            reasm.push(&evil, Instant::ZERO).unwrap_err(),
            FragError::InconsistentOverlap
        );
        assert_eq!(reasm.in_progress(), 0);
    }

    #[test]
    fn oversized_reassembly_rejected() {
        let mut reasm = Reassembler::with_limits(Duration::from_secs(15), 2048, 16);
        let dgram = datagram(4000, 21, false);
        let frags = fragment(&dgram, 576).unwrap();
        let mut saw_too_large = false;
        for frag in &frags {
            match reasm.push(frag, Instant::ZERO) {
                Err(FragError::TooLarge) => {
                    saw_too_large = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_too_large);
    }

    #[test]
    fn fragment_count_matches_arithmetic() {
        // 4000-byte payload over MTU 576: slice = (576-20) & !7 = 552.
        let dgram = datagram(4000, 2, false);
        let frags = fragment(&dgram, 576).unwrap();
        assert_eq!(frags.len(), 4000usize.div_ceil(552));
    }
}
