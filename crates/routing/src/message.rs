//! The routing-advertisement wire format.
//!
//! A compact RIP-like encoding: one version octet, one count octet, then
//! six bytes per route (address, prefix length, metric). Carried in UDP
//! datagrams on [`RIP_PORT`] — the routing protocol is itself just an
//! application of the datagram service, exactly as the architecture
//! intends (gateways need nothing from the network that hosts don't get).

use catenet_wire::{Error, Ipv4Address, Ipv4Cidr, Result};

/// The UDP port routing advertisements use (RIP's own).
pub const RIP_PORT: u16 = 520;

/// The metric meaning "unreachable" (RIP's 16).
pub const INFINITY_METRIC: u8 = 16;

const VERSION: u8 = 1;
const ENTRY_LEN: usize = 6;
/// Maximum entries per message (fits any 576-byte-MTU path).
pub const MAX_ENTRIES: usize = 64;

/// One advertised route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RipEntry {
    /// The destination prefix.
    pub prefix: Ipv4Cidr,
    /// Hop-count metric; [`INFINITY_METRIC`] means unreachable.
    pub metric: u8,
}

/// A full advertisement message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RipMessage {
    /// The advertised routes.
    pub entries: Vec<RipEntry>,
}

impl RipMessage {
    /// Serialized length of a message with `n` entries.
    pub const fn encoded_len(n: usize) -> usize {
        2 + n * ENTRY_LEN
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(self.entries.len() <= MAX_ENTRIES);
        let mut out = Vec::with_capacity(Self::encoded_len(self.entries.len()));
        out.push(VERSION);
        out.push(self.entries.len() as u8);
        for entry in &self.entries {
            out.extend_from_slice(entry.prefix.address().as_bytes());
            out.push(entry.prefix.prefix_len());
            out.push(entry.metric);
        }
        out
    }

    /// Parse from bytes.
    pub fn decode(data: &[u8]) -> Result<RipMessage> {
        if data.len() < 2 {
            return Err(Error::Truncated);
        }
        if data[0] != VERSION {
            return Err(Error::Version);
        }
        let count = usize::from(data[1]);
        if count > MAX_ENTRIES {
            return Err(Error::Malformed);
        }
        if data.len() < 2 + count * ENTRY_LEN {
            return Err(Error::Truncated);
        }
        if data.len() > 2 + count * ENTRY_LEN {
            // Honest encoders produce exactly-sized messages; trailing
            // bytes mean a forged count or a smuggling attempt.
            return Err(Error::Malformed);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let base = 2 + i * ENTRY_LEN;
            let addr = Ipv4Address::from_bytes(&data[base..base + 4]);
            let prefix_len = data[base + 4];
            let metric = data[base + 5];
            if prefix_len > 32 {
                return Err(Error::Malformed);
            }
            if metric > INFINITY_METRIC {
                return Err(Error::Malformed);
            }
            entries.push(RipEntry {
                // Canonicalize here so stray host bits never reach the
                // engine (two spellings of one prefix must not become
                // two routes anywhere downstream).
                prefix: Ipv4Cidr::new(addr, prefix_len).network(),
                metric,
            });
        }
        Ok(RipMessage { entries })
    }

    /// Split a large route set into messages of at most [`MAX_ENTRIES`].
    pub fn paginate(entries: Vec<RipEntry>) -> Vec<RipMessage> {
        if entries.is_empty() {
            return vec![RipMessage::default()];
        }
        entries
            .chunks(MAX_ENTRIES)
            .map(|chunk| RipMessage {
                entries: chunk.to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip() {
        let msg = RipMessage {
            entries: vec![
                RipEntry {
                    prefix: cidr("10.1.0.0/16"),
                    metric: 1,
                },
                RipEntry {
                    prefix: cidr("10.2.0.0/16"),
                    metric: INFINITY_METRIC,
                },
                RipEntry {
                    prefix: cidr("0.0.0.0/0"),
                    metric: 3,
                },
            ],
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), RipMessage::encoded_len(3));
        assert_eq!(RipMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn empty_message() {
        let msg = RipMessage::default();
        let bytes = msg.encode();
        assert_eq!(bytes.len(), 2);
        assert_eq!(RipMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry {
                prefix: cidr("10.0.0.0/8"),
                metric: 1,
            }],
        };
        let bytes = msg.encode();
        assert_eq!(RipMessage::decode(&bytes[..1]).unwrap_err(), Error::Truncated);
        assert_eq!(
            RipMessage::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = RipMessage::default().encode();
        bytes[0] = 99;
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Version);
    }

    #[test]
    fn bad_fields_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry {
                prefix: cidr("10.0.0.0/8"),
                metric: 1,
            }],
        };
        let mut bad_prefix = msg.encode();
        bad_prefix[6] = 40; // prefix_len > 32
        assert_eq!(RipMessage::decode(&bad_prefix).unwrap_err(), Error::Malformed);
        let mut bad_metric = msg.encode();
        bad_metric[7] = 17;
        assert_eq!(RipMessage::decode(&bad_metric).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry {
                prefix: cidr("10.0.0.0/8"),
                metric: 1,
            }],
        };
        let mut bytes = msg.encode();
        bytes.push(0xFF);
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Malformed);
        // A forged count that undersells the payload is the same lie.
        let mut undersold = msg.encode();
        undersold[1] = 0;
        assert_eq!(RipMessage::decode(&undersold).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn host_bits_canonicalized_at_decode() {
        // Hand-craft an entry whose address has bits below the prefix:
        // 10.1.2.3/16 must decode as 10.1.0.0/16.
        let bytes = vec![1, 1, 10, 1, 2, 3, 16, 2];
        let msg = RipMessage::decode(&bytes).unwrap();
        assert_eq!(msg.entries[0].prefix, cidr("10.1.0.0/16"));
        assert_eq!(msg.entries[0].metric, 2);
    }

    #[test]
    fn boundary_fields_accepted() {
        // metric == INFINITY and prefix_len == 32 are the legal maxima.
        let bytes = vec![1, 1, 10, 1, 2, 3, 32, INFINITY_METRIC];
        let msg = RipMessage::decode(&bytes).unwrap();
        assert_eq!(msg.entries[0].prefix, cidr("10.1.2.3/32"));
        assert_eq!(msg.entries[0].metric, INFINITY_METRIC);
    }

    #[test]
    fn overcount_rejected() {
        let mut bytes = RipMessage::default().encode();
        bytes[1] = (MAX_ENTRIES + 1) as u8;
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn paginate_splits_large_tables() {
        let entries: Vec<RipEntry> = (0..150)
            .map(|i| RipEntry {
                prefix: Ipv4Cidr::new(Ipv4Address::new(10, (i / 256) as u8, (i % 256) as u8, 0), 24),
                metric: 1,
            })
            .collect();
        let messages = RipMessage::paginate(entries.clone());
        assert_eq!(messages.len(), 3);
        let total: usize = messages.iter().map(|m| m.entries.len()).sum();
        assert_eq!(total, 150);
        assert!(messages.iter().all(|m| m.entries.len() <= MAX_ENTRIES));
        // Order preserved across pages.
        let rejoined: Vec<RipEntry> = messages.into_iter().flat_map(|m| m.entries).collect();
        assert_eq!(rejoined, entries);
    }

    #[test]
    fn paginate_empty_yields_one_empty_message() {
        let messages = RipMessage::paginate(Vec::new());
        assert_eq!(messages.len(), 1);
        assert!(messages[0].entries.is_empty());
    }
}
