//! The routing-advertisement wire format.
//!
//! A compact RIP-like encoding: one version octet, one count octet, then
//! six bytes per route (address, prefix length, metric). Carried in UDP
//! datagrams on [`RIP_PORT`] — the routing protocol is itself just an
//! application of the datagram service, exactly as the architecture
//! intends (gateways need nothing from the network that hosts don't get).
//!
//! Entries may carry a route-origin [`Attestation`] (see `catenet-auth`).
//! Attestations ride in a single TLV appended *after* the entry block, so
//! a message with no attestations encodes byte-identically to the
//! original format — the unattested wire image is the reference behavior,
//! preserved exactly. Decoders that predate the TLV would reject it as
//! trailing garbage, which is the correct fail-closed posture for a
//! trust extension.

use catenet_auth::{Attestation, OriginId};
use catenet_wire::{Error, Ipv4Address, Ipv4Cidr, Result};

/// The UDP port routing advertisements use (RIP's own).
pub const RIP_PORT: u16 = 520;

/// The metric meaning "unreachable" (RIP's 16).
pub const INFINITY_METRIC: u8 = 16;

const VERSION: u8 = 1;
const ENTRY_LEN: usize = 6;
/// Maximum entries per message (fits any 576-byte-MTU path).
pub const MAX_ENTRIES: usize = 64;

/// TLV type octet introducing the attestation block.
const ATTEST_TLV: u8 = 0xA1;
/// One attestation record: entry index (1), origin (2), seq (4), tag (8).
const ATTEST_RECORD_LEN: usize = 15;
/// Maximum entries per message when any entry is attested. A full
/// attested page is `2 + 25*6 + 2 + 25*15 = 529` bytes of UDP payload,
/// which still fits the 576-byte-MTU guarantee (548 bytes of payload
/// after IP and UDP headers).
pub const MAX_ATTESTED_ENTRIES: usize = 25;

/// One advertised route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RipEntry {
    /// The destination prefix.
    pub prefix: Ipv4Cidr,
    /// Hop-count metric; [`INFINITY_METRIC`] means unreachable.
    pub metric: u8,
    /// Origin attestation, when the announcement is signed.
    pub attestation: Option<Attestation>,
}

impl RipEntry {
    /// An unattested entry (the original wire format's entry).
    pub fn new(prefix: Ipv4Cidr, metric: u8) -> RipEntry {
        RipEntry {
            prefix,
            metric,
            attestation: None,
        }
    }

    /// An entry carrying a signed origin attestation.
    pub fn attested(prefix: Ipv4Cidr, metric: u8, attestation: Attestation) -> RipEntry {
        RipEntry {
            prefix,
            metric,
            attestation: Some(attestation),
        }
    }
}

/// A full advertisement message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RipMessage {
    /// The advertised routes.
    pub entries: Vec<RipEntry>,
}

impl RipMessage {
    /// Serialized length of a message with `n` unattested entries.
    pub const fn encoded_len(n: usize) -> usize {
        2 + n * ENTRY_LEN
    }

    /// Serialize to bytes.
    ///
    /// With no attestations present the output is byte-identical to the
    /// pre-attestation format.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(self.entries.len() <= MAX_ENTRIES);
        let attested = self.entries.iter().filter(|e| e.attestation.is_some()).count();
        let mut out =
            Vec::with_capacity(Self::encoded_len(self.entries.len()) + if attested > 0 {
                2 + attested * ATTEST_RECORD_LEN
            } else {
                0
            });
        out.push(VERSION);
        out.push(self.entries.len() as u8);
        for entry in &self.entries {
            out.extend_from_slice(entry.prefix.address().as_bytes());
            out.push(entry.prefix.prefix_len());
            out.push(entry.metric);
        }
        if attested > 0 {
            out.push(ATTEST_TLV);
            out.push(attested as u8);
            for (index, entry) in self.entries.iter().enumerate() {
                if let Some(att) = entry.attestation {
                    out.push(index as u8);
                    out.extend_from_slice(&att.origin.0.to_be_bytes());
                    out.extend_from_slice(&att.seq.to_be_bytes());
                    out.extend_from_slice(&att.tag.to_be_bytes());
                }
            }
        }
        out
    }

    /// Parse from bytes.
    pub fn decode(data: &[u8]) -> Result<RipMessage> {
        if data.len() < 2 {
            return Err(Error::Truncated);
        }
        if data[0] != VERSION {
            return Err(Error::Version);
        }
        let count = usize::from(data[1]);
        if count > MAX_ENTRIES {
            return Err(Error::Malformed);
        }
        let entries_end = 2 + count * ENTRY_LEN;
        if data.len() < entries_end {
            return Err(Error::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let base = 2 + i * ENTRY_LEN;
            let addr = Ipv4Address::from_bytes(&data[base..base + 4]);
            let prefix_len = data[base + 4];
            let metric = data[base + 5];
            if prefix_len > 32 {
                return Err(Error::Malformed);
            }
            if metric > INFINITY_METRIC {
                return Err(Error::Malformed);
            }
            entries.push(RipEntry::new(
                // Canonicalize here so stray host bits never reach the
                // engine (two spellings of one prefix must not become
                // two routes anywhere downstream).
                Ipv4Cidr::new(addr, prefix_len).network(),
                metric,
            ));
        }
        if data.len() == entries_end {
            return Ok(RipMessage { entries });
        }
        Self::decode_attest_tlv(&data[entries_end..], &mut entries)?;
        Ok(RipMessage { entries })
    }

    /// Parse the attestation TLV, attaching records to `entries`.
    ///
    /// Mirrors the entry-block hardening: anything other than one
    /// exactly-sized, well-ordered TLV — trailing garbage, truncated
    /// records, duplicate or out-of-range entry indexes, a zero record
    /// count an honest encoder would have omitted — is rejected, never
    /// guessed at.
    fn decode_attest_tlv(tlv: &[u8], entries: &mut [RipEntry]) -> Result<()> {
        if tlv.len() < 2 {
            return Err(Error::Truncated);
        }
        if tlv[0] != ATTEST_TLV {
            return Err(Error::Malformed);
        }
        let records = usize::from(tlv[1]);
        if records == 0 || records > entries.len() {
            return Err(Error::Malformed);
        }
        let expected = 2 + records * ATTEST_RECORD_LEN;
        if tlv.len() < expected {
            return Err(Error::Truncated);
        }
        if tlv.len() > expected {
            return Err(Error::Malformed);
        }
        let mut previous: Option<usize> = None;
        for r in 0..records {
            let base = 2 + r * ATTEST_RECORD_LEN;
            let index = usize::from(tlv[base]);
            // Strictly increasing indexes: duplicates and reordering are
            // forgeries, and the bound check rejects dangling records.
            if index >= entries.len() || previous.is_some_and(|p| index <= p) {
                return Err(Error::Malformed);
            }
            previous = Some(index);
            let origin = u16::from_be_bytes(tlv[base + 1..base + 3].try_into().expect("2 bytes"));
            let seq = u32::from_be_bytes(tlv[base + 3..base + 7].try_into().expect("4 bytes"));
            let tag = u64::from_be_bytes(tlv[base + 7..base + 15].try_into().expect("8 bytes"));
            entries[index].attestation = Some(Attestation {
                origin: OriginId(origin),
                seq,
                tag,
            });
        }
        Ok(())
    }

    /// Split a large route set into messages of at most [`MAX_ENTRIES`]
    /// — or [`MAX_ATTESTED_ENTRIES`] when any entry carries an
    /// attestation, so attested pages keep the 576-byte-MTU guarantee.
    pub fn paginate(entries: Vec<RipEntry>) -> Vec<RipMessage> {
        if entries.is_empty() {
            return vec![RipMessage::default()];
        }
        let page = if entries.iter().any(|e| e.attestation.is_some()) {
            MAX_ATTESTED_ENTRIES
        } else {
            MAX_ENTRIES
        };
        entries
            .chunks(page)
            .map(|chunk| RipMessage {
                entries: chunk.to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_auth::{MacKey, OriginId};

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn attestation(origin: u16, seq: u32, prefix: &str) -> Attestation {
        let key = MacKey::derive(MacKey([7, 9]), OriginId(origin));
        Attestation::sign(key, OriginId(origin), cidr(prefix), seq)
    }

    #[test]
    fn round_trip() {
        let msg = RipMessage {
            entries: vec![
                RipEntry::new(cidr("10.1.0.0/16"), 1),
                RipEntry::new(cidr("10.2.0.0/16"), INFINITY_METRIC),
                RipEntry::new(cidr("0.0.0.0/0"), 3),
            ],
        };
        let bytes = msg.encode();
        assert_eq!(bytes.len(), RipMessage::encoded_len(3));
        assert_eq!(RipMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn empty_message() {
        let msg = RipMessage::default();
        let bytes = msg.encode();
        assert_eq!(bytes.len(), 2);
        assert_eq!(RipMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry::new(cidr("10.0.0.0/8"), 1)],
        };
        let bytes = msg.encode();
        assert_eq!(RipMessage::decode(&bytes[..1]).unwrap_err(), Error::Truncated);
        assert_eq!(
            RipMessage::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = RipMessage::default().encode();
        bytes[0] = 99;
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Version);
    }

    #[test]
    fn bad_fields_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry::new(cidr("10.0.0.0/8"), 1)],
        };
        let mut bad_prefix = msg.encode();
        bad_prefix[6] = 40; // prefix_len > 32
        assert_eq!(RipMessage::decode(&bad_prefix).unwrap_err(), Error::Malformed);
        let mut bad_metric = msg.encode();
        bad_metric[7] = 17;
        assert_eq!(RipMessage::decode(&bad_metric).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry::new(cidr("10.0.0.0/8"), 1)],
        };
        let mut bytes = msg.encode();
        bytes.push(0xFF);
        // One stray byte after the entries is neither a valid message
        // end nor a TLV header.
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Truncated);
        bytes.push(0x01);
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Malformed);
        // A forged count that undersells the payload is the same lie.
        let mut undersold = msg.encode();
        undersold[1] = 0;
        assert_eq!(RipMessage::decode(&undersold).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn host_bits_canonicalized_at_decode() {
        // Hand-craft an entry whose address has bits below the prefix:
        // 10.1.2.3/16 must decode as 10.1.0.0/16.
        let bytes = vec![1, 1, 10, 1, 2, 3, 16, 2];
        let msg = RipMessage::decode(&bytes).unwrap();
        assert_eq!(msg.entries[0].prefix, cidr("10.1.0.0/16"));
        assert_eq!(msg.entries[0].metric, 2);
    }

    #[test]
    fn boundary_fields_accepted() {
        // metric == INFINITY and prefix_len == 32 are the legal maxima.
        let bytes = vec![1, 1, 10, 1, 2, 3, 32, INFINITY_METRIC];
        let msg = RipMessage::decode(&bytes).unwrap();
        assert_eq!(msg.entries[0].prefix, cidr("10.1.2.3/32"));
        assert_eq!(msg.entries[0].metric, INFINITY_METRIC);
    }

    #[test]
    fn overcount_rejected() {
        let mut bytes = RipMessage::default().encode();
        bytes[1] = (MAX_ENTRIES + 1) as u8;
        assert_eq!(RipMessage::decode(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn paginate_splits_large_tables() {
        let entries: Vec<RipEntry> = (0..150)
            .map(|i| {
                RipEntry::new(
                    Ipv4Cidr::new(Ipv4Address::new(10, (i / 256) as u8, (i % 256) as u8, 0), 24),
                    1,
                )
            })
            .collect();
        let messages = RipMessage::paginate(entries.clone());
        assert_eq!(messages.len(), 3);
        let total: usize = messages.iter().map(|m| m.entries.len()).sum();
        assert_eq!(total, 150);
        assert!(messages.iter().all(|m| m.entries.len() <= MAX_ENTRIES));
        // Order preserved across pages.
        let rejoined: Vec<RipEntry> = messages.into_iter().flat_map(|m| m.entries).collect();
        assert_eq!(rejoined, entries);
    }

    #[test]
    fn paginate_empty_yields_one_empty_message() {
        let messages = RipMessage::paginate(Vec::new());
        assert_eq!(messages.len(), 1);
        assert!(messages[0].entries.is_empty());
    }

    #[test]
    fn attested_round_trip() {
        let msg = RipMessage {
            entries: vec![
                RipEntry::attested(cidr("10.1.0.0/16"), 1, attestation(3, 41, "10.1.0.0/16")),
                RipEntry::new(cidr("10.2.0.0/16"), INFINITY_METRIC),
                RipEntry::attested(cidr("10.3.0.0/16"), 2, attestation(5, 42, "10.3.0.0/16")),
            ],
        };
        let bytes = msg.encode();
        assert_eq!(
            bytes.len(),
            RipMessage::encoded_len(3) + 2 + 2 * ATTEST_RECORD_LEN
        );
        assert_eq!(RipMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn unattested_encoding_is_byte_identical_to_the_original_format() {
        // The reference wire image must not change when no entry is
        // signed: same bytes, entry block only.
        let entries = vec![
            RipEntry::new(cidr("10.1.0.0/16"), 1),
            RipEntry::new(cidr("10.2.0.0/16"), 4),
        ];
        let bytes = RipMessage { entries }.encode();
        let expected = vec![1, 2, 10, 1, 0, 0, 16, 1, 10, 2, 0, 0, 16, 4];
        assert_eq!(bytes, expected);
    }

    #[test]
    fn attest_tlv_truncation_and_garbage_rejected() {
        let msg = RipMessage {
            entries: vec![RipEntry::attested(
                cidr("10.1.0.0/16"),
                1,
                attestation(3, 7, "10.1.0.0/16"),
            )],
        };
        let bytes = msg.encode();
        // Truncated anywhere inside the TLV (including a cut-off MAC).
        for cut in RipMessage::encoded_len(1) + 1..bytes.len() {
            assert_eq!(
                RipMessage::decode(&bytes[..cut]).unwrap_err(),
                Error::Truncated,
                "cut at {cut}"
            );
        }
        // Trailing garbage after a complete TLV.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(RipMessage::decode(&padded).unwrap_err(), Error::Malformed);
        // Wrong TLV type octet.
        let mut wrong_type = bytes.clone();
        wrong_type[RipMessage::encoded_len(1)] = 0xB2;
        assert_eq!(RipMessage::decode(&wrong_type).unwrap_err(), Error::Malformed);
        // Zero record count: an honest encoder omits the TLV entirely.
        let mut zero_count = bytes[..RipMessage::encoded_len(1) + 2].to_vec();
        zero_count[RipMessage::encoded_len(1) + 1] = 0;
        assert_eq!(RipMessage::decode(&zero_count).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn attest_tlv_index_abuse_rejected() {
        let base = RipMessage {
            entries: vec![
                RipEntry::attested(cidr("10.1.0.0/16"), 1, attestation(3, 7, "10.1.0.0/16")),
                RipEntry::attested(cidr("10.2.0.0/16"), 1, attestation(3, 7, "10.2.0.0/16")),
            ],
        }
        .encode();
        let tlv_base = RipMessage::encoded_len(2);
        // Out-of-range entry index.
        let mut dangling = base.clone();
        dangling[tlv_base + 2] = 9;
        assert_eq!(RipMessage::decode(&dangling).unwrap_err(), Error::Malformed);
        // Duplicate index (second record repeats the first).
        let mut duplicate = base.clone();
        duplicate[tlv_base + 2 + ATTEST_RECORD_LEN] = duplicate[tlv_base + 2];
        assert_eq!(RipMessage::decode(&duplicate).unwrap_err(), Error::Malformed);
        // More records than entries.
        let mut overcount = base.clone();
        overcount[tlv_base + 1] = 3;
        assert_eq!(RipMessage::decode(&overcount).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn attested_pagination_keeps_pages_small() {
        let att = attestation(1, 1, "10.0.0.0/24");
        let entries: Vec<RipEntry> = (0..60)
            .map(|i| {
                RipEntry::attested(
                    Ipv4Cidr::new(Ipv4Address::new(10, 0, i as u8, 0), 24),
                    1,
                    att,
                )
            })
            .collect();
        let messages = RipMessage::paginate(entries);
        assert_eq!(messages.len(), 3);
        assert!(messages.iter().all(|m| m.entries.len() <= MAX_ATTESTED_ENTRIES));
        // Every page, fully attested, still fits the 576-byte guarantee
        // (548 bytes of UDP payload).
        assert!(messages.iter().all(|m| m.encode().len() <= 548));
    }

    #[test]
    fn random_wire_input_never_panics() {
        // Fuzz-ish: feed the decoder deterministic garbage, random
        // truncations of valid attested messages, and random single-byte
        // mutations. Decode must return, never panic.
        let mut rng = catenet_sim::Rng::from_seed(0x00A7_7E57);
        let valid = RipMessage {
            entries: vec![
                RipEntry::attested(cidr("10.1.0.0/16"), 1, attestation(3, 7, "10.1.0.0/16")),
                RipEntry::new(cidr("10.2.0.0/16"), 2),
                RipEntry::attested(cidr("10.3.0.0/16"), 3, attestation(5, 9, "10.3.0.0/16")),
            ],
        }
        .encode();
        for _ in 0..2000 {
            let len = rng.below(64) as usize;
            let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let _ = RipMessage::decode(&garbage);

            let mut mutated = valid.clone();
            let at = rng.below(mutated.len() as u64) as usize;
            mutated[at] ^= rng.below(255) as u8 + 1;
            let _ = RipMessage::decode(&mutated);

            let cut = rng.below(valid.len() as u64 + 1) as usize;
            let _ = RipMessage::decode(&valid[..cut]);
        }
    }
}
