//! The distance-vector routing engine.
//!
//! Sans-IO: the owner (a gateway in `catenet-core`) feeds received
//! advertisements to [`DvEngine::handle_update`] and periodically asks
//! [`DvEngine::advertisement_for`] what to tell each neighbor. The engine
//! holds only *topology* state — never conversation state — so a gateway
//! that crashes and reboots with an empty table re-learns everything
//! within a few update intervals. Experiment E1 depends on exactly this.

use crate::guard::{GuardPolicy, GuardVerdict, RouteGuard};
use crate::message::{RipEntry, INFINITY_METRIC};
use catenet_auth::{Attestation, Attestor};
use catenet_ip::RoutingTable;
use catenet_sim::{Duration, Instant};
use catenet_wire::{Ipv4Address, Ipv4Cidr};

/// Where a route points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// The prefix is directly attached via the given interface index.
    Connected {
        /// Local interface index.
        iface: usize,
    },
    /// Reachable via a neighbor gateway.
    Via {
        /// The neighbor's address.
        gateway: Ipv4Address,
        /// Local interface index toward that neighbor.
        iface: usize,
    },
}

impl NextHop {
    /// The local interface this route uses.
    pub fn iface(&self) -> usize {
        match *self {
            NextHop::Connected { iface } => iface,
            NextHop::Via { iface, .. } => iface,
        }
    }

    /// The gateway to forward to, if not directly connected.
    pub fn gateway(&self) -> Option<Ipv4Address> {
        match *self {
            NextHop::Connected { .. } => None,
            NextHop::Via { gateway, .. } => Some(gateway),
        }
    }
}

/// One learned (or connected) route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvRoute {
    /// Forwarding target.
    pub next_hop: NextHop,
    /// Hop count; [`INFINITY_METRIC`] marks a dead route awaiting GC.
    pub metric: u8,
    /// When the route is declared dead unless refreshed.
    pub expires_at: Instant,
    /// Set on any change; drives triggered updates.
    pub changed: bool,
    /// The origin attestation the route arrived with, stored so
    /// re-advertisements propagate the origin's proof hop by hop
    /// (refreshed on every update from the current next hop, so serials
    /// keep advancing through the fabric).
    pub attestation: Option<Attestation>,
}

/// Export policy toward one class of neighbor — the paper's
/// "distributed management" knob. An administration decides what
/// reachability it reveals across its boundary.
#[derive(Debug, Clone, Default)]
pub enum ExportPolicy {
    /// Advertise everything (interior neighbor, same administration).
    #[default]
    All,
    /// Advertise only routes falling inside these prefixes
    /// (exterior neighbor: reveal our own networks, not our peers').
    Only(Vec<Ipv4Cidr>),
}

impl ExportPolicy {
    fn permits(&self, prefix: &Ipv4Cidr) -> bool {
        match self {
            ExportPolicy::All => true,
            ExportPolicy::Only(allowed) => allowed.iter().any(|a| a.contains_subnet(prefix)),
        }
    }
}

/// Protocol timing and behavior parameters.
#[derive(Debug, Clone)]
pub struct DvConfig {
    /// Interval between periodic full-table advertisements.
    pub update_interval: Duration,
    /// Silence after which a learned route is declared dead.
    pub route_timeout: Duration,
    /// How long a dead route is advertised at infinity before removal.
    pub gc_timeout: Duration,
    /// Whether changes produce immediate (triggered) updates.
    pub triggered_updates: bool,
    /// Split horizon: never advertise a route back where it came from...
    pub split_horizon: bool,
    /// ...and if poisoned reverse is on, advertise it back at infinity
    /// instead of omitting it (faster loop breaking, bigger updates).
    pub poisoned_reverse: bool,
}

impl Default for DvConfig {
    fn default() -> DvConfig {
        DvConfig {
            update_interval: Duration::from_secs(30),
            route_timeout: Duration::from_secs(180),
            gc_timeout: Duration::from_secs(120),
            triggered_updates: true,
            split_horizon: true,
            poisoned_reverse: true,
        }
    }
}

impl DvConfig {
    /// A fast-converging profile for laptop-scale simulations (timers
    /// scaled down ~10×; ratios preserved).
    pub fn fast() -> DvConfig {
        DvConfig {
            update_interval: Duration::from_secs(3),
            route_timeout: Duration::from_secs(18),
            gc_timeout: Duration::from_secs(12),
            ..DvConfig::default()
        }
    }
}

/// The engine: a routing table plus the protocol rules that maintain it.
#[derive(Debug, Clone)]
pub struct DvEngine {
    config: DvConfig,
    table: RoutingTable<DvRoute>,
    next_periodic: Instant,
    /// Set when any route changed; cleared when advertisements are taken.
    trigger_pending: bool,
    /// Messages processed (for the overhead accounting in E4).
    pub updates_received: u64,
    /// Route changes applied.
    pub changes_applied: u64,
    /// Monotone table version: bumped once per mutation that changes
    /// what the table *says* (insert, metric change, poison, drop).
    /// Refreshes that only extend a deadline do not count. Telemetry
    /// samples this to timestamp reconvergence.
    version: u64,
    /// Defensive admission of announcements (off by default — the
    /// trusting 1988 behavior).
    guard: RouteGuard,
    /// Signing identity for this gateway's connected prefixes (None —
    /// the default — emits unattested announcements, byte-identical to
    /// the original wire format).
    attestor: Option<Attestor>,
}

impl DvEngine {
    /// A fresh engine that wants to advertise immediately.
    pub fn new(config: DvConfig) -> DvEngine {
        DvEngine {
            config,
            table: RoutingTable::new(),
            next_periodic: Instant::ZERO,
            trigger_pending: false,
            updates_received: 0,
            changes_applied: 0,
            version: 0,
            guard: RouteGuard::new(GuardPolicy::off()),
            attestor: None,
        }
    }

    /// The protocol configuration.
    pub fn config(&self) -> &DvConfig {
        &self.config
    }

    /// The route guard (verdict totals, quarantine state).
    pub fn guard(&self) -> &RouteGuard {
        &self.guard
    }

    /// Mutable guard access (the owner drains incidents through this).
    pub fn guard_mut(&mut self) -> &mut RouteGuard {
        &mut self.guard
    }

    /// Install a guard policy. Existing guard history is forgotten;
    /// routes already in the table are untouched (the guard screens
    /// what comes *in*, it does not audit the past).
    pub fn set_guard_policy(&mut self, policy: GuardPolicy) {
        self.guard.set_policy(policy);
    }

    /// Install (or remove) the signing identity for this gateway's
    /// connected prefixes.
    pub fn set_attestor(&mut self, attestor: Option<Attestor>) {
        self.attestor = attestor;
    }

    /// The signing identity, if one is installed.
    pub fn attestor(&self) -> Option<&Attestor> {
        self.attestor.as_ref()
    }

    /// The table's monotone version counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Declare a directly connected network on `iface`.
    pub fn add_connected(&mut self, prefix: Ipv4Cidr, iface: usize) {
        self.table.insert(
            prefix,
            DvRoute {
                next_hop: NextHop::Connected { iface },
                metric: 1,
                expires_at: Instant::FAR_FUTURE,
                changed: true,
                // Connected routes are signed live at advertisement
                // time (the attestor stamps the current serial).
                attestation: None,
            },
        );
        self.trigger_pending = true;
        self.version += 1;
    }

    /// Withdraw a connected network (interface went down).
    pub fn remove_connected(&mut self, prefix: &Ipv4Cidr) {
        if let Some(route) = self.table.get_mut(prefix) {
            if matches!(route.next_hop, NextHop::Connected { .. }) {
                route.metric = INFINITY_METRIC;
                route.changed = true;
                // Hold at infinity for one GC period so neighbors hear it.
                route.expires_at = Instant::ZERO;
                self.trigger_pending = true;
                self.version += 1;
            }
        }
    }

    /// An interface went down: every route using it — connected or
    /// learned — is immediately dead (this is what real routers do;
    /// waiting for the timeout would advertise a black hole for most of
    /// a route-timeout period).
    pub fn fail_iface(&mut self, iface: usize, now: Instant) {
        let gc = self.config.gc_timeout;
        let mut changed = false;
        for (_, route) in self.table.iter_mut() {
            if route.next_hop.iface() == iface && route.metric < INFINITY_METRIC {
                route.metric = INFINITY_METRIC;
                route.changed = true;
                route.expires_at = now + gc;
                changed = true;
            }
        }
        if changed {
            self.trigger_pending = true;
            self.version += 1;
        }
    }

    /// Look up the forwarding entry for `addr`. Dead routes don't forward.
    pub fn lookup(&self, addr: Ipv4Address) -> Option<&DvRoute> {
        self.table
            .lookup(addr)
            .filter(|route| route.metric < INFINITY_METRIC)
    }

    /// Iterate all routes (live and dying).
    pub fn routes(&self) -> impl Iterator<Item = (&Ipv4Cidr, &DvRoute)> {
        self.table.iter()
    }

    /// Number of live routes.
    pub fn live_routes(&self) -> usize {
        self.table
            .iter()
            .filter(|(_, r)| r.metric < INFINITY_METRIC)
            .count()
    }

    /// Process an advertisement from `gateway` heard on `iface`.
    /// Returns true if anything changed (the caller may then ask for
    /// triggered updates).
    ///
    /// With a guard policy enabled, the announcement first passes
    /// through [`RouteGuard::admit`]; only the entries that survive
    /// sanitization, damping and quarantine reach the table. With the
    /// policy off (the default) this path is byte-for-byte the trusting
    /// 1988 behavior.
    pub fn handle_update(
        &mut self,
        gateway: Ipv4Address,
        iface: usize,
        entries: &[RipEntry],
        now: Instant,
    ) -> bool {
        self.updates_received += 1;
        let admission;
        let entries: &[RipEntry] = if self.guard.enabled() {
            let own: Vec<Ipv4Cidr> = self
                .table
                .iter()
                .filter(|(_, r)| {
                    matches!(r.next_hop, NextHop::Connected { .. }) && r.metric == 1
                })
                .map(|(p, _)| *p)
                .collect();
            admission = self.guard.admit(gateway, entries, now, &own);
            if admission.verdict == GuardVerdict::Quarantined {
                return false;
            }
            &admission.entries
        } else {
            entries
        };
        let mut changed_any = false;
        for entry in entries {
            let advertised = entry.metric.saturating_add(1).min(INFINITY_METRIC);
            let prefix = entry.prefix.network();
            match self.table.get_mut(&prefix) {
                Some(route) => {
                    let from_same_gateway = route.next_hop.gateway() == Some(gateway);
                    if matches!(route.next_hop, NextHop::Connected { .. }) && route.metric == 1 {
                        // Never override a live connected route.
                        continue;
                    }
                    if from_same_gateway {
                        // Our current next hop speaks: always believe it.
                        route.expires_at = now + self.config.route_timeout;
                        // Take the refreshed attestation even when the
                        // metric is unchanged: the origin's serial keeps
                        // advancing and downstream verifiers track it.
                        route.attestation = entry.attestation;
                        if route.metric != advertised {
                            route.metric = advertised;
                            route.changed = true;
                            changed_any = true;
                            if advertised >= INFINITY_METRIC {
                                route.expires_at = now + self.config.gc_timeout;
                            }
                        }
                    } else if advertised < route.metric {
                        *route = DvRoute {
                            next_hop: NextHop::Via { gateway, iface },
                            metric: advertised,
                            expires_at: now + self.config.route_timeout,
                            changed: true,
                            attestation: entry.attestation,
                        };
                        changed_any = true;
                    }
                }
                None => {
                    if advertised < INFINITY_METRIC {
                        self.table.insert(
                            prefix,
                            DvRoute {
                                next_hop: NextHop::Via { gateway, iface },
                                metric: advertised,
                                expires_at: now + self.config.route_timeout,
                                changed: true,
                                attestation: entry.attestation,
                            },
                        );
                        changed_any = true;
                    }
                }
            }
        }
        if changed_any {
            self.changes_applied += 1;
            self.trigger_pending = true;
            self.version += 1;
        }
        changed_any
    }

    /// Expire silent routes and collect garbage. Call at least once per
    /// update interval.
    pub fn tick(&mut self, now: Instant) {
        let gc = self.config.gc_timeout;
        let mut newly_dead = false;
        let before = self.table.iter().count();
        self.table.retain(|_, route| {
            if route.expires_at > now {
                return true;
            }
            if route.metric < INFINITY_METRIC {
                // Newly dead: hold at infinity through a GC period.
                route.metric = INFINITY_METRIC;
                route.changed = true;
                route.expires_at = now + gc;
                newly_dead = true;
                true
            } else {
                // Already at infinity and GC expired: drop.
                false
            }
        });
        let dropped = before != self.table.iter().count();
        if newly_dead {
            self.trigger_pending = true;
        }
        if newly_dead || dropped {
            self.version += 1;
        }
    }

    /// Whether a periodic advertisement is due.
    pub fn periodic_due(&self, now: Instant) -> bool {
        now >= self.next_periodic
    }

    /// Whether a triggered advertisement is pending.
    pub fn triggered_due(&self) -> bool {
        self.config.triggered_updates && self.trigger_pending
    }

    /// When the engine next needs service.
    pub fn poll_at(&self) -> Instant {
        self.next_periodic
    }

    /// Build the advertisement for the neighbor reached via `iface`,
    /// applying split horizon / poisoned reverse and the export policy.
    /// `full` selects between a complete table (periodic) and only
    /// changed routes (triggered).
    pub fn advertisement_for(
        &self,
        iface: usize,
        policy: &ExportPolicy,
        full: bool,
    ) -> Vec<RipEntry> {
        let mut entries = Vec::new();
        for (prefix, route) in self.table.iter() {
            if !full && !route.changed {
                continue;
            }
            if !policy.permits(prefix) {
                continue;
            }
            let learned_here = route.next_hop.iface() == iface
                && !matches!(route.next_hop, NextHop::Connected { .. });
            let metric = if learned_here && self.config.split_horizon {
                if self.config.poisoned_reverse {
                    INFINITY_METRIC
                } else {
                    continue;
                }
            } else {
                route.metric
            };
            // Attach provenance: connected prefixes get a fresh
            // signature at the current serial, learned routes relay the
            // stored attestation unchanged (a gateway can only vouch for
            // what it owns). Unreachable entries claim nothing and
            // carry nothing.
            let attestation = if metric >= INFINITY_METRIC {
                None
            } else if matches!(route.next_hop, NextHop::Connected { .. }) {
                self.attestor.as_ref().map(|a| a.sign(*prefix))
            } else {
                route.attestation
            };
            entries.push(RipEntry {
                prefix: *prefix,
                metric,
                attestation,
            });
        }
        entries
    }

    /// Mark the advertisement round complete: clears change flags and
    /// schedules the next periodic update.
    pub fn advertisements_sent(&mut self, now: Instant) {
        for (_, route) in self.table.iter_mut() {
            route.changed = false;
        }
        self.trigger_pending = false;
        self.next_periodic = now + self.config.update_interval;
        if let Some(attestor) = &mut self.attestor {
            // Serials advance with virtual time (seconds), which makes
            // them monotone across a crash/reboot with no stable
            // storage: the clock is the journal.
            attestor.advance((now.total_millis() / 1000) as u32);
        }
    }

    /// Forget everything (gateway crash). Connected networks must be
    /// re-declared by the owner on reboot — which is trivial, because
    /// they are configuration, not conversation state.
    pub fn clear(&mut self) {
        if self.table.iter().next().is_some() {
            self.version += 1;
        }
        self.table.clear();
        self.trigger_pending = false;
        self.next_periodic = Instant::ZERO;
        // Guard history is volatile too — fate-sharing — but the
        // policy itself is configuration and survives the reboot.
        self.guard.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn engine() -> DvEngine {
        DvEngine::new(DvConfig::fast())
    }

    #[test]
    fn connected_routes_advertised_at_metric_one() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        let ads = dv.advertisement_for(1, &ExportPolicy::All, true);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].metric, 1);
        assert_eq!(ads[0].prefix, cidr("10.1.0.0/16"));
    }

    #[test]
    fn learned_route_adds_one_hop() {
        let mut dv = engine();
        let changed = dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 2)],
            Instant::ZERO,
        );
        assert!(changed);
        let route = dv.lookup(addr("10.9.1.1")).unwrap();
        assert_eq!(route.metric, 3);
        assert_eq!(route.next_hop.gateway(), Some(addr("10.0.0.2")));
        assert_eq!(route.next_hop.iface(), 0);
    }

    #[test]
    fn better_route_replaces_worse() {
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 5)],
            Instant::ZERO,
        );
        dv.handle_update(
            addr("10.0.1.2"),
            1,
            &[RipEntry::new(cidr("10.9.0.0/16"), 2)],
            Instant::ZERO,
        );
        let route = dv.lookup(addr("10.9.0.1")).unwrap();
        assert_eq!(route.metric, 3);
        assert_eq!(route.next_hop.gateway(), Some(addr("10.0.1.2")));
    }

    #[test]
    fn worse_route_from_other_gateway_ignored() {
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 2)],
            Instant::ZERO,
        );
        let changed = dv.handle_update(
            addr("10.0.1.2"),
            1,
            &[RipEntry::new(cidr("10.9.0.0/16"), 9)],
            Instant::ZERO,
        );
        assert!(!changed);
        assert_eq!(
            dv.lookup(addr("10.9.0.1")).unwrap().next_hop.gateway(),
            Some(addr("10.0.0.2"))
        );
    }

    #[test]
    fn current_gateway_worsening_is_believed() {
        // Counting-to-infinity protection: the next hop's word is law.
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 2)],
            Instant::ZERO,
        );
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 7)],
            Instant::ZERO,
        );
        assert_eq!(dv.lookup(addr("10.9.0.1")).unwrap().metric, 8);
    }

    #[test]
    fn infinity_from_current_gateway_kills_route() {
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 2)],
            Instant::ZERO,
        );
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), INFINITY_METRIC)],
            Instant::ZERO,
        );
        assert!(dv.lookup(addr("10.9.0.1")).is_none());
        // But it is still *advertised* at infinity (route poisoning).
        let ads = dv.advertisement_for(9, &ExportPolicy::All, true);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].metric, INFINITY_METRIC);
    }

    #[test]
    fn connected_route_never_overridden() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        dv.handle_update(
            addr("10.0.0.2"),
            1,
            &[RipEntry::new(cidr("10.1.0.0/16"), 0)],
            Instant::ZERO,
        );
        let route = dv.lookup(addr("10.1.0.1")).unwrap();
        assert_eq!(route.metric, 1);
        assert!(matches!(route.next_hop, NextHop::Connected { iface: 0 }));
    }

    #[test]
    fn split_horizon_with_poison() {
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 1)],
            Instant::ZERO,
        );
        // Back toward iface 0: poisoned.
        let back = dv.advertisement_for(0, &ExportPolicy::All, true);
        assert_eq!(back[0].metric, INFINITY_METRIC);
        // Toward another iface: real metric.
        let fwd = dv.advertisement_for(1, &ExportPolicy::All, true);
        assert_eq!(fwd[0].metric, 2);
    }

    #[test]
    fn split_horizon_without_poison_omits() {
        let mut config = DvConfig::fast();
        config.poisoned_reverse = false;
        let mut dv = DvEngine::new(config);
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 1)],
            Instant::ZERO,
        );
        assert!(dv.advertisement_for(0, &ExportPolicy::All, true).is_empty());
        assert_eq!(dv.advertisement_for(1, &ExportPolicy::All, true).len(), 1);
    }

    #[test]
    fn export_policy_filters_foreign_routes() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        dv.handle_update(
            addr("10.0.0.2"),
            1,
            &[RipEntry::new(cidr("172.16.0.0/16"), 1)],
            Instant::ZERO,
        );
        // Exterior policy: only reveal our own 10.1/16.
        let policy = ExportPolicy::Only(vec![cidr("10.1.0.0/16")]);
        let ads = dv.advertisement_for(2, &policy, true);
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].prefix, cidr("10.1.0.0/16"));
    }

    #[test]
    fn silent_route_times_out_then_gcs() {
        let mut dv = engine(); // timeout 18 s, gc 12 s
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 1)],
            Instant::ZERO,
        );
        dv.tick(Instant::from_secs(10));
        assert!(dv.lookup(addr("10.9.0.1")).is_some());
        dv.tick(Instant::from_secs(19));
        assert!(dv.lookup(addr("10.9.0.1")).is_none(), "timed out");
        // Still advertised at infinity during GC hold.
        assert_eq!(
            dv.advertisement_for(1, &ExportPolicy::All, true)[0].metric,
            INFINITY_METRIC
        );
        dv.tick(Instant::from_secs(32));
        assert_eq!(dv.advertisement_for(1, &ExportPolicy::All, true).len(), 0);
    }

    #[test]
    fn refresh_prevents_timeout() {
        let mut dv = engine();
        let entry = [RipEntry::new(cidr("10.9.0.0/16"), 1)];
        dv.handle_update(addr("10.0.0.2"), 0, &entry, Instant::ZERO);
        dv.handle_update(addr("10.0.0.2"), 0, &entry, Instant::from_secs(10));
        dv.tick(Instant::from_secs(19));
        assert!(dv.lookup(addr("10.9.0.1")).is_some());
    }

    #[test]
    fn triggered_updates_carry_only_changes() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        dv.advertisements_sent(Instant::ZERO); // clears change flags
        assert!(!dv.triggered_due());
        dv.handle_update(
            addr("10.0.0.2"),
            1,
            &[RipEntry::new(cidr("10.9.0.0/16"), 1)],
            Instant::from_secs(1),
        );
        assert!(dv.triggered_due());
        let partial = dv.advertisement_for(2, &ExportPolicy::All, false);
        assert_eq!(partial.len(), 1, "only the new route");
        assert_eq!(partial[0].prefix, cidr("10.9.0.0/16"));
        let full = dv.advertisement_for(2, &ExportPolicy::All, true);
        assert_eq!(full.len(), 2, "full table still has both");
    }

    #[test]
    fn periodic_schedule() {
        let mut dv = engine(); // 3 s interval
        assert!(dv.periodic_due(Instant::ZERO));
        dv.advertisements_sent(Instant::ZERO);
        assert!(!dv.periodic_due(Instant::from_secs(2)));
        assert!(dv.periodic_due(Instant::from_secs(3)));
        assert_eq!(dv.poll_at(), Instant::from_secs(3));
    }

    #[test]
    fn remove_connected_poisons() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        dv.remove_connected(&cidr("10.1.0.0/16"));
        assert!(dv.lookup(addr("10.1.0.1")).is_none());
        let ads = dv.advertisement_for(1, &ExportPolicy::All, true);
        assert_eq!(ads[0].metric, INFINITY_METRIC);
    }

    #[test]
    fn fail_iface_kills_learned_routes_immediately() {
        let mut dv = engine();
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 1)],
            Instant::ZERO,
        );
        dv.handle_update(
            addr("10.0.1.2"),
            1,
            &[RipEntry::new(cidr("10.8.0.0/16"), 1)],
            Instant::ZERO,
        );
        dv.fail_iface(0, Instant::from_secs(1));
        assert!(dv.lookup(addr("10.9.0.1")).is_none(), "iface-0 route dead");
        assert!(dv.lookup(addr("10.8.0.1")).is_some(), "iface-1 route alive");
        assert!(dv.triggered_due(), "poison goes out as a triggered update");
        // The dead route can be replaced by a worse alternative now.
        dv.handle_update(
            addr("10.0.1.2"),
            1,
            &[RipEntry::new(cidr("10.9.0.0/16"), 5)],
            Instant::from_secs(2),
        );
        assert_eq!(dv.lookup(addr("10.9.0.1")).unwrap().metric, 6);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut dv = engine();
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        dv.clear();
        assert_eq!(dv.routes().count(), 0);
        assert!(dv.periodic_due(Instant::ZERO));
    }

    #[test]
    fn version_counts_material_changes_only() {
        let mut dv = engine();
        assert_eq!(dv.version(), 0);
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        assert_eq!(dv.version(), 1);
        let entry = [RipEntry::new(cidr("10.9.0.0/16"), 1)];
        dv.handle_update(addr("10.0.0.2"), 1, &entry, Instant::ZERO);
        assert_eq!(dv.version(), 2, "new route learned");
        // A pure refresh extends the deadline but says nothing new.
        dv.handle_update(addr("10.0.0.2"), 1, &entry, Instant::from_secs(2));
        assert_eq!(dv.version(), 2, "refresh is not a change");
        // A quiet tick changes nothing either.
        dv.tick(Instant::from_secs(3));
        assert_eq!(dv.version(), 2);
        dv.fail_iface(1, Instant::from_secs(4));
        assert_eq!(dv.version(), 3, "poison is a change");
        // GC drop of the poisoned route is a change too (12 s hold).
        dv.tick(Instant::from_secs(17));
        assert_eq!(dv.version(), 4);
        dv.clear();
        assert_eq!(dv.version(), 5);
        dv.clear();
        assert_eq!(dv.version(), 5, "clearing empty is a no-op");
    }

    #[test]
    fn guarded_engine_rejects_blackhole_advert() {
        let mut trusting = engine();
        let mut guarded = engine();
        guarded.set_guard_policy(GuardPolicy::standard());
        let blackhole = [RipEntry::new(cidr("10.9.0.0/16"), 0)];
        // The trusting engine installs the metric-0 lie at cost 1 —
        // unbeatable by any honest path.
        assert!(trusting.handle_update(addr("10.0.0.2"), 0, &blackhole, Instant::ZERO));
        assert_eq!(trusting.lookup(addr("10.9.0.1")).unwrap().metric, 1);
        // The guarded engine refuses it outright.
        assert!(!guarded.handle_update(addr("10.0.0.2"), 0, &blackhole, Instant::ZERO));
        assert!(guarded.lookup(addr("10.9.0.1")).is_none());
        let verdicts: Vec<_> = guarded.guard().verdicts().collect();
        assert_eq!(verdicts[0].1.sanitized, 1);
    }

    #[test]
    fn guard_off_is_bitwise_trusting_behavior() {
        let mut dv = engine();
        assert!(!dv.guard().enabled());
        // Policy off: even a metric-0 lie flows straight in, exactly as
        // the 1988 architecture trusted it to.
        dv.handle_update(
            addr("10.0.0.2"),
            0,
            &[RipEntry::new(cidr("10.9.0.0/16"), 0)],
            Instant::ZERO,
        );
        assert_eq!(dv.lookup(addr("10.9.0.1")).unwrap().metric, 1);
        assert_eq!(dv.guard().verdicts().count(), 0, "no guard state accrues");
    }

    #[test]
    fn three_node_line_converges_and_heals() {
        // A --- B --- C: propagate A's network to C, then kill B's route
        // and watch poison flow. Engines exchange ads by hand.
        let mut a = engine();
        let mut b = engine();
        let mut c = engine();
        a.add_connected(cidr("10.1.0.0/16"), 0); // A's LAN
        let a_addr = addr("10.12.0.1"); // A on the A-B net
        let b_addr_ab = addr("10.12.0.2");
        let b_addr_bc = addr("10.23.0.2");
        let c_addr = addr("10.23.0.3");
        let _ = (b_addr_ab, c_addr);

        let now = Instant::ZERO;
        // Round 1: A → B.
        let ads = a.advertisement_for(1, &ExportPolicy::All, true);
        b.handle_update(a_addr, 0, &ads, now);
        assert_eq!(b.lookup(addr("10.1.5.5")).unwrap().metric, 2);
        // Round 2: B → C.
        let ads = b.advertisement_for(1, &ExportPolicy::All, true);
        c.handle_update(b_addr_bc, 0, &ads, now);
        assert_eq!(c.lookup(addr("10.1.5.5")).unwrap().metric, 3);
        // A's network dies.
        a.remove_connected(&cidr("10.1.0.0/16"));
        let ads = a.advertisement_for(1, &ExportPolicy::All, true);
        b.handle_update(a_addr, 0, &ads, now);
        assert!(b.lookup(addr("10.1.5.5")).is_none(), "poison reached B");
        let ads = b.advertisement_for(1, &ExportPolicy::All, true);
        c.handle_update(b_addr_bc, 0, &ads, now);
        assert!(c.lookup(addr("10.1.5.5")).is_none(), "poison reached C");
    }

    use catenet_auth::{MacKey, OriginId};

    fn attestor(origin: u16) -> Attestor {
        let master = MacKey([0xAA, 0xBB]);
        Attestor::new(OriginId(origin), MacKey::derive(master, OriginId(origin)))
    }

    #[test]
    fn attestor_signs_connected_prefixes_only() {
        let mut dv = engine();
        dv.set_attestor(Some(attestor(7)));
        dv.add_connected(cidr("10.1.0.0/16"), 0);
        // A learned route arrives without an attestation.
        dv.handle_update(
            addr("10.12.0.2"),
            0,
            &[RipEntry::new(cidr("10.2.0.0/16"), 1)],
            Instant::ZERO,
        );
        let ads = dv.advertisement_for(1, &ExportPolicy::All, true);
        let connected = ads.iter().find(|e| e.prefix == cidr("10.1.0.0/16")).unwrap();
        let learned = ads.iter().find(|e| e.prefix == cidr("10.2.0.0/16")).unwrap();
        let att = connected.attestation.expect("connected prefix signed");
        assert_eq!(att.origin, OriginId(7));
        let key = MacKey::derive(MacKey([0xAA, 0xBB]), OriginId(7));
        assert!(att.verify(key, cidr("10.1.0.0/16")));
        assert!(
            learned.attestation.is_none(),
            "engine must not originate proofs for routes it merely relays"
        );
    }

    #[test]
    fn learned_attestations_are_stored_and_relayed() {
        let origin = attestor(3);
        let proof = {
            let mut a = origin;
            a.advance(42);
            a.sign(cidr("10.3.0.0/16"))
        };
        let mut dv = engine();
        dv.handle_update(
            addr("10.12.0.2"),
            0,
            &[RipEntry::attested(cidr("10.3.0.0/16"), 1, proof)],
            Instant::ZERO,
        );
        assert_eq!(
            dv.lookup(addr("10.3.1.1")).unwrap().attestation,
            Some(proof)
        );
        // The proof rides the re-advertisement unchanged.
        let ads = dv.advertisement_for(1, &ExportPolicy::All, true);
        assert_eq!(ads[0].attestation, Some(proof));
        // A refresh with a newer serial replaces the stored proof.
        let newer = {
            let mut a = attestor(3);
            a.advance(43);
            a.sign(cidr("10.3.0.0/16"))
        };
        dv.handle_update(
            addr("10.12.0.2"),
            0,
            &[RipEntry::attested(cidr("10.3.0.0/16"), 1, newer)],
            Instant::ZERO,
        );
        assert_eq!(dv.lookup(addr("10.3.1.1")).unwrap().attestation, Some(newer));
    }

    #[test]
    fn attestor_serial_tracks_virtual_time() {
        let mut dv = engine();
        dv.set_attestor(Some(attestor(5)));
        dv.add_connected(cidr("10.5.0.0/16"), 0);
        dv.advertisements_sent(Instant::ZERO + Duration::from_secs(9));
        let s1 = dv.attestor().unwrap().seq();
        dv.advertisements_sent(Instant::ZERO + Duration::from_secs(21));
        let s2 = dv.attestor().unwrap().seq();
        assert_eq!((s1, s2), (9, 21));
        // Time never runs backwards, and neither does the serial.
        dv.advertisements_sent(Instant::ZERO + Duration::from_secs(15));
        assert_eq!(dv.attestor().unwrap().seq(), 21);
    }

    #[test]
    fn attestor_survives_clear() {
        let mut dv = engine();
        dv.set_attestor(Some(attestor(9)));
        dv.add_connected(cidr("10.9.0.0/16"), 0);
        dv.clear();
        assert!(dv.attestor().is_some(), "identity is config, not state");
        assert!(dv.lookup(addr("10.9.1.1")).is_none(), "table is state");
    }
}
