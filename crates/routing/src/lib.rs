//! # catenet-routing
//!
//! Distance-vector routing — the machinery behind two of Clark's goals:
//!
//! - **Survivability (goal 1):** when a gateway or network dies, the
//!   survivors re-derive reachability among themselves. No conversation
//!   state is involved; the network heals underneath the endpoints.
//! - **Distributed management (goal 4):** the 1988 internet was already
//!   run by multiple organizations. Gateways exchange reachability
//!   across administrative boundaries while each administration applies
//!   its own export policy (the EGP/BGP seed). [`engine::ExportPolicy`]
//!   models exactly that.
//!
//! The protocol is RIP-shaped (RFC 1058 lineage): periodic full-table
//! advertisements over UDP, hop-count metric with infinity = 16, split
//! horizon with poisoned reverse, triggered updates on change, and
//! timeout/garbage-collection of silent routes. The engine is sans-IO:
//! `catenet-core` feeds it received updates and transmits the
//! advertisements it produces.
//!
//! The [`guard`] module adds what 1988 lacked: defensive admission of
//! announcements (sanitization, rate limiting, flap damping,
//! quarantine) behind a [`GuardPolicy`] switch whose default — off —
//! preserves the original trusting behavior as the reference. On top of
//! it, `catenet-auth`'s route-origin attestation (re-exported here)
//! binds reachability claims to verifiable prefix ownership: the
//! [`message`] format carries signed attestations per entry, the
//! [`engine`] signs its connected prefixes and propagates stored
//! attestations, and the guard verifies origin, MAC, and freshness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod guard;
pub mod message;

pub use catenet_auth::{Attestation, Attestor, MacKey, OriginId, OriginRegistry};
pub use engine::{DvConfig, DvEngine, DvRoute, ExportPolicy, NextHop};
pub use guard::{
    Admission, AttestFailure, GuardIncident, GuardPolicy, GuardVerdict, NeighborVerdicts,
    RouteGuard,
};
pub use message::{RipEntry, RipMessage, INFINITY_METRIC, RIP_PORT};
