//! Route-guard: defensive admission of routing announcements.
//!
//! Clark's fourth goal — distributed management — is the one the 1988
//! architecture satisfied least: gateways run by different
//! administrations exchange routing tables, yet nothing in the
//! architecture defends against a neighbor that *lies*. A compromised
//! gateway can advertise a metric-0 black hole for a victim prefix,
//! originate prefixes it does not own, replay stale tables, or flap its
//! announcements to churn every table in reach.
//!
//! The [`RouteGuard`] sits between the wire and
//! [`crate::DvEngine::handle_update`] and applies the defenses the 1988
//! design lacked, in order:
//!
//! 1. **Quarantine wall** — announcements from a quarantined neighbor
//!    are discarded wholesale until a timed parole expires.
//! 2. **Per-neighbor rate limiting** — a fixed window caps how many
//!    announcements one neighbor may send; excess messages are dropped
//!    and count as offenses.
//! 3. **Wire-level sanitization** — entries with out-of-range prefix
//!    lengths are dropped, metrics above infinity are clamped, metric-0
//!    entries are rejected outright (no honest gateway advertises below
//!    1 — a connected network costs 1 — so metric 0 is the black-hole
//!    signature), finite metrics beyond the configured topology radius
//!    are clamped to infinity, and finite-metric echoes of our own
//!    connected prefixes from off-link neighbors are rejected (an
//!    on-link peer legitimately shares a link prefix; a distant liar
//!    claiming a better route to our own network does not).
//! 4. **Flap damping** — per (neighbor, prefix), reachable↔unreachable
//!    transitions inside a window trip a hold-down that suppresses the
//!    prefix until the hold-down expires.
//!
//! Rate-limit hits and damping trips accumulate as offenses; enough
//! offenses quarantine the neighbor. Sanitization does *not* escalate —
//! it already neutralizes the bad entry surgically, and escalating it
//! would let a single poisoned prefix take down every honest route the
//! same neighbor carries.
//!
//! Everything is behind a [`GuardPolicy`] switch whose default is *off*
//! — the trusting 1988 behavior, kept as the reference the defense is
//! measured against (experiment E14). Every verdict and incident is
//! observable: per Allman's measurability principle, a rejected
//! announcement is a first-class event, not a silent drop.

use crate::message::{RipEntry, INFINITY_METRIC};
use catenet_sim::{Duration, Instant};
use catenet_wire::{Ipv4Address, Ipv4Cidr};
use std::collections::BTreeMap;
use std::fmt;

/// The guard's knobs. `Default` is the policy-off trusting behavior;
/// [`GuardPolicy::standard`] enables the full defense with values tuned
/// to the fast DV profile ([`crate::DvConfig::fast`], 3 s updates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Master switch. Off = announcements flow straight into the
    /// engine, exactly as the 1988 architecture trusted them to.
    pub enabled: bool,
    /// If set, no honest finite metric can exceed this (the known
    /// topology radius plus slack); larger finite metrics are clamped
    /// to infinity.
    pub topology_radius: Option<u8>,
    /// Fixed window over which announcements per neighbor are counted.
    pub rate_window: Duration,
    /// Maximum announcements one neighbor may send per window.
    pub rate_limit: u32,
    /// Window over which reachable↔unreachable flips are counted.
    pub flap_window: Duration,
    /// Flips within the window that trip the hold-down.
    pub flap_threshold: u32,
    /// How long a damped prefix stays suppressed.
    pub holddown: Duration,
    /// Offenses (rate-limit hits + damping trips) that quarantine the
    /// neighbor.
    pub quarantine_threshold: u32,
    /// How long a quarantined neighbor is ignored before parole.
    pub quarantine_parole: Duration,
}

impl Default for GuardPolicy {
    fn default() -> GuardPolicy {
        GuardPolicy::off()
    }
}

impl GuardPolicy {
    /// The full defense, tuned to the fast DV profile: honest neighbors
    /// send ~4 announcements per 10 s (3 s periodic plus triggered
    /// bursts), so 40 per window is generous; four flips in 12 s is two
    /// full die/revive cycles inside four update periods — churn no
    /// honest route survives twice.
    pub fn standard() -> GuardPolicy {
        GuardPolicy {
            enabled: true,
            topology_radius: None,
            rate_window: Duration::from_secs(10),
            rate_limit: 40,
            flap_window: Duration::from_secs(12),
            flap_threshold: 4,
            holddown: Duration::from_secs(20),
            quarantine_threshold: 6,
            quarantine_parole: Duration::from_secs(45),
        }
    }

    /// The explicit trusting policy (same as `Default`): the standard
    /// knob values with the master switch off.
    pub fn off() -> GuardPolicy {
        GuardPolicy {
            enabled: false,
            ..GuardPolicy::standard()
        }
    }
}

/// Message-level outcome of admission, in increasing severity. A
/// message earns the worst verdict any of its entries earned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardVerdict {
    /// Every entry admitted unchanged.
    Accepted,
    /// At least one entry was dropped or clamped.
    Sanitized,
    /// At least one prefix is under hold-down (or the message was
    /// rate-limited away).
    Damped,
    /// The neighbor is quarantined; the message was discarded.
    Quarantined,
}

impl GuardVerdict {
    /// Short display name (used as a counter suffix in telemetry).
    pub fn name(self) -> &'static str {
        match self {
            GuardVerdict::Accepted => "accepted",
            GuardVerdict::Sanitized => "sanitized",
            GuardVerdict::Damped => "damped",
            GuardVerdict::Quarantined => "quarantined",
        }
    }
}

/// Per-neighbor verdict totals, one counter per [`GuardVerdict`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborVerdicts {
    /// Messages admitted unchanged.
    pub accepted: u64,
    /// Messages with at least one entry dropped or clamped.
    pub sanitized: u64,
    /// Messages damped (hold-down suppression or rate limit).
    pub damped: u64,
    /// Messages discarded at the quarantine wall.
    pub quarantined: u64,
}

/// One observable guard action, drained by the owner into the flight
/// recorder — control-plane misbehavior must be measurable in-protocol,
/// not just injected.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardIncident {
    /// Entries were dropped and/or clamped out of a message.
    Sanitized {
        /// Who sent the message.
        neighbor: Ipv4Address,
        /// Entries rejected outright.
        dropped: usize,
        /// Entries admitted with a corrected metric.
        clamped: usize,
    },
    /// A flapping prefix tripped its hold-down.
    Damped {
        /// Who sent the flapping announcements.
        neighbor: Ipv4Address,
        /// The prefix now suppressed.
        prefix: Ipv4Cidr,
        /// When the hold-down expires.
        until: Instant,
    },
    /// A message exceeded the per-neighbor rate limit.
    RateLimited {
        /// The over-talkative neighbor.
        neighbor: Ipv4Address,
    },
    /// Accumulated offenses quarantined the neighbor.
    Quarantined {
        /// The quarantined neighbor.
        neighbor: Ipv4Address,
        /// When parole is due.
        until: Instant,
    },
    /// A quarantine expired; the neighbor is heard again.
    Paroled {
        /// The paroled neighbor.
        neighbor: Ipv4Address,
    },
}

impl fmt::Display for GuardIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardIncident::Sanitized { neighbor, dropped, clamped } => write!(
                f,
                "sanitized {neighbor}: {dropped} dropped, {clamped} clamped"
            ),
            GuardIncident::Damped { neighbor, prefix, until } => write!(
                f,
                "damped {prefix} from {neighbor} until t={:.1}s",
                until.total_micros() as f64 / 1e6
            ),
            GuardIncident::RateLimited { neighbor } => {
                write!(f, "rate-limited {neighbor}")
            }
            GuardIncident::Quarantined { neighbor, until } => write!(
                f,
                "quarantined {neighbor} until t={:.1}s",
                until.total_micros() as f64 / 1e6
            ),
            GuardIncident::Paroled { neighbor } => write!(f, "paroled {neighbor}"),
        }
    }
}

/// What admission decided: the entries the engine may believe, plus the
/// message-level verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// The sanitized entry list (possibly empty).
    pub entries: Vec<RipEntry>,
    /// The worst verdict any entry earned.
    pub verdict: GuardVerdict,
}

/// Flap-damping state for one (neighbor, prefix).
#[derive(Debug, Clone)]
struct PrefixState {
    last_reachable: bool,
    window_start: Instant,
    flips: u32,
    holddown_until: Option<Instant>,
}

impl PrefixState {
    fn new(now: Instant, reachable: bool) -> PrefixState {
        PrefixState {
            last_reachable: reachable,
            window_start: now,
            flips: 0,
            holddown_until: None,
        }
    }
}

/// Everything the guard remembers about one neighbor.
#[derive(Debug, Clone)]
struct NeighborState {
    msg_window_start: Instant,
    msgs_in_window: u32,
    offenses: u32,
    quarantined_until: Option<Instant>,
    verdicts: NeighborVerdicts,
    prefixes: BTreeMap<Ipv4Cidr, PrefixState>,
}

impl NeighborState {
    fn new(now: Instant) -> NeighborState {
        NeighborState {
            msg_window_start: now,
            msgs_in_window: 0,
            offenses: 0,
            quarantined_until: None,
            verdicts: NeighborVerdicts::default(),
            prefixes: BTreeMap::new(),
        }
    }
}

/// The guard itself: per-neighbor admission state plus the incident log
/// the owner drains into telemetry. All state lives in `BTreeMap`s so
/// iteration — and therefore every harvested counter — is
/// deterministic.
#[derive(Debug, Clone)]
pub struct RouteGuard {
    policy: GuardPolicy,
    neighbors: BTreeMap<Ipv4Address, NeighborState>,
    incidents: Vec<GuardIncident>,
}

impl RouteGuard {
    /// A guard with the given policy and no history.
    pub fn new(policy: GuardPolicy) -> RouteGuard {
        RouteGuard {
            policy,
            neighbors: BTreeMap::new(),
            incidents: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Replace the policy and forget all per-neighbor history (changing
    /// the rules mid-game would make old offenses incomparable).
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        self.policy = policy;
        self.reset();
    }

    /// Whether admission is enforced at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// Forget all per-neighbor state and pending incidents; the policy
    /// survives (it is configuration, not conversation state).
    pub fn reset(&mut self) {
        self.neighbors.clear();
        self.incidents.clear();
    }

    /// Per-neighbor verdict totals, in address order.
    pub fn verdicts(&self) -> impl Iterator<Item = (Ipv4Address, NeighborVerdicts)> + '_ {
        self.neighbors.iter().map(|(addr, s)| (*addr, s.verdicts))
    }

    /// Take the pending incident log (oldest first).
    pub fn drain_incidents(&mut self) -> Vec<GuardIncident> {
        std::mem::take(&mut self.incidents)
    }

    /// How many neighbors are quarantined at `now`.
    pub fn quarantined_count(&self, now: Instant) -> usize {
        self.neighbors
            .values()
            .filter(|s| s.quarantined_until.is_some_and(|t| now < t))
            .count()
    }

    /// Admit (what survives of) an announcement from `neighbor`.
    /// `own_prefixes` lists the owner's *live* connected networks — the
    /// prefixes nobody else may claim a finite-metric route to, unless
    /// they share the link.
    pub fn admit(
        &mut self,
        neighbor: Ipv4Address,
        entries: &[RipEntry],
        now: Instant,
        own_prefixes: &[Ipv4Cidr],
    ) -> Admission {
        let p = self.policy;
        let state = self
            .neighbors
            .entry(neighbor)
            .or_insert_with(|| NeighborState::new(now));

        // 1. Quarantine wall, with timed parole.
        if let Some(until) = state.quarantined_until {
            if now < until {
                state.verdicts.quarantined += 1;
                return Admission {
                    entries: Vec::new(),
                    verdict: GuardVerdict::Quarantined,
                };
            }
            *state = NeighborState::new(now);
            self.incidents.push(GuardIncident::Paroled { neighbor });
        }

        // 2. Per-neighbor rate limit (fixed window).
        if now.duration_since(state.msg_window_start) >= p.rate_window {
            state.msg_window_start = now;
            state.msgs_in_window = 0;
        }
        state.msgs_in_window += 1;
        if state.msgs_in_window > p.rate_limit {
            state.offenses += 1;
            self.incidents.push(GuardIncident::RateLimited { neighbor });
            if state.offenses >= p.quarantine_threshold {
                let until = now + p.quarantine_parole;
                state.quarantined_until = Some(until);
                self.incidents
                    .push(GuardIncident::Quarantined { neighbor, until });
            }
            state.verdicts.damped += 1;
            return Admission {
                entries: Vec::new(),
                verdict: GuardVerdict::Damped,
            };
        }

        // 3. Per-entry sanitization, then 4. flap damping.
        let mut admitted = Vec::with_capacity(entries.len());
        let mut dropped = 0usize;
        let mut clamped = 0usize;
        let mut damped_any = false;
        for entry in entries {
            if entry.prefix.prefix_len() > 32 {
                dropped += 1;
                continue;
            }
            let mut metric = entry.metric;
            if metric > INFINITY_METRIC {
                metric = INFINITY_METRIC;
                clamped += 1;
            }
            if metric == 0 {
                // Below the minimum any honest gateway can announce: the
                // black-hole signature.
                dropped += 1;
                continue;
            }
            if let Some(radius) = p.topology_radius {
                if metric < INFINITY_METRIC && metric > radius {
                    metric = INFINITY_METRIC;
                    clamped += 1;
                }
            }
            let prefix = entry.prefix.network();
            if metric < INFINITY_METRIC
                && own_prefixes.iter().any(|own| own.network() == prefix)
                && !prefix.contains(neighbor)
            {
                // A distant neighbor claims a live route to our own
                // connected network. (An on-link peer sharing the
                // prefix is normal; infinity echoes are poisoned
                // reverse — both pass.)
                dropped += 1;
                continue;
            }

            let reachable = metric < INFINITY_METRIC;
            let ps = state
                .prefixes
                .entry(prefix)
                .or_insert_with(|| PrefixState::new(now, reachable));
            if let Some(until) = ps.holddown_until {
                if now < until {
                    damped_any = true;
                    continue;
                }
                // Hold-down served: the prefix starts over.
                *ps = PrefixState::new(now, reachable);
            } else if ps.last_reachable != reachable {
                if now.duration_since(ps.window_start) >= p.flap_window {
                    ps.window_start = now;
                    ps.flips = 0;
                }
                ps.flips += 1;
                ps.last_reachable = reachable;
                if ps.flips >= p.flap_threshold {
                    let until = now + p.holddown;
                    ps.holddown_until = Some(until);
                    state.offenses += 1;
                    self.incidents
                        .push(GuardIncident::Damped { neighbor, prefix, until });
                    damped_any = true;
                    continue;
                }
            }
            admitted.push(RipEntry {
                prefix: entry.prefix,
                metric,
            });
        }

        if dropped + clamped > 0 {
            self.incidents.push(GuardIncident::Sanitized {
                neighbor,
                dropped,
                clamped,
            });
        }
        if state.quarantined_until.is_none() && state.offenses >= p.quarantine_threshold {
            let until = now + p.quarantine_parole;
            state.quarantined_until = Some(until);
            self.incidents
                .push(GuardIncident::Quarantined { neighbor, until });
        }

        let mut verdict = GuardVerdict::Accepted;
        if dropped + clamped > 0 {
            verdict = verdict.max(GuardVerdict::Sanitized);
        }
        if damped_any {
            verdict = verdict.max(GuardVerdict::Damped);
        }
        match verdict {
            GuardVerdict::Accepted => state.verdicts.accepted += 1,
            GuardVerdict::Sanitized => state.verdicts.sanitized += 1,
            GuardVerdict::Damped => state.verdicts.damped += 1,
            GuardVerdict::Quarantined => state.verdicts.quarantined += 1,
        }
        Admission {
            entries: admitted,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn entry(prefix: &str, metric: u8) -> RipEntry {
        RipEntry {
            prefix: cidr(prefix),
            metric,
        }
    }

    fn guard() -> RouteGuard {
        RouteGuard::new(GuardPolicy::standard())
    }

    fn secs(s: u64) -> Instant {
        Instant::from_secs(s)
    }

    #[test]
    fn default_policy_is_off_standard_is_on() {
        assert!(!GuardPolicy::default().enabled);
        assert!(!GuardPolicy::off().enabled);
        assert!(GuardPolicy::standard().enabled);
        assert!(!RouteGuard::new(GuardPolicy::off()).enabled());
    }

    #[test]
    fn clean_message_accepted_verbatim() {
        let mut g = guard();
        let entries = [entry("10.9.0.0/16", 2), entry("10.8.0.0/16", 16)];
        let a = g.admit(addr("10.0.0.2"), &entries, secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries, entries.to_vec());
        assert!(g.drain_incidents().is_empty());
    }

    #[test]
    fn metric_zero_is_dropped_as_blackhole_signature() {
        let mut g = guard();
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 0), entry("10.8.0.0/16", 3)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(a.entries, vec![entry("10.8.0.0/16", 3)]);
        let incidents = g.drain_incidents();
        assert_eq!(
            incidents,
            vec![GuardIncident::Sanitized {
                neighbor: addr("10.0.0.2"),
                dropped: 1,
                clamped: 0,
            }]
        );
    }

    #[test]
    fn over_infinity_metric_clamped() {
        let mut g = guard();
        let a = g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 200)], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(a.entries, vec![entry("10.9.0.0/16", INFINITY_METRIC)]);
    }

    #[test]
    fn radius_clamps_impossible_finite_metrics() {
        let mut policy = GuardPolicy::standard();
        policy.topology_radius = Some(6);
        let mut g = RouteGuard::new(policy);
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 7), entry("10.8.0.0/16", 6)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(
            a.entries,
            vec![
                entry("10.9.0.0/16", INFINITY_METRIC),
                entry("10.8.0.0/16", 6)
            ]
        );
    }

    #[test]
    fn off_link_echo_of_own_prefix_rejected() {
        let mut g = guard();
        let own = [cidr("10.1.0.0/16")];
        // A neighbor outside 10.1/16 claims a finite route to it: lie.
        let a = g.admit(addr("10.99.0.2"), &[entry("10.1.0.0/16", 2)], secs(0), &own);
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert!(a.entries.is_empty());
        // Infinity echoes (poisoned reverse) pass.
        let a = g.admit(
            addr("10.99.0.2"),
            &[entry("10.1.0.0/16", INFINITY_METRIC)],
            secs(1),
            &own,
        );
        assert_eq!(a.verdict, GuardVerdict::Accepted);
    }

    #[test]
    fn on_link_peer_may_share_our_prefix() {
        let mut g = guard();
        // The far end of a point-to-point link advertises the link
        // prefix we also have connected: normal, not an attack.
        let own = [cidr("10.12.0.0/24")];
        let a = g.admit(addr("10.12.0.2"), &[entry("10.12.0.0/24", 1)], secs(0), &own);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn flapping_prefix_trips_holddown_then_paroles() {
        let mut g = guard(); // threshold 4 flips / 12 s, holddown 20 s
        let n = addr("10.0.0.2");
        // Alternate reachable/unreachable every second: flips at t=1..4.
        for t in 0..4u64 {
            let metric = if t % 2 == 0 { 2 } else { INFINITY_METRIC };
            g.admit(n, &[entry("10.9.0.0/16", metric)], secs(t), &[]);
        }
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(4), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert!(a.entries.is_empty(), "prefix suppressed under hold-down");
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Damped { .. })));
        // Hold-down still active at t=23 (tripped at t=4, holds 20 s).
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(23), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        // Expired at t=24: the prefix is re-admitted fresh.
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(25), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn slow_flaps_never_trip() {
        let mut g = guard(); // window 12 s
        let n = addr("10.0.0.2");
        // One flip per 13 s: the window resets before the count builds.
        for t in 0..8u64 {
            let metric = if t % 2 == 0 { 2 } else { INFINITY_METRIC };
            let a = g.admit(n, &[entry("10.9.0.0/16", metric)], secs(t * 13), &[]);
            assert_ne!(a.verdict, GuardVerdict::Damped, "flip {t}");
        }
    }

    #[test]
    fn rate_limit_drops_excess_messages() {
        let mut g = guard(); // 40 per 10 s
        let n = addr("10.0.0.2");
        for _ in 0..40 {
            let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(1), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted);
        }
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(1), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert!(a.entries.is_empty());
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::RateLimited { .. })));
        // A new window admits again.
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(12), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
    }

    #[test]
    fn offenses_quarantine_then_parole_resets() {
        let mut policy = GuardPolicy::standard();
        policy.flap_threshold = 1; // every flip is an instant offense
        policy.quarantine_threshold = 2;
        policy.quarantine_parole = Duration::from_secs(30);
        policy.holddown = Duration::from_secs(1);
        let mut g = RouteGuard::new(policy);
        let n = addr("10.0.0.2");
        // Two prefixes flip once each: two offenses → quarantine.
        g.admit(n, &[entry("10.9.0.0/16", 2), entry("10.8.0.0/16", 2)], secs(0), &[]);
        let a = g.admit(
            n,
            &[
                entry("10.9.0.0/16", INFINITY_METRIC),
                entry("10.8.0.0/16", INFINITY_METRIC),
            ],
            secs(1),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert_eq!(g.quarantined_count(secs(2)), 1);
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Quarantined { .. })));
        // While quarantined: everything discarded.
        let a = g.admit(n, &[entry("10.7.0.0/16", 2)], secs(10), &[]);
        assert_eq!(a.verdict, GuardVerdict::Quarantined);
        assert!(a.entries.is_empty());
        // After parole (t=31): heard again, history wiped.
        let a = g.admit(n, &[entry("10.7.0.0/16", 2)], secs(32), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(g.quarantined_count(secs(32)), 0);
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Paroled { .. })));
    }

    #[test]
    fn verdict_totals_accumulate_per_neighbor() {
        let mut g = guard();
        let n1 = addr("10.0.0.2");
        let n2 = addr("10.0.0.3");
        g.admit(n1, &[entry("10.9.0.0/16", 2)], secs(0), &[]);
        g.admit(n1, &[entry("10.9.0.0/16", 0)], secs(1), &[]);
        g.admit(n2, &[entry("10.9.0.0/16", 2)], secs(2), &[]);
        let v: Vec<_> = g.verdicts().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, n1);
        assert_eq!(v[0].1.accepted, 1);
        assert_eq!(v[0].1.sanitized, 1);
        assert_eq!(v[1].0, n2);
        assert_eq!(v[1].1.accepted, 1);
    }

    #[test]
    fn reset_forgets_history_keeps_policy() {
        let mut g = guard();
        g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 0)], secs(0), &[]);
        g.reset();
        assert_eq!(g.verdicts().count(), 0);
        assert!(g.drain_incidents().is_empty());
        assert!(g.enabled());
    }

    #[test]
    fn incidents_render_for_the_flight_recorder() {
        let neighbor = addr("10.0.0.2");
        let texts = [
            GuardIncident::Sanitized { neighbor, dropped: 2, clamped: 1 }.to_string(),
            GuardIncident::Damped {
                neighbor,
                prefix: cidr("10.9.0.0/16"),
                until: secs(30),
            }
            .to_string(),
            GuardIncident::RateLimited { neighbor }.to_string(),
            GuardIncident::Quarantined { neighbor, until: secs(60) }.to_string(),
            GuardIncident::Paroled { neighbor }.to_string(),
        ];
        assert_eq!(texts[0], "sanitized 10.0.0.2: 2 dropped, 1 clamped");
        assert_eq!(texts[1], "damped 10.9.0.0/16 from 10.0.0.2 until t=30.0s");
        assert_eq!(texts[2], "rate-limited 10.0.0.2");
        assert_eq!(texts[3], "quarantined 10.0.0.2 until t=60.0s");
        assert_eq!(texts[4], "paroled 10.0.0.2");
    }
}
