//! Route-guard: defensive admission of routing announcements.
//!
//! Clark's fourth goal — distributed management — is the one the 1988
//! architecture satisfied least: gateways run by different
//! administrations exchange routing tables, yet nothing in the
//! architecture defends against a neighbor that *lies*. A compromised
//! gateway can advertise a metric-0 black hole for a victim prefix,
//! originate prefixes it does not own, replay stale tables, or flap its
//! announcements to churn every table in reach.
//!
//! The [`RouteGuard`] sits between the wire and
//! [`crate::DvEngine::handle_update`] and applies the defenses the 1988
//! design lacked, in order:
//!
//! 1. **Quarantine wall** — announcements from a quarantined neighbor
//!    are discarded wholesale until a timed parole expires.
//! 2. **Per-neighbor rate limiting** — a fixed window caps how many
//!    announcements one neighbor may send; excess messages are dropped
//!    and count as offenses.
//! 3. **Wire-level sanitization** — entries with out-of-range prefix
//!    lengths are dropped, metrics above infinity are clamped, metric-0
//!    entries are rejected outright (no honest gateway advertises below
//!    1 — a connected network costs 1 — so metric 0 is the black-hole
//!    signature), finite metrics beyond the configured topology radius
//!    are clamped to infinity, and finite-metric echoes of our own
//!    connected prefixes from off-link neighbors are rejected (an
//!    on-link peer legitimately shares a link prefix; a distant liar
//!    claiming a better route to our own network does not).
//! 4. **Flap damping** — per (neighbor, prefix), reachable↔unreachable
//!    transitions inside a window trip a hold-down that suppresses the
//!    prefix until the hold-down expires.
//!
//! Rate-limit hits and damping trips accumulate as offenses; enough
//! offenses quarantine the neighbor. Sanitization does *not* escalate —
//! it already neutralizes the bad entry surgically, and escalating it
//! would let a single poisoned prefix take down every honest route the
//! same neighbor carries.
//!
//! Two extensions close gaps PR 4 left open:
//!
//! - **Origin attestation** (`GuardPolicy::attestation`, with an
//!   [`OriginRegistry`] installed): a finite-metric entry for a
//!   registered prefix must carry a valid, fresh
//!   [`Attestation`](catenet_auth::Attestation) from a
//!   registered owner. Failures drop the *entry* — like sanitization,
//!   never the neighbor, because an honest gateway legitimately relays
//!   a forged announcement it could not itself verify was stripped
//!   upstream, and quarantining the relay would take down every honest
//!   route it carries. Repeated failures for one prefix trip a
//!   *prefix-level* hold-down instead: the lie is quarantined, the liar's
//!   honest routes survive. Unreachable (infinity) entries pass
//!   unattested — a withdrawal claims nothing — and unregistered
//!   finite-metric prefixes are dropped outright (bogus origination).
//! - **Boot learning window** (`GuardPolicy::boot_window`): for guards
//!   armed at t=0, the initial distance-vector storm — full tables,
//!   triggered bursts, transient count-to-infinity flips — looks exactly
//!   like the attacks rate limiting and flap damping exist to stop.
//!   During the window (measured from the first admitted message, so it
//!   restarts after a crash/reset) those two *escalating* defenses
//!   observe without enforcing; sanitization and attestation, which
//!   judge each entry on its own evidence, stay fully armed from the
//!   first packet.
//!
//! Everything is behind a [`GuardPolicy`] switch whose default is *off*
//! — the trusting 1988 behavior, kept as the reference the defense is
//! measured against (experiment E14). Every verdict and incident is
//! observable: per Allman's measurability principle, a rejected
//! announcement is a first-class event, not a silent drop.

use crate::message::{RipEntry, INFINITY_METRIC};
use catenet_auth::{Freshness, OriginId, OriginRegistry, ReplayWindow};
use catenet_sim::{Duration, Instant};
use catenet_wire::{Ipv4Address, Ipv4Cidr};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// The guard's knobs. `Default` is the policy-off trusting behavior;
/// [`GuardPolicy::standard`] enables the full defense with values tuned
/// to the fast DV profile ([`crate::DvConfig::fast`], 3 s updates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Master switch. Off = announcements flow straight into the
    /// engine, exactly as the 1988 architecture trusted them to.
    pub enabled: bool,
    /// If set, no honest finite metric can exceed this (the known
    /// topology radius plus slack); larger finite metrics are clamped
    /// to infinity.
    pub topology_radius: Option<u8>,
    /// Fixed window over which announcements per neighbor are counted.
    pub rate_window: Duration,
    /// Maximum announcements one neighbor may send per window.
    pub rate_limit: u32,
    /// Window over which reachable↔unreachable flips are counted.
    pub flap_window: Duration,
    /// Flips within the window that trip the hold-down.
    pub flap_threshold: u32,
    /// How long a damped prefix stays suppressed.
    pub holddown: Duration,
    /// Offenses (rate-limit hits + damping trips) that quarantine the
    /// neighbor.
    pub quarantine_threshold: u32,
    /// How long a quarantined neighbor is ignored before parole.
    pub quarantine_parole: Duration,
    /// Boot learning window, measured from the first admitted message:
    /// rate limiting and flap damping observe without enforcing until it
    /// elapses. Zero (the default) keeps the original always-armed
    /// behavior.
    pub boot_window: Duration,
    /// Require origin attestations for finite-metric entries on
    /// registered prefixes (needs an [`OriginRegistry`] installed via
    /// [`RouteGuard::set_registry`]).
    pub attestation: bool,
    /// Replay tolerance, in attestation serial units (serials advance
    /// with virtual-time seconds, so this is roughly seconds of
    /// propagation lag a stored attestation may accumulate).
    pub attest_window: u32,
    /// Attestation failures for one (neighbor, prefix) that trip the
    /// prefix-level hold-down.
    pub attest_strikes: u32,
    /// How long an attestation-quarantined prefix stays suppressed.
    pub attest_holddown: Duration,
}

impl Default for GuardPolicy {
    fn default() -> GuardPolicy {
        GuardPolicy::off()
    }
}

impl GuardPolicy {
    /// The full defense, tuned to the fast DV profile: honest neighbors
    /// send ~4 announcements per 10 s (3 s periodic plus triggered
    /// bursts), so 40 per window is generous; four flips in 12 s is two
    /// full die/revive cycles inside four update periods — churn no
    /// honest route survives twice.
    pub fn standard() -> GuardPolicy {
        GuardPolicy {
            enabled: true,
            topology_radius: None,
            rate_window: Duration::from_secs(10),
            rate_limit: 40,
            flap_window: Duration::from_secs(12),
            flap_threshold: 4,
            holddown: Duration::from_secs(20),
            quarantine_threshold: 6,
            quarantine_parole: Duration::from_secs(45),
            boot_window: Duration::ZERO,
            attestation: false,
            // A stored attestation crosses one hop per 3 s update round,
            // so 64 serial units (~64 s) tolerates any diameter this
            // catenet reaches while expiring recorded adverts quickly.
            attest_window: 64,
            attest_strikes: 3,
            attest_holddown: Duration::from_secs(30),
        }
    }

    /// The explicit trusting policy (same as `Default`): the standard
    /// knob values with the master switch off.
    pub fn off() -> GuardPolicy {
        GuardPolicy {
            enabled: false,
            ..GuardPolicy::standard()
        }
    }

    /// The standard defense, armable from cold boot: a 30 s learning
    /// window covers the initial DV storm (full-table bursts and
    /// count-to-infinity transients) so t=0 arming never quarantines an
    /// honest neighbor.
    pub fn boot_armed() -> GuardPolicy {
        GuardPolicy {
            boot_window: Duration::from_secs(30),
            ..GuardPolicy::standard()
        }
    }

    /// [`GuardPolicy::boot_armed`] plus origin attestation.
    pub fn attested() -> GuardPolicy {
        GuardPolicy {
            attestation: true,
            ..GuardPolicy::boot_armed()
        }
    }
}

/// Message-level outcome of admission, in increasing severity. A
/// message earns the worst verdict any of its entries earned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GuardVerdict {
    /// Every entry admitted unchanged.
    Accepted,
    /// At least one entry was dropped or clamped.
    Sanitized,
    /// At least one prefix is under hold-down (or the message was
    /// rate-limited away).
    Damped,
    /// The neighbor is quarantined; the message was discarded.
    Quarantined,
}

impl GuardVerdict {
    /// Short display name (used as a counter suffix in telemetry).
    pub fn name(self) -> &'static str {
        match self {
            GuardVerdict::Accepted => "accepted",
            GuardVerdict::Sanitized => "sanitized",
            GuardVerdict::Damped => "damped",
            GuardVerdict::Quarantined => "quarantined",
        }
    }
}

/// Per-neighbor verdict totals, one counter per [`GuardVerdict`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborVerdicts {
    /// Messages admitted unchanged.
    pub accepted: u64,
    /// Messages with at least one entry dropped or clamped.
    pub sanitized: u64,
    /// Messages damped (hold-down suppression or rate limit).
    pub damped: u64,
    /// Messages discarded at the quarantine wall.
    pub quarantined: u64,
    /// *Entries* (not messages) dropped for attestation failures —
    /// missing, forged, misattributed, stale, or bogus origination.
    pub attest_rejected: u64,
}

/// Why an attestation check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestFailure {
    /// Finite-metric entry for a registered prefix carried no
    /// attestation (MAC-less forgery, or a stripped hijack).
    Missing,
    /// Finite-metric entry for a prefix no origin is registered to
    /// announce (bogus origination).
    UnknownPrefix,
    /// The claimed origin is not a registered owner of the prefix.
    WrongOrigin,
    /// The tag did not verify under the claimed origin's key
    /// (origin-key spoofing).
    BadMac,
    /// The serial is older than the replay window tolerates (a
    /// recorded, stale-but-signed advertisement).
    Stale,
}

impl fmt::Display for AttestFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestFailure::Missing => write!(f, "missing attestation"),
            AttestFailure::UnknownPrefix => write!(f, "unregistered prefix"),
            AttestFailure::WrongOrigin => write!(f, "wrong origin"),
            AttestFailure::BadMac => write!(f, "bad mac"),
            AttestFailure::Stale => write!(f, "stale serial"),
        }
    }
}

/// One observable guard action, drained by the owner into the flight
/// recorder — control-plane misbehavior must be measurable in-protocol,
/// not just injected.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardIncident {
    /// Entries were dropped and/or clamped out of a message.
    Sanitized {
        /// Who sent the message.
        neighbor: Ipv4Address,
        /// Entries rejected outright.
        dropped: usize,
        /// Entries admitted with a corrected metric.
        clamped: usize,
    },
    /// A flapping prefix tripped its hold-down.
    Damped {
        /// Who sent the flapping announcements.
        neighbor: Ipv4Address,
        /// The prefix now suppressed.
        prefix: Ipv4Cidr,
        /// When the hold-down expires.
        until: Instant,
    },
    /// A message exceeded the per-neighbor rate limit.
    RateLimited {
        /// The over-talkative neighbor.
        neighbor: Ipv4Address,
    },
    /// Accumulated offenses quarantined the neighbor.
    Quarantined {
        /// The quarantined neighbor.
        neighbor: Ipv4Address,
        /// When parole is due.
        until: Instant,
    },
    /// A quarantine expired; the neighbor is heard again.
    Paroled {
        /// The paroled neighbor.
        neighbor: Ipv4Address,
    },
    /// An entry failed its origin-attestation check and was dropped.
    AttestRejected {
        /// Who relayed the failing entry.
        neighbor: Ipv4Address,
        /// The prefix the entry claimed.
        prefix: Ipv4Cidr,
        /// What failed.
        reason: AttestFailure,
    },
    /// Repeated attestation failures quarantined one prefix from one
    /// neighbor (the lie is suppressed; the neighbor's honest routes
    /// survive).
    PrefixQuarantined {
        /// Who keeps relaying the failing entry.
        neighbor: Ipv4Address,
        /// The suppressed prefix.
        prefix: Ipv4Cidr,
        /// When the hold-down expires.
        until: Instant,
    },
}

impl fmt::Display for GuardIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardIncident::Sanitized { neighbor, dropped, clamped } => write!(
                f,
                "sanitized {neighbor}: {dropped} dropped, {clamped} clamped"
            ),
            GuardIncident::Damped { neighbor, prefix, until } => write!(
                f,
                "damped {prefix} from {neighbor} until t={:.1}s",
                until.total_micros() as f64 / 1e6
            ),
            GuardIncident::RateLimited { neighbor } => {
                write!(f, "rate-limited {neighbor}")
            }
            GuardIncident::Quarantined { neighbor, until } => write!(
                f,
                "quarantined {neighbor} until t={:.1}s",
                until.total_micros() as f64 / 1e6
            ),
            GuardIncident::Paroled { neighbor } => write!(f, "paroled {neighbor}"),
            GuardIncident::AttestRejected { neighbor, prefix, reason } => {
                write!(f, "attest-rejected {prefix} from {neighbor}: {reason}")
            }
            GuardIncident::PrefixQuarantined { neighbor, prefix, until } => write!(
                f,
                "prefix-quarantined {prefix} from {neighbor} until t={:.1}s",
                until.total_micros() as f64 / 1e6
            ),
        }
    }
}

/// What admission decided: the entries the engine may believe, plus the
/// message-level verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// The sanitized entry list (possibly empty).
    pub entries: Vec<RipEntry>,
    /// The worst verdict any entry earned.
    pub verdict: GuardVerdict,
}

/// Flap-damping state for one (neighbor, prefix).
#[derive(Debug, Clone)]
struct PrefixState {
    last_reachable: bool,
    window_start: Instant,
    flips: u32,
    holddown_until: Option<Instant>,
}

impl PrefixState {
    fn new(now: Instant, reachable: bool) -> PrefixState {
        PrefixState {
            last_reachable: reachable,
            window_start: now,
            flips: 0,
            holddown_until: None,
        }
    }
}

/// Everything the guard remembers about one neighbor.
#[derive(Debug, Clone)]
struct NeighborState {
    msg_window_start: Instant,
    msgs_in_window: u32,
    offenses: u32,
    quarantined_until: Option<Instant>,
    verdicts: NeighborVerdicts,
    prefixes: BTreeMap<Ipv4Cidr, PrefixState>,
    attest_strikes: BTreeMap<Ipv4Cidr, u32>,
    attest_holddown: BTreeMap<Ipv4Cidr, Instant>,
}

impl NeighborState {
    fn new(now: Instant) -> NeighborState {
        NeighborState {
            msg_window_start: now,
            msgs_in_window: 0,
            offenses: 0,
            quarantined_until: None,
            verdicts: NeighborVerdicts::default(),
            prefixes: BTreeMap::new(),
            attest_strikes: BTreeMap::new(),
            attest_holddown: BTreeMap::new(),
        }
    }
}

/// The guard itself: per-neighbor admission state plus the incident log
/// the owner drains into telemetry. All state lives in `BTreeMap`s so
/// iteration — and therefore every harvested counter — is
/// deterministic.
#[derive(Debug, Clone)]
pub struct RouteGuard {
    policy: GuardPolicy,
    registry: Option<Rc<OriginRegistry>>,
    boot_started: Option<Instant>,
    origin_seq: BTreeMap<(OriginId, Ipv4Cidr), ReplayWindow>,
    neighbors: BTreeMap<Ipv4Address, NeighborState>,
    incidents: Vec<GuardIncident>,
}

impl RouteGuard {
    /// A guard with the given policy and no history.
    pub fn new(policy: GuardPolicy) -> RouteGuard {
        RouteGuard {
            policy,
            registry: None,
            boot_started: None,
            origin_seq: BTreeMap::new(),
            neighbors: BTreeMap::new(),
            incidents: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Replace the policy and forget all per-neighbor history (changing
    /// the rules mid-game would make old offenses incomparable).
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        self.policy = policy;
        self.reset();
    }

    /// Whether admission is enforced at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// Install (or remove) the prefix-ownership registry attestation
    /// checks verify against. Configuration, like the policy: it
    /// survives [`RouteGuard::reset`].
    pub fn set_registry(&mut self, registry: Option<Rc<OriginRegistry>>) {
        self.registry = registry;
    }

    /// The installed ownership registry, if any.
    pub fn registry(&self) -> Option<&Rc<OriginRegistry>> {
        self.registry.as_ref()
    }

    /// Forget all per-neighbor state, replay tracking, and pending
    /// incidents; the policy and registry survive (they are
    /// configuration, not conversation state). The boot learning window
    /// restarts at the next admitted message — a rebooted guard faces a
    /// fresh DV storm.
    pub fn reset(&mut self) {
        self.neighbors.clear();
        self.incidents.clear();
        self.origin_seq.clear();
        self.boot_started = None;
    }

    /// Per-neighbor verdict totals, in address order.
    pub fn verdicts(&self) -> impl Iterator<Item = (Ipv4Address, NeighborVerdicts)> + '_ {
        self.neighbors.iter().map(|(addr, s)| (*addr, s.verdicts))
    }

    /// Take the pending incident log (oldest first).
    pub fn drain_incidents(&mut self) -> Vec<GuardIncident> {
        std::mem::take(&mut self.incidents)
    }

    /// How many neighbors are quarantined at `now`.
    pub fn quarantined_count(&self, now: Instant) -> usize {
        self.neighbors
            .values()
            .filter(|s| s.quarantined_until.is_some_and(|t| now < t))
            .count()
    }

    /// How many (neighbor, prefix) pairs are under attestation
    /// hold-down at `now`.
    pub fn quarantined_prefixes(&self, now: Instant) -> usize {
        self.neighbors
            .values()
            .map(|s| s.attest_holddown.values().filter(|&&t| now < t).count())
            .sum()
    }

    /// Admit (what survives of) an announcement from `neighbor`.
    /// `own_prefixes` lists the owner's *live* connected networks — the
    /// prefixes nobody else may claim a finite-metric route to, unless
    /// they share the link.
    pub fn admit(
        &mut self,
        neighbor: Ipv4Address,
        entries: &[RipEntry],
        now: Instant,
        own_prefixes: &[Ipv4Cidr],
    ) -> Admission {
        let p = self.policy;
        // The boot learning window runs from the first admitted message
        // (not the guard's construction): a guard armed at build time
        // starts learning when the network starts talking.
        let boot_started = *self.boot_started.get_or_insert(now);
        let booting = !p.boot_window.is_zero()
            && now.duration_since(boot_started) < p.boot_window;
        let state = self
            .neighbors
            .entry(neighbor)
            .or_insert_with(|| NeighborState::new(now));

        // 1. Quarantine wall, with timed parole.
        if let Some(until) = state.quarantined_until {
            if now < until {
                state.verdicts.quarantined += 1;
                return Admission {
                    entries: Vec::new(),
                    verdict: GuardVerdict::Quarantined,
                };
            }
            *state = NeighborState::new(now);
            self.incidents.push(GuardIncident::Paroled { neighbor });
        }

        // 2. Per-neighbor rate limit (fixed window). During boot the
        // window is tracked but never enforced: a cold-boot full-table
        // storm is indistinguishable from a flood by volume alone.
        if now.duration_since(state.msg_window_start) >= p.rate_window {
            state.msg_window_start = now;
            state.msgs_in_window = 0;
        }
        state.msgs_in_window += 1;
        if !booting && state.msgs_in_window > p.rate_limit {
            state.offenses += 1;
            self.incidents.push(GuardIncident::RateLimited { neighbor });
            if state.offenses >= p.quarantine_threshold {
                let until = now + p.quarantine_parole;
                state.quarantined_until = Some(until);
                self.incidents
                    .push(GuardIncident::Quarantined { neighbor, until });
            }
            state.verdicts.damped += 1;
            return Admission {
                entries: Vec::new(),
                verdict: GuardVerdict::Damped,
            };
        }

        // 3. Per-entry sanitization, 4. origin attestation, then
        // 5. flap damping.
        let mut admitted = Vec::with_capacity(entries.len());
        let mut dropped = 0usize;
        let mut clamped = 0usize;
        let mut rejected = 0usize;
        let mut damped_any = false;
        for entry in entries {
            if entry.prefix.prefix_len() > 32 {
                dropped += 1;
                continue;
            }
            let mut metric = entry.metric;
            if metric > INFINITY_METRIC {
                metric = INFINITY_METRIC;
                clamped += 1;
            }
            if metric == 0 {
                // Below the minimum any honest gateway can announce: the
                // black-hole signature.
                dropped += 1;
                continue;
            }
            if let Some(radius) = p.topology_radius {
                if metric < INFINITY_METRIC && metric > radius {
                    metric = INFINITY_METRIC;
                    clamped += 1;
                }
            }
            let prefix = entry.prefix.network();
            if metric < INFINITY_METRIC
                && own_prefixes.iter().any(|own| own.network() == prefix)
                && !prefix.contains(neighbor)
            {
                // A distant neighbor claims a live route to our own
                // connected network. (An on-link peer sharing the
                // prefix is normal; infinity echoes are poisoned
                // reverse — both pass.)
                dropped += 1;
                continue;
            }

            // Origin attestation: reachability claims for registered
            // prefixes need proof. Active even during boot — the check
            // judges the entry's own evidence, not traffic volume, so
            // there is nothing to learn first.
            if p.attestation && metric < INFINITY_METRIC {
                if let Some(registry) = &self.registry {
                    if let Some(&until) = state.attest_holddown.get(&prefix) {
                        if now < until {
                            // The prefix is quarantined from this
                            // neighbor; the lie stays suppressed.
                            damped_any = true;
                            continue;
                        }
                        state.attest_holddown.remove(&prefix);
                        state.attest_strikes.remove(&prefix);
                    }
                    let failure = if !registry.is_registered(prefix) {
                        Some(AttestFailure::UnknownPrefix)
                    } else {
                        match entry.attestation {
                            None => Some(AttestFailure::Missing),
                            Some(att) if !registry.owns(prefix, att.origin) => {
                                Some(AttestFailure::WrongOrigin)
                            }
                            Some(att) => {
                                let key = registry
                                    .key(att.origin)
                                    .expect("registered owner has a key");
                                if !att.verify(key, prefix) {
                                    Some(AttestFailure::BadMac)
                                } else {
                                    // Replay tracking is keyed on
                                    // (origin, prefix) globally, not per
                                    // neighbor: a per-neighbor high-water
                                    // mark would let a liar replay a
                                    // frozen advert forever to a victim
                                    // that never heard the fresh serial.
                                    let window = self
                                        .origin_seq
                                        .entry((att.origin, prefix))
                                        .or_insert_with(|| ReplayWindow::new(p.attest_window));
                                    match window.check(att.seq) {
                                        Freshness::Stale => Some(AttestFailure::Stale),
                                        Freshness::Fresh | Freshness::InWindow => None,
                                    }
                                }
                            }
                        }
                    };
                    if let Some(reason) = failure {
                        rejected += 1;
                        self.incidents.push(GuardIncident::AttestRejected {
                            neighbor,
                            prefix,
                            reason,
                        });
                        let strikes = state.attest_strikes.entry(prefix).or_insert(0);
                        *strikes += 1;
                        if *strikes >= p.attest_strikes {
                            let until = now + p.attest_holddown;
                            state.attest_holddown.insert(prefix, until);
                            self.incidents.push(GuardIncident::PrefixQuarantined {
                                neighbor,
                                prefix,
                                until,
                            });
                        }
                        continue;
                    }
                }
            }

            // Flap damping observes nothing during boot: the transient
            // reachable↔unreachable flips of initial convergence
            // (count-to-infinity, poisoned reverse races) are not churn
            // worth holding down, and must not seed the flip counters
            // enforcement later judges by.
            if !booting {
                let reachable = metric < INFINITY_METRIC;
                let ps = state
                    .prefixes
                    .entry(prefix)
                    .or_insert_with(|| PrefixState::new(now, reachable));
                if let Some(until) = ps.holddown_until {
                    if now < until {
                        damped_any = true;
                        continue;
                    }
                    // Hold-down served: the prefix starts over.
                    *ps = PrefixState::new(now, reachable);
                } else if ps.last_reachable != reachable {
                    if now.duration_since(ps.window_start) >= p.flap_window {
                        ps.window_start = now;
                        ps.flips = 0;
                    }
                    ps.flips += 1;
                    ps.last_reachable = reachable;
                    if ps.flips >= p.flap_threshold {
                        let until = now + p.holddown;
                        ps.holddown_until = Some(until);
                        state.offenses += 1;
                        self.incidents
                            .push(GuardIncident::Damped { neighbor, prefix, until });
                        damped_any = true;
                        continue;
                    }
                }
            }
            admitted.push(RipEntry {
                prefix: entry.prefix,
                metric,
                attestation: entry.attestation,
            });
        }

        if dropped + clamped > 0 {
            self.incidents.push(GuardIncident::Sanitized {
                neighbor,
                dropped,
                clamped,
            });
        }
        if state.quarantined_until.is_none() && state.offenses >= p.quarantine_threshold {
            let until = now + p.quarantine_parole;
            state.quarantined_until = Some(until);
            self.incidents
                .push(GuardIncident::Quarantined { neighbor, until });
        }

        state.verdicts.attest_rejected += rejected as u64;
        let mut verdict = GuardVerdict::Accepted;
        if dropped + clamped + rejected > 0 {
            verdict = verdict.max(GuardVerdict::Sanitized);
        }
        if damped_any {
            verdict = verdict.max(GuardVerdict::Damped);
        }
        match verdict {
            GuardVerdict::Accepted => state.verdicts.accepted += 1,
            GuardVerdict::Sanitized => state.verdicts.sanitized += 1,
            GuardVerdict::Damped => state.verdicts.damped += 1,
            GuardVerdict::Quarantined => state.verdicts.quarantined += 1,
        }
        Admission {
            entries: admitted,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn entry(prefix: &str, metric: u8) -> RipEntry {
        RipEntry::new(cidr(prefix), metric)
    }

    fn guard() -> RouteGuard {
        RouteGuard::new(GuardPolicy::standard())
    }

    fn secs(s: u64) -> Instant {
        Instant::from_secs(s)
    }

    #[test]
    fn default_policy_is_off_standard_is_on() {
        assert!(!GuardPolicy::default().enabled);
        assert!(!GuardPolicy::off().enabled);
        assert!(GuardPolicy::standard().enabled);
        assert!(!RouteGuard::new(GuardPolicy::off()).enabled());
    }

    #[test]
    fn clean_message_accepted_verbatim() {
        let mut g = guard();
        let entries = [entry("10.9.0.0/16", 2), entry("10.8.0.0/16", 16)];
        let a = g.admit(addr("10.0.0.2"), &entries, secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries, entries.to_vec());
        assert!(g.drain_incidents().is_empty());
    }

    #[test]
    fn metric_zero_is_dropped_as_blackhole_signature() {
        let mut g = guard();
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 0), entry("10.8.0.0/16", 3)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(a.entries, vec![entry("10.8.0.0/16", 3)]);
        let incidents = g.drain_incidents();
        assert_eq!(
            incidents,
            vec![GuardIncident::Sanitized {
                neighbor: addr("10.0.0.2"),
                dropped: 1,
                clamped: 0,
            }]
        );
    }

    #[test]
    fn over_infinity_metric_clamped() {
        let mut g = guard();
        let a = g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 200)], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(a.entries, vec![entry("10.9.0.0/16", INFINITY_METRIC)]);
    }

    #[test]
    fn radius_clamps_impossible_finite_metrics() {
        let mut policy = GuardPolicy::standard();
        policy.topology_radius = Some(6);
        let mut g = RouteGuard::new(policy);
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 7), entry("10.8.0.0/16", 6)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(
            a.entries,
            vec![
                entry("10.9.0.0/16", INFINITY_METRIC),
                entry("10.8.0.0/16", 6)
            ]
        );
    }

    #[test]
    fn off_link_echo_of_own_prefix_rejected() {
        let mut g = guard();
        let own = [cidr("10.1.0.0/16")];
        // A neighbor outside 10.1/16 claims a finite route to it: lie.
        let a = g.admit(addr("10.99.0.2"), &[entry("10.1.0.0/16", 2)], secs(0), &own);
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert!(a.entries.is_empty());
        // Infinity echoes (poisoned reverse) pass.
        let a = g.admit(
            addr("10.99.0.2"),
            &[entry("10.1.0.0/16", INFINITY_METRIC)],
            secs(1),
            &own,
        );
        assert_eq!(a.verdict, GuardVerdict::Accepted);
    }

    #[test]
    fn on_link_peer_may_share_our_prefix() {
        let mut g = guard();
        // The far end of a point-to-point link advertises the link
        // prefix we also have connected: normal, not an attack.
        let own = [cidr("10.12.0.0/24")];
        let a = g.admit(addr("10.12.0.2"), &[entry("10.12.0.0/24", 1)], secs(0), &own);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn flapping_prefix_trips_holddown_then_paroles() {
        let mut g = guard(); // threshold 4 flips / 12 s, holddown 20 s
        let n = addr("10.0.0.2");
        // Alternate reachable/unreachable every second: flips at t=1..4.
        for t in 0..4u64 {
            let metric = if t % 2 == 0 { 2 } else { INFINITY_METRIC };
            g.admit(n, &[entry("10.9.0.0/16", metric)], secs(t), &[]);
        }
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(4), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert!(a.entries.is_empty(), "prefix suppressed under hold-down");
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Damped { .. })));
        // Hold-down still active at t=23 (tripped at t=4, holds 20 s).
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(23), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        // Expired at t=24: the prefix is re-admitted fresh.
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(25), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn slow_flaps_never_trip() {
        let mut g = guard(); // window 12 s
        let n = addr("10.0.0.2");
        // One flip per 13 s: the window resets before the count builds.
        for t in 0..8u64 {
            let metric = if t % 2 == 0 { 2 } else { INFINITY_METRIC };
            let a = g.admit(n, &[entry("10.9.0.0/16", metric)], secs(t * 13), &[]);
            assert_ne!(a.verdict, GuardVerdict::Damped, "flip {t}");
        }
    }

    #[test]
    fn rate_limit_drops_excess_messages() {
        let mut g = guard(); // 40 per 10 s
        let n = addr("10.0.0.2");
        for _ in 0..40 {
            let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(1), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted);
        }
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(1), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert!(a.entries.is_empty());
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::RateLimited { .. })));
        // A new window admits again.
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(12), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
    }

    #[test]
    fn offenses_quarantine_then_parole_resets() {
        let mut policy = GuardPolicy::standard();
        policy.flap_threshold = 1; // every flip is an instant offense
        policy.quarantine_threshold = 2;
        policy.quarantine_parole = Duration::from_secs(30);
        policy.holddown = Duration::from_secs(1);
        let mut g = RouteGuard::new(policy);
        let n = addr("10.0.0.2");
        // Two prefixes flip once each: two offenses → quarantine.
        g.admit(n, &[entry("10.9.0.0/16", 2), entry("10.8.0.0/16", 2)], secs(0), &[]);
        let a = g.admit(
            n,
            &[
                entry("10.9.0.0/16", INFINITY_METRIC),
                entry("10.8.0.0/16", INFINITY_METRIC),
            ],
            secs(1),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert_eq!(g.quarantined_count(secs(2)), 1);
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Quarantined { .. })));
        // While quarantined: everything discarded.
        let a = g.admit(n, &[entry("10.7.0.0/16", 2)], secs(10), &[]);
        assert_eq!(a.verdict, GuardVerdict::Quarantined);
        assert!(a.entries.is_empty());
        // After parole (t=31): heard again, history wiped.
        let a = g.admit(n, &[entry("10.7.0.0/16", 2)], secs(32), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(g.quarantined_count(secs(32)), 0);
        assert!(g
            .drain_incidents()
            .iter()
            .any(|i| matches!(i, GuardIncident::Paroled { .. })));
    }

    #[test]
    fn verdict_totals_accumulate_per_neighbor() {
        let mut g = guard();
        let n1 = addr("10.0.0.2");
        let n2 = addr("10.0.0.3");
        g.admit(n1, &[entry("10.9.0.0/16", 2)], secs(0), &[]);
        g.admit(n1, &[entry("10.9.0.0/16", 0)], secs(1), &[]);
        g.admit(n2, &[entry("10.9.0.0/16", 2)], secs(2), &[]);
        let v: Vec<_> = g.verdicts().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, n1);
        assert_eq!(v[0].1.accepted, 1);
        assert_eq!(v[0].1.sanitized, 1);
        assert_eq!(v[1].0, n2);
        assert_eq!(v[1].1.accepted, 1);
    }

    #[test]
    fn reset_forgets_history_keeps_policy() {
        let mut g = guard();
        g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 0)], secs(0), &[]);
        g.reset();
        assert_eq!(g.verdicts().count(), 0);
        assert!(g.drain_incidents().is_empty());
        assert!(g.enabled());
    }

    #[test]
    fn incidents_render_for_the_flight_recorder() {
        let neighbor = addr("10.0.0.2");
        let texts = [
            GuardIncident::Sanitized { neighbor, dropped: 2, clamped: 1 }.to_string(),
            GuardIncident::Damped {
                neighbor,
                prefix: cidr("10.9.0.0/16"),
                until: secs(30),
            }
            .to_string(),
            GuardIncident::RateLimited { neighbor }.to_string(),
            GuardIncident::Quarantined { neighbor, until: secs(60) }.to_string(),
            GuardIncident::Paroled { neighbor }.to_string(),
        ];
        assert_eq!(texts[0], "sanitized 10.0.0.2: 2 dropped, 1 clamped");
        assert_eq!(texts[1], "damped 10.9.0.0/16 from 10.0.0.2 until t=30.0s");
        assert_eq!(texts[2], "rate-limited 10.0.0.2");
        assert_eq!(texts[3], "quarantined 10.0.0.2 until t=60.0s");
        assert_eq!(texts[4], "paroled 10.0.0.2");
        let attest_texts = [
            GuardIncident::AttestRejected {
                neighbor,
                prefix: cidr("10.9.0.0/16"),
                reason: AttestFailure::BadMac,
            }
            .to_string(),
            GuardIncident::PrefixQuarantined {
                neighbor,
                prefix: cidr("10.9.0.0/16"),
                until: secs(90),
            }
            .to_string(),
        ];
        assert_eq!(attest_texts[0], "attest-rejected 10.9.0.0/16 from 10.0.0.2: bad mac");
        assert_eq!(
            attest_texts[1],
            "prefix-quarantined 10.9.0.0/16 from 10.0.0.2 until t=90.0s"
        );
    }

    // ---- origin attestation ----

    use catenet_auth::{Attestation, MacKey, OriginId, OriginRegistry};

    const MASTER: MacKey = MacKey([0x11, 0x22]);

    /// Registry with origin 1 owning 10.9/16 and 10.8/16, origin 2
    /// owning 10.7/16.
    fn registry() -> Rc<OriginRegistry> {
        let mut reg = OriginRegistry::new(MASTER);
        reg.register(cidr("10.9.0.0/16"), OriginId(1));
        reg.register(cidr("10.8.0.0/16"), OriginId(1));
        reg.register(cidr("10.7.0.0/16"), OriginId(2));
        Rc::new(reg)
    }

    fn signed(prefix: &str, metric: u8, origin: u16, seq: u32) -> RipEntry {
        let key = MacKey::derive(MASTER, OriginId(origin));
        RipEntry::attested(
            cidr(prefix),
            metric,
            Attestation::sign(key, OriginId(origin), cidr(prefix), seq),
        )
    }

    fn attested_guard() -> RouteGuard {
        let mut policy = GuardPolicy::attested();
        policy.boot_window = Duration::ZERO; // enforcement tests want t=0 teeth
        let mut g = RouteGuard::new(policy);
        g.set_registry(Some(registry()));
        g
    }

    #[test]
    fn valid_attestation_admitted_and_propagated() {
        let mut g = attested_guard();
        let e = signed("10.9.0.0/16", 2, 1, 10);
        let a = g.admit(addr("10.0.0.2"), &[e], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries, vec![e], "attestation must survive admission");
    }

    #[test]
    fn missing_attestation_on_registered_prefix_rejected() {
        let mut g = attested_guard();
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 2), signed("10.8.0.0/16", 3, 1, 5)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert_eq!(a.entries.len(), 1, "only the signed entry survives");
        assert_eq!(a.entries[0].prefix, cidr("10.8.0.0/16"));
        assert!(g.drain_incidents().iter().any(|i| matches!(
            i,
            GuardIncident::AttestRejected { reason: AttestFailure::Missing, .. }
        )));
    }

    #[test]
    fn unregistered_finite_prefix_rejected_as_bogus_origination() {
        let mut g = attested_guard();
        let a = g.admit(addr("10.0.0.2"), &[entry("198.18.0.0/24", 1)], secs(0), &[]);
        assert!(a.entries.is_empty());
        assert!(g.drain_incidents().iter().any(|i| matches!(
            i,
            GuardIncident::AttestRejected { reason: AttestFailure::UnknownPrefix, .. }
        )));
    }

    #[test]
    fn wrong_origin_and_spoofed_key_rejected() {
        let mut g = attested_guard();
        // Origin 2 does not own 10.9/16, even with its own valid key.
        let wrong = signed("10.9.0.0/16", 2, 2, 10);
        let a = g.admit(addr("10.0.0.2"), &[wrong], secs(0), &[]);
        assert!(a.entries.is_empty());
        // Claiming origin 1 but signing with a key origin 1 doesn't
        // hold (key spoofing): tag never verifies.
        let spoof_key = MacKey::derive(MASTER, OriginId(99));
        let spoofed = RipEntry::attested(
            cidr("10.9.0.0/16"),
            2,
            Attestation::sign(spoof_key, OriginId(1), cidr("10.9.0.0/16"), 11),
        );
        let a = g.admit(addr("10.0.0.2"), &[spoofed], secs(1), &[]);
        assert!(a.entries.is_empty());
        let incidents = g.drain_incidents();
        assert!(incidents.iter().any(|i| matches!(
            i,
            GuardIncident::AttestRejected { reason: AttestFailure::WrongOrigin, .. }
        )));
        assert!(incidents.iter().any(|i| matches!(
            i,
            GuardIncident::AttestRejected { reason: AttestFailure::BadMac, .. }
        )));
    }

    #[test]
    fn replayed_stale_advert_rejected() {
        let mut policy = GuardPolicy::attested();
        policy.boot_window = Duration::ZERO;
        policy.attest_window = 4;
        let mut g = RouteGuard::new(policy);
        g.set_registry(Some(registry()));
        let n = addr("10.0.0.2");
        // Fresh serial 100 establishes the high-water mark.
        let a = g.admit(n, &[signed("10.9.0.0/16", 2, 1, 100)], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        // Reordered-but-fresh (within the window) still passes.
        let a = g.admit(n, &[signed("10.9.0.0/16", 2, 1, 97)], secs(1), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        // A recorded advert from long ago is stale, even though the
        // signature itself is genuine.
        let a = g.admit(n, &[signed("10.9.0.0/16", 2, 1, 90)], secs(2), &[]);
        assert!(a.entries.is_empty());
        assert!(g.drain_incidents().iter().any(|i| matches!(
            i,
            GuardIncident::AttestRejected { reason: AttestFailure::Stale, .. }
        )));
    }

    #[test]
    fn replay_tracking_is_global_not_per_neighbor() {
        let mut g = attested_guard();
        // Neighbor A delivers the fresh serial...
        g.admit(addr("10.0.0.2"), &[signed("10.9.0.0/16", 2, 1, 500)], secs(0), &[]);
        // ...so neighbor B cannot replay a long-stale one.
        let a = g.admit(addr("10.0.0.3"), &[signed("10.9.0.0/16", 2, 1, 1)], secs(1), &[]);
        assert!(a.entries.is_empty());
    }

    #[test]
    fn infinity_entries_pass_unattested() {
        let mut g = attested_guard();
        // A withdrawal (poisoned reverse) claims no reachability and
        // needs no proof.
        let a = g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", INFINITY_METRIC)],
            secs(0),
            &[],
        );
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn repeated_failures_quarantine_the_prefix_not_the_neighbor() {
        let mut g = attested_guard(); // attest_strikes 3, holddown 30 s
        let n = addr("10.0.0.2");
        for t in 0..3u64 {
            // The lie (unsigned hijack of 10.9/16) rides along with an
            // honest signed route each time.
            let a = g.admit(
                n,
                &[entry("10.9.0.0/16", 1), signed("10.8.0.0/16", 2, 1, t as u32)],
                secs(t),
                &[],
            );
            assert_eq!(a.entries.len(), 1, "honest route survives at t={t}");
        }
        assert_eq!(g.quarantined_prefixes(secs(3)), 1);
        assert_eq!(g.quarantined_count(secs(3)), 0, "the neighbor itself is not quarantined");
        assert!(g.drain_incidents().iter().any(|i| matches!(
            i,
            GuardIncident::PrefixQuarantined { .. }
        )));
        // While quarantined, even a *valid* attestation for that prefix
        // from this neighbor is suppressed...
        let a = g.admit(n, &[signed("10.9.0.0/16", 2, 1, 10)], secs(10), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
        assert!(a.entries.is_empty());
        // ...and the hold-down expires on schedule (tripped at t=2).
        let a = g.admit(n, &[signed("10.9.0.0/16", 2, 1, 11)], secs(33), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
        assert_eq!(g.quarantined_prefixes(secs(33)), 0);
    }

    #[test]
    fn attest_rejections_counted_per_entry() {
        let mut g = attested_guard();
        g.admit(
            addr("10.0.0.2"),
            &[entry("10.9.0.0/16", 1), entry("10.8.0.0/16", 1)],
            secs(0),
            &[],
        );
        let v: Vec<_> = g.verdicts().collect();
        assert_eq!(v[0].1.attest_rejected, 2);
        assert_eq!(v[0].1.sanitized, 1, "one message, two rejected entries");
    }

    #[test]
    fn attestation_off_ignores_registry() {
        let mut policy = GuardPolicy::standard();
        policy.attestation = false;
        let mut g = RouteGuard::new(policy);
        g.set_registry(Some(registry()));
        // Unsigned registered prefix: admitted — the 1988 behavior.
        let a = g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 2)], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Accepted);
    }

    // ---- boot learning window ----

    #[test]
    fn boot_window_tolerates_the_initial_storm() {
        let mut g = RouteGuard::new(GuardPolicy::boot_armed()); // 30 s window
        let n = addr("10.0.0.2");
        // A cold-boot burst far over the rate limit: all admitted, no
        // offenses, no quarantine.
        for i in 0..120 {
            let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(i / 20), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted, "message {i}");
        }
        // Convergence-transient flips inside the window: never damped.
        for t in 0..6u64 {
            let metric = if t % 2 == 0 { 2 } else { INFINITY_METRIC };
            let a = g.admit(n, &[entry("10.7.0.0/16", metric)], secs(7 + t), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted, "flip {t}");
        }
        assert_eq!(g.quarantined_count(secs(29)), 0);
        assert!(g.drain_incidents().is_empty(), "boot storm leaves no incident trail");
    }

    #[test]
    fn enforcement_arms_when_boot_window_ends() {
        let mut g = RouteGuard::new(GuardPolicy::boot_armed());
        let n = addr("10.0.0.2");
        g.admit(n, &[entry("10.9.0.0/16", 2)], secs(0), &[]); // boot starts
        // Past the 30 s window, the rate limit has teeth again.
        for _ in 0..40 {
            let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(40), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted);
        }
        let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(40), &[]);
        assert_eq!(a.verdict, GuardVerdict::Damped);
    }

    #[test]
    fn sanitization_and_attestation_armed_during_boot() {
        let mut g = RouteGuard::new(GuardPolicy::attested()); // 30 s boot window
        g.set_registry(Some(registry()));
        let n = addr("10.0.0.2");
        // Metric-0 black hole in the very first message: still dropped.
        let a = g.admit(n, &[entry("10.9.0.0/16", 0)], secs(0), &[]);
        assert_eq!(a.verdict, GuardVerdict::Sanitized);
        assert!(a.entries.is_empty());
        // Unsigned hijack during boot: still rejected.
        let a = g.admit(n, &[entry("10.9.0.0/16", 1)], secs(1), &[]);
        assert!(a.entries.is_empty());
    }

    #[test]
    fn reset_restarts_the_boot_window() {
        let mut g = RouteGuard::new(GuardPolicy::boot_armed());
        let n = addr("10.0.0.2");
        g.admit(n, &[entry("10.9.0.0/16", 2)], secs(0), &[]);
        // Guard reboots at t=100 (e.g. its gateway crashed): the next
        // storm is a fresh boot, not post-window traffic.
        g.reset();
        for _ in 0..100 {
            let a = g.admit(n, &[entry("10.9.0.0/16", 2)], secs(100), &[]);
            assert_eq!(a.verdict, GuardVerdict::Accepted);
        }
        assert_eq!(g.quarantined_count(secs(100)), 0);
    }

    #[test]
    fn registry_survives_reset() {
        let mut g = attested_guard();
        g.reset();
        assert!(g.registry().is_some(), "the registry is configuration");
        // And enforcement still works post-reset.
        let a = g.admit(addr("10.0.0.2"), &[entry("10.9.0.0/16", 1)], secs(0), &[]);
        assert!(a.entries.is_empty());
    }
}
