//! Property tests for the distance-vector engine: seeded-random
//! advertisement streams checking the invariants the protocol promises
//! regardless of what neighbors say.
//!
//! Three properties, each over many seeds:
//!
//! 1. **Metric bounds** — every stored metric stays in
//!    `1..=INFINITY_METRIC` and the table version never goes backwards,
//!    no matter what metrics (0 and 16 included) arrive on the wire.
//! 2. **Down means down** — after `fail_iface`, no *live* route ever
//!    points out that interface until it is revived.
//! 3. **Silence drains** — from any reachable random state, stopping
//!    all advertisements garbage-collects every learned route within
//!    `route_timeout + gc_timeout` (plus one tick of slack); only
//!    connected routes survive.
//!
//! Each property runs twice per seed: guard off (the trusting 1988
//! behavior) and guard on (the hardened path) — the invariants are the
//! engine's, and no admission policy may break them.

use catenet_routing::{
    DvConfig, DvEngine, GuardPolicy, NextHop, RipEntry, INFINITY_METRIC,
};
use catenet_sim::{Duration, Instant, Rng};
use catenet_wire::{Ipv4Address, Ipv4Cidr};

const SEEDS: [u64; 8] = [3, 11, 23, 37, 41, 53, 97, 1988];
const IFACES: usize = 3;
const STEPS: usize = 300;
/// Largest virtual-time advance per step.
const MAX_STEP: Duration = Duration::from_secs(2);

fn connected_prefix(iface: usize) -> Ipv4Cidr {
    Ipv4Cidr::new(Ipv4Address::new(10, 0, iface as u8, 0), 30)
}

fn neighbor_on(iface: usize) -> Ipv4Address {
    Ipv4Address::new(10, 0, iface as u8, 2)
}

fn fresh_engine(guard: bool) -> DvEngine {
    let mut dv = DvEngine::new(DvConfig::fast());
    if guard {
        dv.set_guard_policy(GuardPolicy::standard());
    }
    for iface in 0..IFACES {
        dv.add_connected(connected_prefix(iface), iface);
    }
    dv
}

/// A random advertisement: 1–5 entries over a small prefix pool with
/// arbitrary legal wire metrics (0 and INFINITY are legal on the wire —
/// that they never become illegal *table* states is the property).
fn random_entries(rng: &mut Rng) -> Vec<RipEntry> {
    let n = rng.range(1, 6) as usize;
    (0..n)
        .map(|_| {
            RipEntry::new(
                Ipv4Cidr::new(
                    Ipv4Address::new(10, rng.range(1, 9) as u8, rng.below(4) as u8 * 64, 0),
                    if rng.chance(0.5) { 16 } else { 24 },
                ),
                rng.range(0, u64::from(INFINITY_METRIC) + 1) as u8,
            )
        })
        .collect()
}

/// Drive one random step; returns the updated virtual time.
fn step(
    dv: &mut DvEngine,
    rng: &mut Rng,
    now: Instant,
    iface_up: &mut [bool; IFACES],
) -> Instant {
    let now = now + Duration::from_micros(rng.range(100_000, MAX_STEP.total_micros()));
    let roll = rng.unit();
    if roll < 0.70 {
        // An advertisement from a neighbor on a live interface (the
        // node never hands the engine traffic heard on a down one).
        let live: Vec<usize> = (0..IFACES).filter(|&i| iface_up[i]).collect();
        if let Some(&iface) = live.get(rng.below(live.len().max(1) as u64) as usize) {
            dv.handle_update(neighbor_on(iface), iface, &random_entries(rng), now);
        }
    } else if roll < 0.80 {
        let iface = rng.below(IFACES as u64) as usize;
        if iface_up[iface] {
            dv.fail_iface(iface, now);
            iface_up[iface] = false;
        }
    } else if roll < 0.90 {
        let iface = rng.below(IFACES as u64) as usize;
        if !iface_up[iface] {
            dv.add_connected(connected_prefix(iface), iface);
            iface_up[iface] = true;
        }
    }
    dv.tick(now);
    now
}

#[test]
fn metrics_stay_within_protocol_bounds_under_random_streams() {
    for guard in [false, true] {
        for seed in SEEDS {
            let mut rng = Rng::from_seed(seed);
            let mut dv = fresh_engine(guard);
            let mut iface_up = [true; IFACES];
            let mut now = Instant::ZERO;
            let mut last_version = dv.version();
            for _ in 0..STEPS {
                now = step(&mut dv, &mut rng, now, &mut iface_up);
                for (prefix, route) in dv.routes() {
                    assert!(
                        (1..=INFINITY_METRIC).contains(&route.metric),
                        "seed {seed} guard {guard}: {prefix} has metric {} at {now}",
                        route.metric
                    );
                }
                let version = dv.version();
                assert!(version >= last_version, "seed {seed}: version went backwards");
                last_version = version;
            }
        }
    }
}

#[test]
fn no_live_route_ever_uses_a_downed_iface() {
    for guard in [false, true] {
        for seed in SEEDS {
            let mut rng = Rng::from_seed(seed ^ 0xD0_4E);
            let mut dv = fresh_engine(guard);
            let mut iface_up = [true; IFACES];
            let mut now = Instant::ZERO;
            for _ in 0..STEPS {
                now = step(&mut dv, &mut rng, now, &mut iface_up);
                for (prefix, route) in dv.routes() {
                    if route.metric < INFINITY_METRIC {
                        assert!(
                            iface_up[route.next_hop.iface()],
                            "seed {seed} guard {guard}: live route {prefix} \
                             uses downed iface {} at {now}",
                            route.next_hop.iface()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn silence_gcs_every_learned_route_within_deadline() {
    for guard in [false, true] {
        for seed in SEEDS {
            let mut rng = Rng::from_seed(seed ^ 0x6C_DEAD);
            let mut dv = fresh_engine(guard);
            let mut iface_up = [true; IFACES];
            let mut now = Instant::ZERO;
            for _ in 0..STEPS {
                now = step(&mut dv, &mut rng, now, &mut iface_up);
            }
            // The neighbors fall silent. Every learned route must expire
            // (route_timeout), hold at infinity (gc_timeout), then vanish;
            // ticks land at the same cadence the stream used.
            let config = dv.config();
            let deadline =
                now + config.route_timeout + config.gc_timeout + MAX_STEP + MAX_STEP;
            while now < deadline {
                now += MAX_STEP;
                dv.tick(now);
            }
            let leftovers: Vec<String> = dv
                .routes()
                .filter(|(_, r)| !matches!(r.next_hop, NextHop::Connected { .. }))
                .map(|(p, r)| format!("{p} metric {}", r.metric))
                .collect();
            assert!(
                leftovers.is_empty(),
                "seed {seed} guard {guard}: learned routes survived silence: {leftovers:?}"
            );
            for (iface, &up) in iface_up.iter().enumerate() {
                if up {
                    assert!(
                        dv.lookup(Ipv4Address::new(10, 0, iface as u8, 1)).is_some(),
                        "seed {seed}: connected prefix on live iface {iface} must survive"
                    );
                }
            }
        }
    }
}
