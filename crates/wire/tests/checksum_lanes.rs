//! The wide checksum kernel against its scalar specification.
//!
//! `checksum::sum` consumes four 16-bit words per load through a u64
//! end-around-carry accumulator; `checksum::sum_scalar` is the original
//! one-word-per-iteration loop, kept as the executable spec. The two do
//! *not* promise the same raw accumulator — only the same value modulo
//! `0xffff` with matching zero/nonzero-ness, which is what every consumer
//! (fold, checksum, verify, combine) actually observes. These tests pin
//! that contract:
//!
//! - exhaustively on every length 0–64 (covers all lane/tail alignments,
//!   including odd trailing bytes);
//! - on seeded random long inputs, at every alignment of a large buffer;
//! - on the `0x0000`/`0xFFFF` fixpoint patterns from `checksum_escape.rs`
//!   (one's complement has two zeros — the wide kernel must preserve the
//!   blind spot exactly, not blur it).

use catenet_sim::Rng;
use catenet_wire::checksum;

/// The equivalence every consumer relies on.
fn assert_equivalent(data: &[u8]) {
    let wide = checksum::sum(data);
    let scalar = checksum::sum_scalar(data);
    assert_eq!(
        checksum::fold(wide),
        checksum::fold(scalar),
        "fold mismatch on len {}: {data:02x?}",
        data.len()
    );
    assert_eq!(
        wide == 0,
        scalar == 0,
        "zero-preservation mismatch on len {}",
        data.len()
    );
    assert_eq!(checksum::checksum(data), !checksum::fold(scalar));
    // Sealing with the scalar-derived checksum must verify through the
    // wide kernel: append the inverted fold as a trailing word.
    let mut sealed = data.to_vec();
    if sealed.len() % 2 == 1 {
        sealed.push(0);
    }
    let ck = !checksum::fold(checksum::sum_scalar(&sealed));
    sealed.extend_from_slice(&ck.to_be_bytes());
    assert!(checksum::verify(&sealed), "sealed buffer fails wide verify");
}

#[test]
fn exhaustive_lengths_zero_to_sixty_four() {
    let mut rng = Rng::from_seed(0x1071);
    for len in 0..=64usize {
        // Several fills per length: random, plus the patterns that stress
        // carry behavior (all-ones saturates every lane, all-zero is the
        // additive identity).
        let random: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        assert_equivalent(&random);
        assert_equivalent(&vec![0x00u8; len]);
        assert_equivalent(&vec![0xffu8; len]);
        assert_equivalent(&vec![0xa5u8; len]);
    }
}

#[test]
fn seeded_random_long_inputs_all_alignments() {
    let mut rng = Rng::from_seed(0x1624);
    let big: Vec<u8> = (0..9009).map(|_| rng.below(256) as u8).collect();
    // Every start offset mod 8 × every tail length mod 8, on kilobyte-scale
    // slices — the shapes a forwarding path actually sums.
    for start in 0..8 {
        for trim in 0..8 {
            assert_equivalent(&big[start..big.len() - trim]);
        }
    }
    for len in [65, 127, 128, 1000, 1460, 1500, 8192] {
        assert_equivalent(&big[..len]);
    }
}

#[test]
fn zero_fixpoints_match_scalar() {
    // One's complement has two zeros: a word of 0x0000 and a word of
    // 0xFFFF both add nothing mod 0xffff. checksum_escape.rs proves the
    // scalar sum cannot tell them apart; the wide kernel must agree on
    // both representatives, wherever the word lands in a lane.
    let mut base = vec![0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x13, 0x57];
    for offset in (0..base.len()).step_by(2) {
        let mut zeros = base.clone();
        zeros[offset..offset + 2].copy_from_slice(&[0x00, 0x00]);
        let mut ones = base.clone();
        ones[offset..offset + 2].copy_from_slice(&[0xff, 0xff]);
        assert_equivalent(&zeros);
        assert_equivalent(&ones);
        // The blind spot survives intact: the two variants fold equal.
        assert_eq!(
            checksum::fold(checksum::sum(&zeros)),
            checksum::fold(checksum::sum(&ones)),
            "zero flip became visible at offset {offset}"
        );
    }
    // All-zero vs all-ones whole buffers: both are "zero" mod 0xffff, but
    // only the literal all-zero input has a zero accumulator.
    assert_eq!(checksum::sum(&[0u8; 64]), 0);
    assert_eq!(checksum::fold(checksum::sum(&[0xffu8; 64])), 0xffff);
    base.truncate(0);
    assert_eq!(checksum::sum(&base), checksum::sum_scalar(&base));
}
