//! RFC 1624 incremental TTL decrement vs. full header recompute.
//!
//! `Packet::decrement_hop_limit` now adjusts the header checksum from the
//! single 16-bit word that changed (`TTL | protocol`) instead of
//! re-summing all 20 bytes. For any header whose stored checksum is the
//! canonical `fill_checksum` output, the incremental result must be
//! *bit-identical* to a full recompute — not merely verify — because
//! forwarded headers get quoted verbatim into ICMP errors and compared
//! byte-for-byte by the determinism harness. This property holds because
//! both reductions land on the canonical representative of the sum mod
//! 0xffff: the version byte pins the header sum away from the ambiguous
//! all-zero accumulator, and `~HC`, `~m`, `m'` cannot all vanish at once.

use catenet_sim::Rng;
use catenet_wire::ipv4::{self, Packet};
use catenet_wire::types::{IpProtocol, Ipv4Address, Tos};

fn random_header(rng: &mut Rng) -> Vec<u8> {
    let repr = ipv4::Repr {
        src_addr: Ipv4Address::new(
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
        ),
        dst_addr: Ipv4Address::new(
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
        ),
        protocol: match rng.below(4) {
            0 => IpProtocol::Icmp,
            1 => IpProtocol::Udp,
            2 => IpProtocol::Tcp,
            _ => IpProtocol::Unknown(rng.below(256) as u8),
        },
        payload_len: rng.below(1481) as usize,
        hop_limit: rng.range(1, 255) as u8,
        tos: Tos(rng.below(256) as u8),
    };
    let mut buf = vec![0u8; ipv4::HEADER_LEN];
    let mut packet = Packet::new_unchecked(&mut buf[..]);
    repr.emit(&mut packet);
    packet.set_ident(rng.below(0x10000) as u16);
    packet.fill_checksum();
    buf
}

#[test]
fn incremental_decrement_is_bit_identical_to_recompute() {
    let mut rng = Rng::from_seed(0x1624_1071);
    for case in 0..20_000 {
        let header = random_header(&mut rng);

        let mut incremental = header.clone();
        let mut packet = Packet::new_unchecked(&mut incremental[..]);
        assert!(packet.verify_checksum(), "case {case}: seal failed");
        let ttl_inc = packet.decrement_hop_limit();
        assert!(
            packet.verify_checksum(),
            "case {case}: incremental update broke the checksum invariant"
        );

        let mut recomputed = header.clone();
        let mut packet = Packet::new_unchecked(&mut recomputed[..]);
        let ttl = packet.hop_limit().saturating_sub(1);
        packet.set_hop_limit(ttl);
        packet.fill_checksum();

        assert_eq!(ttl_inc, ttl, "case {case}: TTL mismatch");
        assert_eq!(
            incremental, recomputed,
            "case {case}: incremental and full recompute diverge"
        );
    }
}

#[test]
fn decrement_walks_a_header_all_the_way_down() {
    // Hop the same header through 254 gateways; at every hop the checksum
    // stays canonical, and at TTL 0 the header is left untouched.
    let mut rng = Rng::from_seed(7);
    let mut header = random_header(&mut rng);
    {
        let mut packet = Packet::new_unchecked(&mut header[..]);
        packet.set_hop_limit(254);
        packet.fill_checksum();
    }
    let mut expect = 254u8;
    loop {
        let mut packet = Packet::new_unchecked(&mut header[..]);
        let ttl = packet.decrement_hop_limit();
        if expect == 0 {
            assert_eq!(ttl, 0);
            break;
        }
        expect -= 1;
        assert_eq!(ttl, expect);
        assert!(packet.verify_checksum(), "invalid at ttl {ttl}");
    }
    let frozen = header.clone();
    let mut packet = Packet::new_unchecked(&mut header[..]);
    assert_eq!(packet.decrement_hop_limit(), 0);
    assert_eq!(header, frozen, "expired header must not be rewritten");
}
