//! Property-based round-trip tests for every wire format: whatever a
//! `Repr` can describe, `emit` followed by `parse` must return
//! unchanged, and checksums must verify. These are the invariants every
//! higher layer silently assumes.

use catenet_wire::*;
use proptest::prelude::*;

fn addr() -> impl Strategy<Value = Ipv4Address> {
    any::<[u8; 4]>().prop_map(Ipv4Address::from)
}

fn hw_addr() -> impl Strategy<Value = EthernetAddress> {
    any::<[u8; 6]>().prop_map(EthernetAddress)
}

fn tcp_control() -> impl Strategy<Value = TcpControl> {
    prop_oneof![
        Just(TcpControl::None),
        Just(TcpControl::Psh),
        Just(TcpControl::Syn),
        Just(TcpControl::Fin),
        Just(TcpControl::Rst),
    ]
}

proptest! {
    #[test]
    fn ethernet_round_trip(
        src in hw_addr(),
        dst in hw_addr(),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let repr = EthernetRepr {
            src_addr: src,
            dst_addr: dst,
            ethertype: EtherType::from(ethertype),
        };
        let mut buf = vec![0u8; repr.buffer_len() + payload.len()];
        let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&payload);
        let parsed = EthernetFrame::new_checked(&buf[..]).expect("valid");
        prop_assert_eq!(EthernetRepr::parse(&parsed).expect("parses"), repr);
        prop_assert_eq!(parsed.payload(), &payload[..]);
    }

    #[test]
    fn arp_round_trip(
        op in any::<u16>(),
        sha in hw_addr(),
        spa in addr(),
        tha in hw_addr(),
        tpa in addr(),
    ) {
        let repr = ArpRepr {
            operation: ArpOperation::from(op),
            source_hardware_addr: sha,
            source_protocol_addr: spa,
            target_hardware_addr: tha,
            target_protocol_addr: tpa,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut ArpPacket::new_unchecked(&mut buf[..]));
        let parsed = ArpRepr::parse(&ArpPacket::new_checked(&buf[..]).expect("valid"))
            .expect("parses");
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn tcp_round_trip(
        src_port in 1u16..,
        dst_port in 1u16..,
        control in tcp_control(),
        seq in any::<u32>(),
        ack in proptest::option::of(any::<u32>()),
        window in any::<u16>(),
        mss in proptest::option::of(64u16..),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        src in addr(),
        dst in addr(),
    ) {
        // MSS only rides on SYN segments; SYN carries no payload here.
        let (control, mss, payload) = if control == TcpControl::Syn {
            (control, mss, Vec::new())
        } else {
            (control, None, payload)
        };
        let repr = TcpRepr {
            src_port,
            dst_port,
            control,
            seq_number: TcpSeqNumber(seq),
            ack_number: ack.map(TcpSeqNumber),
            window_len: window,
            max_seg_size: mss,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        let parsed_packet = TcpPacket::new_checked(&buf[..]).expect("valid");
        prop_assert!(parsed_packet.verify_checksum(src, dst));
        let parsed = TcpRepr::parse(&parsed_packet, src, dst).expect("parses");
        prop_assert_eq!(parsed, repr);
        prop_assert_eq!(parsed_packet.payload(), &payload[..]);
        prop_assert_eq!(
            parsed_packet.segment_len(),
            payload.len() + repr.control.len()
        );
    }

    #[test]
    fn tcp_single_bit_header_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let repr = TcpRepr {
            src_port: 1000,
            dst_port: 2000,
            control: TcpControl::Psh,
            seq_number: TcpSeqNumber(42),
            ack_number: Some(TcpSeqNumber(7)),
            window_len: 512,
            max_seg_size: None,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        buf[byte] ^= 1 << bit;
        let accepted = match TcpPacket::new_checked(&buf[..]) {
            Ok(p) => p.verify_checksum(src, dst),
            Err(_) => false,
        };
        prop_assert!(!accepted, "corrupted TCP header accepted");
    }

    #[test]
    fn icmp_echo_round_trip(
        ident in any::<u16>(),
        seq_no in any::<u16>(),
        request in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let message = if request {
            Icmpv4Message::EchoRequest { ident, seq_no }
        } else {
            Icmpv4Message::EchoReply { ident, seq_no }
        };
        let repr = Icmpv4Repr {
            message,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Icmpv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum();
        let parsed_packet = Icmpv4Packet::new_checked(&buf[..]).expect("valid");
        prop_assert!(parsed_packet.verify_checksum());
        prop_assert_eq!(Icmpv4Repr::parse(&parsed_packet).expect("parses"), repr);
        prop_assert_eq!(parsed_packet.payload(), &payload[..]);
    }

    #[test]
    fn seq_number_add_sub_inverse(base in any::<u32>(), delta in 0usize..0x7fff_ffff) {
        let x = TcpSeqNumber(base);
        prop_assert_eq!((x + delta) - delta, x);
        prop_assert_eq!((x + delta) - x, delta as i32);
    }

    #[test]
    fn cidr_network_is_idempotent_and_contains_itself(
        a in addr(),
        len in 0u8..=32,
    ) {
        let cidr = Ipv4Cidr::new(a, len);
        let network = cidr.network();
        prop_assert_eq!(network.network(), network);
        prop_assert!(cidr.contains(a));
        prop_assert!(network.contains(a));
        prop_assert!(cidr.contains(cidr.broadcast()) || len == 32);
        // The netmask has exactly `len` leading ones.
        prop_assert_eq!(cidr.netmask().to_u32().count_ones(), u32::from(len));
    }

    #[test]
    fn tos_round_trips_service_class(value in any::<u8>()) {
        let tos = Tos(value);
        // service_class is a pure function of the preference bits.
        let reconstructed = Tos::new(
            tos.precedence(),
            tos.low_delay(),
            tos.high_throughput(),
            tos.high_reliability(),
        );
        prop_assert_eq!(reconstructed.service_class(), tos.service_class());
        prop_assert_eq!(reconstructed.precedence(), tos.precedence());
    }
}
