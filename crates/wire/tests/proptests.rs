//! Property-based round-trip tests for every wire format: whatever a
//! `Repr` can describe, `emit` followed by `parse` must return
//! unchanged, and checksums must verify. These are the invariants every
//! higher layer silently assumes. Inputs are drawn from the simulator's
//! seeded `Rng`, so every case is reproducible from its case number.

use catenet_sim::Rng;
use catenet_wire::*;

fn case_rng(name: &str, case: u64) -> Rng {
    let tag: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    Rng::from_seed(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn bytes(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let len = rng.range(lo as u64, hi as u64) as usize;
    (0..len).map(|_| rng.below(256) as u8).collect()
}

fn addr(rng: &mut Rng) -> Ipv4Address {
    Ipv4Address::from([
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
    ])
}

fn hw_addr(rng: &mut Rng) -> EthernetAddress {
    EthernetAddress([
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
        rng.below(256) as u8,
    ])
}

fn tcp_control(rng: &mut Rng) -> TcpControl {
    match rng.below(5) {
        0 => TcpControl::None,
        1 => TcpControl::Psh,
        2 => TcpControl::Syn,
        3 => TcpControl::Fin,
        _ => TcpControl::Rst,
    }
}

#[test]
fn ethernet_round_trip() {
    for case in 0..256 {
        let mut rng = case_rng("ethernet_rt", case);
        let repr = EthernetRepr {
            src_addr: hw_addr(&mut rng),
            dst_addr: hw_addr(&mut rng),
            ethertype: EtherType::from(rng.below(65536) as u16),
        };
        let payload = bytes(&mut rng, 0, 128);
        let mut buf = vec![0u8; repr.buffer_len() + payload.len()];
        let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&payload);
        let parsed = EthernetFrame::new_checked(&buf[..]).expect("valid");
        assert_eq!(EthernetRepr::parse(&parsed).expect("parses"), repr);
        assert_eq!(parsed.payload(), &payload[..]);
    }
}

#[test]
fn arp_round_trip() {
    for case in 0..256 {
        let mut rng = case_rng("arp_rt", case);
        let repr = ArpRepr {
            operation: ArpOperation::from(rng.below(65536) as u16),
            source_hardware_addr: hw_addr(&mut rng),
            source_protocol_addr: addr(&mut rng),
            target_hardware_addr: hw_addr(&mut rng),
            target_protocol_addr: addr(&mut rng),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut ArpPacket::new_unchecked(&mut buf[..]));
        let parsed =
            ArpRepr::parse(&ArpPacket::new_checked(&buf[..]).expect("valid")).expect("parses");
        assert_eq!(parsed, repr);
    }
}

#[test]
fn tcp_round_trip() {
    for case in 0..256 {
        let mut rng = case_rng("tcp_rt", case);
        let control = tcp_control(&mut rng);
        let mss = if rng.chance(0.5) {
            Some(rng.range(64, 65536) as u16)
        } else {
            None
        };
        let payload = bytes(&mut rng, 0, 256);
        let ack = if rng.chance(0.5) {
            Some(TcpSeqNumber(rng.next_u32()))
        } else {
            None
        };
        // MSS only rides on SYN segments; SYN carries no payload here.
        let (control, mss, payload) = if control == TcpControl::Syn {
            (control, mss, Vec::new())
        } else {
            (control, None, payload)
        };
        let src = addr(&mut rng);
        let dst = addr(&mut rng);
        let repr = TcpRepr {
            src_port: rng.range(1, 65536) as u16,
            dst_port: rng.range(1, 65536) as u16,
            control,
            seq_number: TcpSeqNumber(rng.next_u32()),
            ack_number: ack,
            window_len: rng.below(65536) as u16,
            max_seg_size: mss,
            payload_crc: None,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        let parsed_packet = TcpPacket::new_checked(&buf[..]).expect("valid");
        assert!(parsed_packet.verify_checksum(src, dst));
        let parsed = TcpRepr::parse(&parsed_packet, src, dst).expect("parses");
        assert_eq!(parsed, repr);
        assert_eq!(parsed_packet.payload(), &payload[..]);
        assert_eq!(parsed_packet.segment_len(), payload.len() + repr.control.len());
    }
}

#[test]
fn tcp_single_bit_header_corruption_detected() {
    // Exhaustive over all 160 single-bit flips in the fixed header,
    // across several payloads.
    for case in 0..8 {
        let mut rng = case_rng("tcp_corruption", case);
        let payload = bytes(&mut rng, 1, 64);
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let repr = TcpRepr {
            src_port: 1000,
            dst_port: 2000,
            control: TcpControl::Psh,
            seq_number: TcpSeqNumber(42),
            ack_number: Some(TcpSeqNumber(7)),
            window_len: 512,
            max_seg_size: None,
            payload_crc: None,
            payload_len: payload.len(),
        };
        let mut clean = vec![0u8; repr.buffer_len()];
        let mut packet = TcpPacket::new_unchecked(&mut clean[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum(src, dst);
        for byte in 0..20 {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                let accepted = match TcpPacket::new_checked(&buf[..]) {
                    Ok(p) => p.verify_checksum(src, dst),
                    Err(_) => false,
                };
                assert!(!accepted, "corrupted TCP header accepted (byte {byte} bit {bit})");
            }
        }
    }
}

#[test]
fn icmp_echo_round_trip() {
    for case in 0..256 {
        let mut rng = case_rng("icmp_rt", case);
        let ident = rng.below(65536) as u16;
        let seq_no = rng.below(65536) as u16;
        let message = if rng.chance(0.5) {
            Icmpv4Message::EchoRequest { ident, seq_no }
        } else {
            Icmpv4Message::EchoReply { ident, seq_no }
        };
        let payload = bytes(&mut rng, 0, 128);
        let repr = Icmpv4Repr {
            message,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Icmpv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        packet.fill_checksum();
        let parsed_packet = Icmpv4Packet::new_checked(&buf[..]).expect("valid");
        assert!(parsed_packet.verify_checksum());
        assert_eq!(Icmpv4Repr::parse(&parsed_packet).expect("parses"), repr);
        assert_eq!(parsed_packet.payload(), &payload[..]);
    }
}

#[test]
fn seq_number_add_sub_inverse() {
    for case in 0..1024 {
        let mut rng = case_rng("seq_inverse", case);
        let x = TcpSeqNumber(rng.next_u32());
        let delta = rng.below(0x7fff_ffff) as usize;
        assert_eq!((x + delta) - delta, x);
        assert_eq!((x + delta) - x, delta as i32);
    }
}

#[test]
fn cidr_network_is_idempotent_and_contains_itself() {
    for case in 0..512 {
        let mut rng = case_rng("cidr_idempotent", case);
        let a = addr(&mut rng);
        let len = rng.below(33) as u8;
        let cidr = Ipv4Cidr::new(a, len);
        let network = cidr.network();
        assert_eq!(network.network(), network);
        assert!(cidr.contains(a));
        assert!(network.contains(a));
        assert!(cidr.contains(cidr.broadcast()) || len == 32);
        // The netmask has exactly `len` leading ones.
        assert_eq!(cidr.netmask().to_u32().count_ones(), u32::from(len));
    }
}

#[test]
fn tos_round_trips_service_class() {
    for value in 0u16..=255 {
        let tos = Tos(value as u8);
        // service_class is a pure function of the preference bits.
        let reconstructed = Tos::new(
            tos.precedence(),
            tos.low_delay(),
            tos.high_throughput(),
            tos.high_reliability(),
        );
        assert_eq!(reconstructed.service_class(), tos.service_class());
        assert_eq!(reconstructed.precedence(), tos.precedence());
    }
}
