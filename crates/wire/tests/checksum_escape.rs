//! Quantifying the Internet checksum's blind spots.
//!
//! The 16-bit one's-complement checksum is the *only* integrity
//! mechanism the 1988 architecture assumes of itself, and it is
//! deliberately weak: cheap to compute incrementally in software on
//! every hop, at the cost of a known set of undetectable corruptions.
//! These tests pin down exactly what escapes:
//!
//! - a 16-bit word flipped between `0x0000` and `0xFFFF` (one's
//!   complement has two zeros, and the sum cannot tell them apart);
//! - any *pair* of word corruptions whose deltas cancel modulo
//!   `0xFFFF` — for uniformly random double corruption that is a
//!   ~1/65536 escape rate, measured here by exhaustive enumeration of
//!   the cancelling pairs and by random sampling through
//!   [`checksum::verify`];
//! - transposed 16-bit-aligned words (addition commutes, so reordering
//!   is invisible).
//!
//! Everything else — in particular every single-word corruption other
//! than the zero flip — is always caught. The simulator's corruption
//! faults (E11's corruption-burst scenario) lean on exactly this
//! boundary: flipped frames are dropped by checksum at the receiver
//! unless they land in the blind spot, which is why end-to-end
//! integrity still belongs to the endpoints (the paper's survivability
//! argument, applied to bit errors).

use catenet_sim::Rng;
use catenet_wire::checksum;

/// A fixed 32-byte message with its checksum stored at `CK` — the
/// shape of a small UDP datagram. `verify` over the whole buffer
/// returns true iff the sum including the stored checksum folds to
/// all-ones.
const CK: usize = 6;

fn sealed_message() -> Vec<u8> {
    let mut msg: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(37) ^ 0x5a).collect();
    // Plant a genuine 0x0000 word so the zero-flip blind spot is
    // reachable at a known offset.
    msg[20] = 0;
    msg[21] = 0;
    msg[CK] = 0;
    msg[CK + 1] = 0;
    let ck = checksum::checksum(&msg);
    msg[CK..CK + 2].copy_from_slice(&ck.to_be_bytes());
    assert!(checksum::verify(&msg), "seal failed");
    msg
}

fn with_word(msg: &[u8], offset: usize, value: u16) -> Vec<u8> {
    let mut out = msg.to_vec();
    out[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
    out
}

fn word_at(msg: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([msg[offset], msg[offset + 1]])
}

/// One's-complement congruence: the checksum cannot distinguish two
/// words that are equal modulo 0xFFFF — which pairs exactly {0x0000,
/// 0xFFFF} and nothing else.
fn same_residue(a: u16, b: u16) -> bool {
    u32::from(a) % 0xffff == u32::from(b) % 0xffff
}

/// Exhaustive single-word corruption: replace one aligned word with
/// every one of its 65535 other values. A word that is not a
/// one's-complement zero never escapes; a zero word escapes exactly
/// once — as its complement 0xFFFF.
#[test]
fn single_word_corruption_escapes_only_via_the_zero_flip() {
    let msg = sealed_message();
    for &offset in &[2usize, 20] {
        let original = word_at(&msg, offset);
        let mut escapes = Vec::new();
        for value in 0..=u16::MAX {
            if value == original {
                continue;
            }
            if checksum::verify(&with_word(&msg, offset, value)) {
                escapes.push(value);
            }
        }
        if original == 0x0000 || original == 0xffff {
            assert_eq!(
                escapes,
                vec![!original],
                "zero word at {offset} must escape exactly as its complement"
            );
        } else {
            assert!(
                escapes.is_empty(),
                "word {original:#06x} at {offset} escaped as {escapes:x?}"
            );
        }
    }
}

/// Exhaustive paired corruption: corrupt two distinct words so their
/// deltas cancel modulo 0xFFFF. Enumerating all 65536 values of the
/// first word and deriving every cancelling second value counts the
/// full escape set for this position pair: out of 2^32 possible value
/// pairs, ~2^16 escape — a 1/65536 escape rate, the checksum's real
/// strength against random double corruption. Every cancelling pair is
/// confirmed undetected through `verify`, and a one-off-by-one probe
/// confirms near-misses are caught.
#[test]
fn paired_word_corruption_escapes_at_one_in_65536() {
    let msg = sealed_message();
    let (off_a, off_b) = (2usize, 10);
    let (a, b) = (word_at(&msg, off_a), word_at(&msg, off_b));

    let mut escaping_pairs: u64 = 0;
    for new_a in 0..=u16::MAX {
        // The second word must absorb the first word's delta:
        // residue(new_b) == residue(b) - (residue(new_a) - residue(a)).
        let need = (u32::from(b) % 0xffff + 0xffff + u32::from(a) % 0xffff
            - u32::from(new_a) % 0xffff)
            % 0xffff;
        // Each residue is hit by one 16-bit value, except residue 0
        // which both 0x0000 and 0xFFFF produce.
        let candidates: &[u16] = if need == 0 { &[0x0000, 0xffff] } else { &[need as u16] };
        for &new_b in candidates {
            if new_a == a && new_b == b {
                continue; // not a corruption
            }
            let corrupt = with_word(&with_word(&msg, off_a, new_a), off_b, new_b);
            assert!(
                checksum::verify(&corrupt),
                "cancelling pair ({new_a:#06x}, {new_b:#06x}) should escape"
            );
            escaping_pairs += 1;
            // The neighbouring non-cancelling value must be caught.
            // (`^ 1` rather than `+ 1`: incrementing 0xFFFF wraps to
            // 0x0000, the one neighbour that shares its residue.)
            let near = with_word(&with_word(&msg, off_a, new_a), off_b, new_b ^ 1);
            assert!(
                !checksum::verify(&near),
                "near-miss ({new_a:#06x}, {:#06x}) slipped through",
                new_b ^ 1
            );
        }
    }

    // ~2^16 cancelling pairs out of 2^32 total: a 1-in-65536 blind spot.
    let total_pairs = (1u64 << 32) - 1; // all (new_a, new_b) minus the identity
    assert!(
        (65_536..=131_072).contains(&escaping_pairs),
        "expected ~2^16 escaping pairs, counted {escaping_pairs}"
    );
    let rate_denominator = total_pairs / escaping_pairs;
    assert!(
        (32_768..=65_536).contains(&rate_denominator),
        "escape rate 1/{rate_denominator} is outside the predicted band"
    );
}

/// Random double corruption at the measured rate: flip two random
/// bytes in distinct words to random new values and count what
/// `verify` misses. The binomial expectation at p = 1/65536 over the
/// sample is ~30; the assertion band is wide enough to be
/// deterministic for this seed yet tight enough that a checksum an
/// order of magnitude weaker (or stronger) would fail it.
#[test]
fn sampled_double_corruption_matches_the_predicted_rate() {
    let msg = sealed_message();
    let mut rng = Rng::from_seed(0xC4EC_5A9E);
    const SAMPLES: u64 = 2_000_000;
    let mut escapes = 0u64;
    for _ in 0..SAMPLES {
        let off_a = (rng.below(16) * 2) as usize;
        let mut off_b = (rng.below(16) * 2) as usize;
        while off_b == off_a {
            off_b = (rng.below(16) * 2) as usize;
        }
        let new_a = rng.below(65_536) as u16;
        let new_b = rng.below(65_536) as u16;
        if new_a == word_at(&msg, off_a) && new_b == word_at(&msg, off_b) {
            continue;
        }
        let corrupt = with_word(&with_word(&msg, off_a, new_a), off_b, new_b);
        if checksum::verify(&corrupt) {
            escapes += 1;
            // Every escape must be a cancelling pair — the only
            // mechanism the exhaustive test predicts.
            assert!(
                same_residue(word_at(&msg, off_a), new_a)
                    == same_residue(word_at(&msg, off_b), new_b)
            );
        }
    }
    assert!(
        (10..=70).contains(&escapes),
        "{escapes} escapes in {SAMPLES} samples — expected ~{}",
        SAMPLES / 65_536
    );
}

/// The opt-in strong-integrity layer closes every blind spot above:
/// CRC32C over the payload detects the zero flip, every cancelling
/// word pair, and every transposition that the Internet checksum
/// provably accepts. This is the wire-level fact E16's corruption
/// sweep prices end to end (the option costs 8 header bytes per
/// segment).
#[test]
fn crc32c_catches_every_pinned_escape_class() {
    use catenet_wire::crc32c;
    let msg = sealed_message();
    let reference = crc32c(&msg);

    // Class 1: the zero flip at the planted 0x0000 word. The Internet
    // checksum accepts it; the CRC does not.
    let flipped = with_word(&msg, 20, 0xffff);
    assert!(checksum::verify(&flipped), "precondition: zero flip escapes");
    assert_ne!(crc32c(&flipped), reference, "CRC32C must catch the zero flip");

    // Class 2: cancelling word pairs. Enumerate the same escape set the
    // exhaustive test counts (one cancelling partner per first-word
    // value, two at residue zero) and require the CRC to catch all.
    let (off_a, off_b) = (2usize, 10);
    let (a, b) = (word_at(&msg, off_a), word_at(&msg, off_b));
    let mut pairs_checked = 0u64;
    for new_a in 0..=u16::MAX {
        let need = (u32::from(b) % 0xffff + 0xffff + u32::from(a) % 0xffff
            - u32::from(new_a) % 0xffff)
            % 0xffff;
        let candidates: &[u16] = if need == 0 { &[0x0000, 0xffff] } else { &[need as u16] };
        for &new_b in candidates {
            if new_a == a && new_b == b {
                continue;
            }
            let corrupt = with_word(&with_word(&msg, off_a, new_a), off_b, new_b);
            debug_assert!(checksum::verify(&corrupt));
            assert_ne!(
                crc32c(&corrupt),
                reference,
                "cancelling pair ({new_a:#06x}, {new_b:#06x}) fooled the CRC too"
            );
            pairs_checked += 1;
        }
    }
    assert!(pairs_checked >= 65_535, "swept the whole cancelling set");

    // Class 3: word transpositions. Addition commutes; polynomial
    // division does not.
    for i in 0..16usize {
        for j in (i + 1)..16 {
            let (wa, wb) = (word_at(&msg, i * 2), word_at(&msg, j * 2));
            if wa == wb {
                continue;
            }
            let swapped = with_word(&with_word(&msg, i * 2, wb), j * 2, wa);
            debug_assert!(checksum::verify(&swapped));
            assert_ne!(
                crc32c(&swapped),
                reference,
                "transposing words {i} and {j} fooled the CRC too"
            );
        }
    }
}

/// Reordering blindness: swapping any two 16-bit-aligned words leaves
/// the sum unchanged, so `verify` accepts every transposition. This is
/// why the checksum guards payload *values* but not payload *layout* —
/// sequence numbers, not the checksum, are what TCP trusts for order.
#[test]
fn word_transpositions_always_escape() {
    let msg = sealed_message();
    let mut transpositions = 0;
    for i in 0..16usize {
        for j in (i + 1)..16 {
            let (wa, wb) = (word_at(&msg, i * 2), word_at(&msg, j * 2));
            if wa == wb {
                continue; // swap is a no-op, not a corruption
            }
            let swapped = with_word(&with_word(&msg, i * 2, wb), j * 2, wa);
            assert!(
                checksum::verify(&swapped),
                "transposing words {i} and {j} was detected"
            );
            transpositions += 1;
        }
    }
    assert!(transpositions > 50, "too few distinct-word swaps exercised");
}
