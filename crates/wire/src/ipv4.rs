//! The Internet Protocol, version 4 (RFC 791).
//!
//! The IP datagram is the paper's "basic architectural feature": the
//! self-contained unit that can be forwarded by a gateway holding *no*
//! conversation state. Every design decision visible in this header —
//! fragmentation fields for the "variety of networks" goal, the ToS octet
//! for "types of service", TTL for loop survival, and the absence of any
//! connection identifier — is an artifact of the goal ordering Clark
//! describes.

use crate::checksum;
use crate::field::{Field, Rest};
use crate::types::{IpProtocol, Ipv4Address, Tos};
use crate::{Error, Result};

/// Length of the options-free IPv4 header emitted by this stack.
pub const HEADER_LEN: usize = 20;

/// Every network in the catenet must carry a datagram of at least this
/// size without fragmentation (RFC 791's 68-octet rule, rounded to the
/// classic 576-byte reassembly guarantee is a host matter; links enforce
/// this link-layer minimum).
pub const MIN_MTU: usize = 68;

mod fields {
    use super::{Field, Rest};
    pub const VER_IHL: usize = 0;
    pub const TOS: usize = 1;
    pub const LENGTH: Field = 2..4;
    pub const IDENT: Field = 4..6;
    pub const FLG_OFF: Field = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Field = 10..12;
    pub const SRC_ADDR: Field = 12..16;
    pub const DST_ADDR: Field = 16..20;
    pub const PAYLOAD: Rest = 20..;
}

/// The IPv4 header flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Don't Fragment: gateways must drop (and signal) rather than fragment.
    pub dont_frag: bool,
    /// More Fragments: further fragments of this datagram follow.
    pub more_frags: bool,
}

/// The tuple that identifies fragments of one original datagram
/// (RFC 791 §3.2): source, destination, protocol, identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Source address of the original datagram.
    pub src_addr: Ipv4Address,
    /// Destination address of the original datagram.
    pub dst_addr: Ipv4Address,
    /// Upper-layer protocol.
    pub protocol: IpProtocol,
    /// The identification field.
    pub ident: u16,
}

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer and validate lengths and version.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants: buffer covers the header, the IHL
    /// is sane, and the total length fits within the buffer.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Version);
        }
        let header_len = usize::from(self.header_len());
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(Error::Malformed);
        }
        let total_len = usize::from(self.total_len());
        if total_len < header_len || total_len > data.len() {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The IP version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[fields::VER_IHL] >> 4
    }

    /// The header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[fields::VER_IHL] & 0x0f) * 4
    }

    /// The Type-of-Service octet.
    pub fn tos(&self) -> Tos {
        Tos(self.buffer.as_ref()[fields::TOS])
    }

    /// The total datagram length (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::LENGTH];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The identification field.
    pub fn ident(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::IDENT];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The flags.
    pub fn flags(&self) -> Flags {
        let raw = self.buffer.as_ref()[fields::FLG_OFF.start];
        Flags {
            dont_frag: raw & 0x40 != 0,
            more_frags: raw & 0x20 != 0,
        }
    }

    /// The fragment offset in bytes (the wire field is in 8-byte units).
    pub fn frag_offset(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::FLG_OFF];
        (u16::from_be_bytes([raw[0], raw[1]]) & 0x1fff) << 3
    }

    /// Whether this packet is a fragment (offset ≠ 0 or more-fragments set).
    pub fn is_fragment(&self) -> bool {
        self.frag_offset() != 0 || self.flags().more_frags
    }

    /// The time-to-live field.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[fields::TTL]
    }

    /// The upper-layer protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[fields::PROTOCOL])
    }

    /// The header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::CHECKSUM];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The source address.
    pub fn src_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[fields::SRC_ADDR])
    }

    /// The destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[fields::DST_ADDR])
    }

    /// The reassembly key of this packet.
    pub fn key(&self) -> Key {
        Key {
            src_addr: self.src_addr(),
            dst_addr: self.dst_addr(),
            protocol: self.protocol(),
            ident: self.ident(),
        }
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..usize::from(self.header_len())];
        checksum::verify(header)
    }

    /// The payload, bounded by `total_len`.
    pub fn payload(&self) -> &[u8] {
        let header_len = usize::from(self.header_len());
        let total_len = usize::from(self.total_len());
        &self.buffer.as_ref()[header_len..total_len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the version and header-length fields for an options-free header.
    pub fn set_version_and_header_len(&mut self) {
        self.buffer.as_mut()[fields::VER_IHL] = 0x45;
    }

    /// Set the Type-of-Service octet.
    pub fn set_tos(&mut self, tos: Tos) {
        self.buffer.as_mut()[fields::TOS] = tos.0;
    }

    /// Set the total datagram length.
    pub fn set_total_len(&mut self, value: u16) {
        self.buffer.as_mut()[fields::LENGTH].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, value: u16) {
        self.buffer.as_mut()[fields::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the flags and fragment offset (offset given in bytes; must be a
    /// multiple of 8).
    pub fn set_flags_and_frag_offset(&mut self, flags: Flags, offset_bytes: u16) {
        debug_assert_eq!(offset_bytes % 8, 0, "fragment offsets are 8-byte aligned");
        let mut raw = offset_bytes >> 3;
        if flags.dont_frag {
            raw |= 0x4000;
        }
        if flags.more_frags {
            raw |= 0x2000;
        }
        self.buffer.as_mut()[fields::FLG_OFF].copy_from_slice(&raw.to_be_bytes());
    }

    /// Set the time-to-live.
    pub fn set_hop_limit(&mut self, value: u8) {
        self.buffer.as_mut()[fields::TTL] = value;
    }

    /// Set the upper-layer protocol.
    pub fn set_protocol(&mut self, value: IpProtocol) {
        self.buffer.as_mut()[fields::PROTOCOL] = value.into();
    }

    /// Set the header checksum field.
    pub fn set_header_checksum(&mut self, value: u16) {
        self.buffer.as_mut()[fields::CHECKSUM].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Address) {
        self.buffer.as_mut()[fields::SRC_ADDR].copy_from_slice(addr.as_bytes());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Address) {
        self.buffer.as_mut()[fields::DST_ADDR].copy_from_slice(addr.as_bytes());
    }

    /// Compute and store the header checksum.
    pub fn fill_checksum(&mut self) {
        self.set_header_checksum(0);
        let header_len = usize::from(self.header_len());
        let csum = checksum::checksum(&self.buffer.as_ref()[..header_len]);
        self.set_header_checksum(csum);
    }

    /// Decrement the TTL in place and refresh the checksum, as a gateway
    /// does when forwarding. Returns the new TTL.
    ///
    /// The checksum is adjusted with the RFC 1624 incremental update over
    /// the single 16-bit word that changed (`TTL | protocol`) instead of
    /// re-summing the whole header — O(1) per hop. For a header whose
    /// stored checksum verifies, the result is bit-identical to
    /// [`fill_checksum`] (`tests/ttl_incremental.rs` proves this over
    /// random headers); an already-expired TTL is left untouched.
    pub fn decrement_hop_limit(&mut self) -> u8 {
        let ttl = self.hop_limit();
        if ttl == 0 {
            return 0;
        }
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes([data[fields::TTL], data[fields::PROTOCOL]]);
        let new = old - 0x0100;
        data[fields::TTL] = ttl - 1;
        let refreshed = checksum::update(self.header_checksum(), old, new);
        self.set_header_checksum(refreshed);
        ttl - 1
    }

    /// Mutable access to the payload (bounded by `total_len`).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = usize::from(self.header_len());
        let total_len = usize::from(self.total_len());
        &mut self.buffer.as_mut()[header_len..total_len]
    }

    /// Mutable access to everything after the header, ignoring `total_len`
    /// (used while constructing a packet before the length is set).
    pub fn rest_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[fields::PAYLOAD]
    }
}

/// High-level representation of an (options-free) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv4Address,
    /// Destination address.
    pub dst_addr: Ipv4Address,
    /// Upper-layer protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes (excluding the IP header).
    pub payload_len: usize,
    /// Time-to-live.
    pub hop_limit: u8,
    /// Type of service.
    pub tos: Tos,
}

impl Repr {
    /// Parse and validate a non-fragment header into its representation.
    ///
    /// Fragments carry the same header but their payload is only a piece
    /// of the upper-layer datagram, so they are handled by the reassembler
    /// (in `catenet-ip`) rather than parsed directly to a `Repr`.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: usize::from(packet.total_len()) - usize::from(packet.header_len()),
            hop_limit: packet.hop_limit(),
            tos: packet.tos(),
        })
    }

    /// The length of the emitted header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// The total datagram length this header describes.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the representation (ident 0, no fragmentation, checksum not
    /// yet filled — call [`Packet::fill_checksum`] after writing payload).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_and_header_len();
        packet.set_tos(self.tos);
        packet.set_total_len(self.total_len() as u16);
        packet.set_ident(0);
        packet.set_flags_and_frag_offset(Flags::default(), 0);
        packet.set_hop_limit(self.hop_limit);
        packet.set_protocol(self.protocol);
        packet.set_header_checksum(0);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
    }
}

/// An IPv4 CIDR block: an address plus prefix length.
/// Ordered (address, then prefix length) so CIDR-keyed maps iterate
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cidr {
    address: Ipv4Address,
    prefix_len: u8,
}

impl Cidr {
    /// Construct a CIDR block. Panics if `prefix_len > 32`.
    pub fn new(address: Ipv4Address, prefix_len: u8) -> Cidr {
        assert!(prefix_len <= 32, "prefix length out of range");
        Cidr {
            address,
            prefix_len,
        }
    }

    /// The address portion.
    pub fn address(&self) -> Ipv4Address {
        self.address
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The netmask as an address.
    pub fn netmask(&self) -> Ipv4Address {
        Ipv4Address::from_u32(self.mask())
    }

    fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(self.prefix_len))
        }
    }

    /// The network address (host bits cleared).
    pub fn network(&self) -> Cidr {
        Cidr {
            address: Ipv4Address::from_u32(self.address.to_u32() & self.mask()),
            prefix_len: self.prefix_len,
        }
    }

    /// The directed-broadcast address of this network.
    pub fn broadcast(&self) -> Ipv4Address {
        Ipv4Address::from_u32(self.address.to_u32() | !self.mask())
    }

    /// Whether `addr` falls within this block.
    pub fn contains(&self, addr: Ipv4Address) -> bool {
        (addr.to_u32() & self.mask()) == (self.address.to_u32() & self.mask())
    }

    /// Whether `other` is entirely within this block.
    pub fn contains_subnet(&self, other: &Cidr) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.address)
    }
}

impl core::fmt::Display for Cidr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.address, self.prefix_len)
    }
}

impl core::str::FromStr for Cidr {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) = s.split_once('/').ok_or(Error::Malformed)?;
        let address: Ipv4Address = addr.parse()?;
        let prefix_len: u8 = len.parse().map_err(|_| Error::Malformed)?;
        if prefix_len > 32 {
            return Err(Error::Malformed);
        }
        Ok(Cidr::new(address, prefix_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Repr {
        Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len: 8,
            hop_limit: 64,
            tos: Tos::default(),
        }
    }

    fn sample_packet() -> Vec<u8> {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.total_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(b"datagram");
        packet.fill_checksum();
        buf
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = sample_packet();
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap(), sample_repr());
        assert_eq!(packet.payload(), b"datagram");
        assert!(!packet.is_fragment());
    }

    #[test]
    fn checksum_corruption_detected() {
        let mut buf = sample_packet();
        buf[12] ^= 0x01; // flip a source-address bit
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample_packet();
        buf[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Version);
    }

    #[test]
    fn short_ihl_rejected() {
        let mut buf = sample_packet();
        buf[0] = 0x44; // IHL = 16 bytes < 20
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn total_len_beyond_buffer_rejected() {
        let mut buf = sample_packet();
        buf[2] = 0xff;
        buf[3] = 0xff;
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn payload_bounded_by_total_len() {
        // Extra trailing bytes (link-layer padding) must not leak into payload.
        let mut buf = sample_packet();
        buf.extend_from_slice(&[0xEE; 6]);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"datagram");
    }

    #[test]
    fn fragment_fields_round_trip() {
        let mut buf = sample_packet();
        {
            let mut packet = Packet::new_unchecked(&mut buf[..]);
            packet.set_ident(0xbeef);
            packet.set_flags_and_frag_offset(
                Flags {
                    dont_frag: false,
                    more_frags: true,
                },
                1480,
            );
            packet.fill_checksum();
        }
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.ident(), 0xbeef);
        assert_eq!(packet.frag_offset(), 1480);
        assert!(packet.flags().more_frags);
        assert!(!packet.flags().dont_frag);
        assert!(packet.is_fragment());
        assert!(packet.verify_checksum());
    }

    #[test]
    fn ttl_decrement_refreshes_checksum() {
        let mut buf = sample_packet();
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        let ttl_before = packet.hop_limit();
        let ttl_after = packet.decrement_hop_limit();
        assert_eq!(ttl_after, ttl_before - 1);
        assert!(packet.verify_checksum());
    }

    #[test]
    fn ttl_decrement_saturates_at_zero() {
        let mut buf = sample_packet();
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.set_hop_limit(0);
        assert_eq!(packet.decrement_hop_limit(), 0);
    }

    #[test]
    fn reassembly_key() {
        let buf = sample_packet();
        let packet = Packet::new_checked(&buf[..]).unwrap();
        let key = packet.key();
        assert_eq!(key.src_addr, Ipv4Address::new(10, 0, 0, 1));
        assert_eq!(key.protocol, IpProtocol::Udp);
    }

    #[test]
    fn cidr_basics() {
        let cidr = Cidr::new(Ipv4Address::new(192, 168, 1, 17), 24);
        assert_eq!(cidr.netmask(), Ipv4Address::new(255, 255, 255, 0));
        assert_eq!(
            cidr.network().address(),
            Ipv4Address::new(192, 168, 1, 0)
        );
        assert_eq!(cidr.broadcast(), Ipv4Address::new(192, 168, 1, 255));
        assert!(cidr.contains(Ipv4Address::new(192, 168, 1, 200)));
        assert!(!cidr.contains(Ipv4Address::new(192, 168, 2, 1)));
    }

    #[test]
    fn cidr_zero_prefix_contains_everything() {
        let default = Cidr::new(Ipv4Address::UNSPECIFIED, 0);
        assert!(default.contains(Ipv4Address::new(1, 2, 3, 4)));
        assert!(default.contains(Ipv4Address::BROADCAST));
    }

    #[test]
    fn cidr_subnet_containment() {
        let outer = Cidr::new(Ipv4Address::new(10, 0, 0, 0), 8);
        let inner = Cidr::new(Ipv4Address::new(10, 1, 0, 0), 16);
        assert!(outer.contains_subnet(&inner));
        assert!(!inner.contains_subnet(&outer));
    }

    #[test]
    fn cidr_parse_display() {
        let cidr: Cidr = "10.2.0.0/16".parse().unwrap();
        assert_eq!(cidr.to_string(), "10.2.0.0/16");
        assert!("10.2.0.0/33".parse::<Cidr>().is_err());
        assert!("10.2.0.0".parse::<Cidr>().is_err());
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn cidr_bad_prefix_panics() {
        let _ = Cidr::new(Ipv4Address::UNSPECIFIED, 40);
    }
}
