//! # catenet-wire
//!
//! Zero-copy wire formats for the DARPA Internet protocol suite, in the
//! idiom of `smoltcp`: each protocol has
//!
//! - a **view type** (`Packet<T: AsRef<[u8]>>`) that wraps a byte buffer and
//!   provides field accessors without copying, plus setters when
//!   `T: AsMut<[u8]>`, and
//! - a **representation** (`Repr`) — a plain Rust struct holding the parsed,
//!   validated, high-level content — with `parse` (view → repr) and `emit`
//!   (repr → view) round-trips.
//!
//! Supported formats: Ethernet II, ARP, IPv4 (including fragmentation
//! fields and 1988-era Type-of-Service), ICMPv4, UDP and TCP (with MSS
//! option). These are exactly the formats whose design rationale Clark's
//! 1988 SIGCOMM paper explains.
//!
//! ## Example
//!
//! ```
//! use catenet_wire::{Ipv4Address, Ipv4Packet, Ipv4Repr, IpProtocol};
//!
//! let repr = Ipv4Repr {
//!     src_addr: Ipv4Address::new(10, 0, 0, 1),
//!     dst_addr: Ipv4Address::new(10, 0, 0, 2),
//!     protocol: IpProtocol::Udp,
//!     payload_len: 4,
//!     hop_limit: 64,
//!     tos: Default::default(),
//! };
//! let mut buf = vec![0u8; repr.buffer_len() + 4];
//! let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
//! repr.emit(&mut packet);
//! packet.payload_mut().copy_from_slice(b"ping");
//! packet.fill_checksum();
//!
//! let parsed = Ipv4Packet::new_checked(&buf[..]).unwrap();
//! assert_eq!(Ipv4Repr::parse(&parsed).unwrap(), repr);
//! assert_eq!(parsed.payload(), b"ping");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod crc32c;
pub mod ethernet;
pub mod icmpv4;
pub mod ipv4;
pub mod tcp;
pub mod types;
pub mod udp;

pub use arp::{Operation as ArpOperation, Packet as ArpPacket, Repr as ArpRepr};
pub use crc32c::crc32c;
pub use ethernet::{EtherType, Frame as EthernetFrame, Repr as EthernetRepr};
pub use icmpv4::{
    DstUnreachable, Message as Icmpv4Message, Packet as Icmpv4Packet, Repr as Icmpv4Repr,
    TimeExceeded,
};
pub use ipv4::{
    Cidr as Ipv4Cidr, Flags as Ipv4Flags, Key as Ipv4FragKey, Packet as Ipv4Packet,
    Repr as Ipv4Repr, HEADER_LEN as IPV4_HEADER_LEN, MIN_MTU as IPV4_MIN_MTU,
};
pub use tcp::{
    Control as TcpControl, Packet as TcpPacket, Repr as TcpRepr, SeqNumber as TcpSeqNumber,
    HEADER_LEN as TCP_HEADER_LEN,
};
pub use types::{EthernetAddress, IpProtocol, Ipv4Address, ServiceClass, Tos};
pub use udp::{Packet as UdpPacket, Repr as UdpRepr, HEADER_LEN as UDP_HEADER_LEN};

/// An error in parsing a wire format.
///
/// The catenet stack, like the DARPA internet it models, is liberal in what
/// it accepts: a parse error means the datagram is dropped silently (or with
/// an ICMP where the standard requires one), never that the node fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The buffer is shorter than the smallest valid encoding.
    Truncated,
    /// A checksum (header or pseudo-header) did not verify.
    Checksum,
    /// A field holds a value that is structurally impossible
    /// (e.g. an IPv4 IHL shorter than the fixed header).
    Malformed,
    /// A version field names a protocol version we do not speak.
    Version,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated packet"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Malformed => write!(f, "malformed field"),
            Error::Version => write!(f, "unsupported protocol version"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire-format operations.
pub type Result<T> = core::result::Result<T, Error>;

pub(crate) mod field {
    //! Byte ranges of protocol header fields, the smoltcp way.
    pub type Field = core::ops::Range<usize>;
    pub type Rest = core::ops::RangeFrom<usize>;
}
