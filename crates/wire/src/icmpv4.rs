//! The Internet Control Message Protocol (RFC 792).
//!
//! ICMP is the architecture's fault-reporting channel. The 1988 paper's
//! survivability story depends on failures being *survivable*, not silent:
//! time-exceeded reveals routing loops during reconvergence, destination
//! unreachable reveals partitions, and source quench was the era's only
//! congestion signal from the network to the endpoint.

use crate::checksum;
use crate::field::{Field, Rest};
use crate::{Error, Result};

/// Length of the fixed ICMPv4 header (type, code, checksum, 4 rest bytes).
pub const HEADER_LEN: usize = 8;

mod fields {
    use super::{Field, Rest};
    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: Field = 2..4;
    pub const IDENT: Field = 4..6;
    pub const SEQNO: Field = 6..8;
    pub const UNUSED: Field = 4..8;
    pub const PAYLOAD: Rest = 8..;
}

/// Codes for Destination Unreachable messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DstUnreachable {
    /// Code 0: the destination network cannot be reached.
    NetUnreachable,
    /// Code 1: the destination host cannot be reached.
    HostUnreachable,
    /// Code 2: the protocol is not supported at the destination.
    ProtoUnreachable,
    /// Code 3: no one is listening on the destination port.
    PortUnreachable,
    /// Code 4: fragmentation needed but Don't-Fragment set.
    FragRequired,
    /// Any other code.
    Unknown(u8),
}

impl From<u8> for DstUnreachable {
    fn from(value: u8) -> Self {
        match value {
            0 => DstUnreachable::NetUnreachable,
            1 => DstUnreachable::HostUnreachable,
            2 => DstUnreachable::ProtoUnreachable,
            3 => DstUnreachable::PortUnreachable,
            4 => DstUnreachable::FragRequired,
            other => DstUnreachable::Unknown(other),
        }
    }
}

impl From<DstUnreachable> for u8 {
    fn from(value: DstUnreachable) -> Self {
        match value {
            DstUnreachable::NetUnreachable => 0,
            DstUnreachable::HostUnreachable => 1,
            DstUnreachable::ProtoUnreachable => 2,
            DstUnreachable::PortUnreachable => 3,
            DstUnreachable::FragRequired => 4,
            DstUnreachable::Unknown(other) => other,
        }
    }
}

/// Codes for Time Exceeded messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeExceeded {
    /// Code 0: TTL reached zero in transit.
    TtlExpired,
    /// Code 1: fragment reassembly timer expired.
    FragReassembly,
    /// Any other code.
    Unknown(u8),
}

impl From<u8> for TimeExceeded {
    fn from(value: u8) -> Self {
        match value {
            0 => TimeExceeded::TtlExpired,
            1 => TimeExceeded::FragReassembly,
            other => TimeExceeded::Unknown(other),
        }
    }
}

impl From<TimeExceeded> for u8 {
    fn from(value: TimeExceeded) -> Self {
        match value {
            TimeExceeded::TtlExpired => 0,
            TimeExceeded::FragReassembly => 1,
            TimeExceeded::Unknown(other) => other,
        }
    }
}

/// The message types this stack understands, with their variable parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier (usually per-process).
        ident: u16,
        /// Sequence number.
        seq_no: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed back.
        ident: u16,
        /// Sequence number echoed back.
        seq_no: u16,
    },
    /// Destination unreachable (type 3).
    DstUnreachable(DstUnreachable),
    /// Source quench (type 4) — the 1988-era congestion signal.
    SourceQuench,
    /// Time exceeded (type 11).
    TimeExceeded(TimeExceeded),
    /// Anything else, carried as raw type and code.
    Unknown {
        /// The message type octet.
        msg_type: u8,
        /// The code octet.
        code: u8,
    },
}

impl Message {
    /// The wire type and code octets.
    pub fn type_and_code(&self) -> (u8, u8) {
        match *self {
            Message::EchoReply { .. } => (0, 0),
            Message::DstUnreachable(code) => (3, code.into()),
            Message::SourceQuench => (4, 0),
            Message::EchoRequest { .. } => (8, 0),
            Message::TimeExceeded(code) => (11, code.into()),
            Message::Unknown { msg_type, code } => (msg_type, code),
        }
    }

    /// Whether this message reports an error about another datagram
    /// (and therefore must never itself trigger an ICMP error).
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            Message::DstUnreachable(_) | Message::TimeExceeded(_) | Message::SourceQuench
        )
    }
}

/// A read/write view of an ICMPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer and check its length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate the buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The message type octet.
    pub fn msg_type(&self) -> u8 {
        self.buffer.as_ref()[fields::TYPE]
    }

    /// The code octet.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[fields::CODE]
    }

    /// The checksum field.
    pub fn checksum_field(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::CHECKSUM];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The echo identifier (only meaningful for echo messages).
    pub fn echo_ident(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::IDENT];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The echo sequence number (only meaningful for echo messages).
    pub fn echo_seq_no(&self) -> u16 {
        let raw = &self.buffer.as_ref()[fields::SEQNO];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// Verify the message checksum over the whole buffer.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }

    /// The data after the fixed header. For echo messages this is the echo
    /// payload; for error messages it is the original IP header + 8 bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[fields::PAYLOAD]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the message type octet.
    pub fn set_msg_type(&mut self, value: u8) {
        self.buffer.as_mut()[fields::TYPE] = value;
    }

    /// Set the code octet.
    pub fn set_code(&mut self, value: u8) {
        self.buffer.as_mut()[fields::CODE] = value;
    }

    /// Set the checksum field.
    pub fn set_checksum_field(&mut self, value: u16) {
        self.buffer.as_mut()[fields::CHECKSUM].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the echo identifier.
    pub fn set_echo_ident(&mut self, value: u16) {
        self.buffer.as_mut()[fields::IDENT].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the echo sequence number.
    pub fn set_echo_seq_no(&mut self, value: u16) {
        self.buffer.as_mut()[fields::SEQNO].copy_from_slice(&value.to_be_bytes());
    }

    /// Zero the unused 4 bytes (for error messages).
    pub fn clear_unused(&mut self) {
        self.buffer.as_mut()[fields::UNUSED].fill(0);
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[fields::PAYLOAD]
    }

    /// Compute and store the checksum over the whole buffer.
    pub fn fill_checksum(&mut self) {
        self.set_checksum_field(0);
        let csum = checksum::checksum(self.buffer.as_ref());
        self.set_checksum_field(csum);
    }
}

/// High-level representation of an ICMPv4 message header. The payload
/// (echo data or quoted original datagram) travels alongside, not inside,
/// this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// The message kind and its variable fields.
    pub message: Message,
    /// Length of the data following the fixed header.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a packet into its representation, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        let message = match (packet.msg_type(), packet.code()) {
            (0, 0) => Message::EchoReply {
                ident: packet.echo_ident(),
                seq_no: packet.echo_seq_no(),
            },
            (3, code) => Message::DstUnreachable(code.into()),
            (4, 0) => Message::SourceQuench,
            (8, 0) => Message::EchoRequest {
                ident: packet.echo_ident(),
                seq_no: packet.echo_seq_no(),
            },
            (11, code) => Message::TimeExceeded(code.into()),
            (msg_type, code) => Message::Unknown { msg_type, code },
        };
        Ok(Repr {
            message,
            payload_len: packet.payload().len(),
        })
    }

    /// The length of the emitted message, including payload space.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header into a packet view. The caller writes the payload
    /// afterwards and then calls [`Packet::fill_checksum`].
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        let (msg_type, code) = self.message.type_and_code();
        packet.set_msg_type(msg_type);
        packet.set_code(code);
        packet.set_checksum_field(0);
        match self.message {
            Message::EchoRequest { ident, seq_no } | Message::EchoReply { ident, seq_no } => {
                packet.set_echo_ident(ident);
                packet.set_echo_seq_no(seq_no);
            }
            _ => packet.clear_unused(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(message: Message, payload: &[u8]) -> Vec<u8> {
        let repr = Repr {
            message,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(payload);
        packet.fill_checksum();
        buf
    }

    #[test]
    fn echo_round_trip() {
        let message = Message::EchoRequest {
            ident: 0x1234,
            seq_no: 7,
        };
        let buf = build(message, b"abcdefgh");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let repr = Repr::parse(&packet).unwrap();
        assert_eq!(repr.message, message);
        assert_eq!(repr.payload_len, 8);
        assert_eq!(packet.payload(), b"abcdefgh");
        assert!(!message.is_error());
    }

    #[test]
    fn echo_reply_round_trip() {
        let message = Message::EchoReply {
            ident: 9,
            seq_no: 10,
        };
        let buf = build(message, &[]);
        let repr = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(repr.message, message);
    }

    #[test]
    fn unreachable_round_trip() {
        let message = Message::DstUnreachable(DstUnreachable::PortUnreachable);
        let quoted = [0x45u8; 28]; // original header + 8 bytes
        let buf = build(message, &quoted);
        let repr = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(repr.message, message);
        assert_eq!(repr.payload_len, 28);
        assert!(message.is_error());
    }

    #[test]
    fn time_exceeded_and_quench() {
        for message in [
            Message::TimeExceeded(TimeExceeded::TtlExpired),
            Message::TimeExceeded(TimeExceeded::FragReassembly),
            Message::SourceQuench,
        ] {
            let buf = build(message, &[0u8; 28]);
            let repr = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
            assert_eq!(repr.message, message);
            assert!(message.is_error());
        }
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut buf = build(Message::SourceQuench, &[0u8; 8]);
        buf[9] ^= 0xff;
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn unknown_type_carried() {
        let message = Message::Unknown {
            msg_type: 13,
            code: 0,
        };
        let buf = build(message, &[]);
        let repr = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(repr.message, message);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
    }
}
