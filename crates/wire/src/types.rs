//! Primitive address and protocol-number types shared by all wire formats.

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// Construct from six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        EthernetAddress([a, b, c, d, e, f])
    }

    /// Construct from a byte slice. Panics if `data.len() != 6`.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut bytes = [0u8; 6];
        bytes.copy_from_slice(data);
        EthernetAddress(bytes)
    }

    /// The address octets.
    pub const fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Whether this is the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Whether the multicast (group) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a unicast address (neither broadcast nor multicast).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl core::fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);
    /// The limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Address = Ipv4Address([255; 4]);

    /// Construct from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// Construct from a byte slice. Panics if `data.len() != 4`.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(data);
        Ipv4Address(bytes)
    }

    /// Construct from a host-order `u32`.
    pub const fn from_u32(value: u32) -> Self {
        Ipv4Address(value.to_be_bytes())
    }

    /// The address as a host-order `u32`.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// The address octets.
    pub const fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Whether this is `0.0.0.0`.
    pub fn is_unspecified(&self) -> bool {
        self.to_u32() == 0
    }

    /// Whether this is the limited broadcast `255.255.255.255`.
    pub fn is_broadcast(&self) -> bool {
        self.to_u32() == 0xffff_ffff
    }

    /// Whether this is a class-D multicast address (`224.0.0.0/4`).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0xf0 == 0xe0
    }

    /// Whether this is a loopback address (`127.0.0.0/8`).
    pub fn is_loopback(&self) -> bool {
        self.0[0] == 127
    }

    /// Whether this address may appear as a unicast source or destination.
    pub fn is_unicast(&self) -> bool {
        !(self.is_unspecified() || self.is_broadcast() || self.is_multicast())
    }
}

impl core::fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = &self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

impl core::str::FromStr for Ipv4Address {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(crate::Error::Malformed)?;
            *octet = part.parse().map_err(|_| crate::Error::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(crate::Error::Malformed);
        }
        Ok(Ipv4Address(octets))
    }
}

impl From<[u8; 4]> for Ipv4Address {
    fn from(octets: [u8; 4]) -> Self {
        Ipv4Address(octets)
    }
}

/// An IP protocol number, as carried in the IPv4 `protocol` field.
///
/// Unknown values are carried verbatim (the internet layer must forward
/// protocols it has never heard of — that is the point of the datagram
/// architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IpProtocol {
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Any other protocol number.
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(value: u8) -> Self {
        match value {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(value: IpProtocol) -> Self {
        match value {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(other) => other,
        }
    }
}

impl core::fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Unknown(value) => write!(f, "proto-{value}"),
        }
    }
}

/// The 1988-era interpretation of the IPv4 Type-of-Service octet
/// (RFC 791 / RFC 1349 lineage): a 3-bit precedence field plus
/// delay / throughput / reliability preference bits.
///
/// Clark's paper names "types of service" as the *second* most important
/// goal of the architecture; the ToS octet is the datagram-level knob the
/// architecture provides for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Tos(pub u8);

impl Tos {
    const LOW_DELAY: u8 = 0b0001_0000;
    const HIGH_THROUGHPUT: u8 = 0b0000_1000;
    const HIGH_RELIABILITY: u8 = 0b0000_0100;

    /// Build a ToS octet from precedence (0..=7) and preference flags.
    pub fn new(precedence: u8, low_delay: bool, high_throughput: bool, high_reliability: bool) -> Self {
        let mut value = (precedence & 0x7) << 5;
        if low_delay {
            value |= Self::LOW_DELAY;
        }
        if high_throughput {
            value |= Self::HIGH_THROUGHPUT;
        }
        if high_reliability {
            value |= Self::HIGH_RELIABILITY;
        }
        Tos(value)
    }

    /// The 3-bit precedence field.
    pub fn precedence(&self) -> u8 {
        self.0 >> 5
    }

    /// Whether the low-delay preference bit is set.
    pub fn low_delay(&self) -> bool {
        self.0 & Self::LOW_DELAY != 0
    }

    /// Whether the high-throughput preference bit is set.
    pub fn high_throughput(&self) -> bool {
        self.0 & Self::HIGH_THROUGHPUT != 0
    }

    /// Whether the high-reliability preference bit is set.
    pub fn high_reliability(&self) -> bool {
        self.0 & Self::HIGH_RELIABILITY != 0
    }

    /// Map to the coarse service class used by schedulers.
    pub fn service_class(&self) -> ServiceClass {
        if self.low_delay() {
            ServiceClass::LowDelay
        } else if self.high_throughput() {
            ServiceClass::HighThroughput
        } else {
            ServiceClass::BestEffort
        }
    }
}

impl core::fmt::Display for Tos {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "prec={}", self.precedence())?;
        if self.low_delay() {
            write!(f, ",D")?;
        }
        if self.high_throughput() {
            write!(f, ",T")?;
        }
        if self.high_reliability() {
            write!(f, ",R")?;
        }
        Ok(())
    }
}

/// The coarse service classes a gateway scheduler distinguishes,
/// derived from the ToS octet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceClass {
    /// Interactive / real-time traffic (e.g. packet voice, XNET).
    LowDelay,
    /// Bulk traffic that prefers throughput over latency.
    HighThroughput,
    /// Everything else.
    BestEffort,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_address_properties() {
        let unicast = EthernetAddress::new(0x02, 0, 0, 0, 0, 0x01);
        assert!(unicast.is_unicast());
        assert!(!unicast.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        let multicast = EthernetAddress::new(0x01, 0, 0x5e, 0, 0, 1);
        assert!(multicast.is_multicast());
        assert!(!multicast.is_unicast());
    }

    #[test]
    fn ethernet_address_display() {
        let addr = EthernetAddress::new(0x02, 0x00, 0x00, 0xab, 0xcd, 0xef);
        assert_eq!(addr.to_string(), "02:00:00:ab:cd:ef");
    }

    #[test]
    fn ipv4_address_classification() {
        assert!(Ipv4Address::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Address::BROADCAST.is_broadcast());
        assert!(Ipv4Address::new(224, 0, 0, 9).is_multicast());
        assert!(Ipv4Address::new(127, 0, 0, 1).is_loopback());
        assert!(Ipv4Address::new(10, 1, 2, 3).is_unicast());
        assert!(!Ipv4Address::BROADCAST.is_unicast());
        assert!(!Ipv4Address::new(239, 255, 255, 255).is_unicast());
    }

    #[test]
    fn ipv4_address_u32_round_trip() {
        let addr = Ipv4Address::new(192, 0, 2, 33);
        assert_eq!(Ipv4Address::from_u32(addr.to_u32()), addr);
        assert_eq!(addr.to_u32(), 0xc000_0221);
    }

    #[test]
    fn ipv4_address_parse() {
        let addr: Ipv4Address = "10.0.255.1".parse().unwrap();
        assert_eq!(addr, Ipv4Address::new(10, 0, 255, 1));
        assert!("10.0.0".parse::<Ipv4Address>().is_err());
        assert!("10.0.0.1.2".parse::<Ipv4Address>().is_err());
        assert!("10.0.0.256".parse::<Ipv4Address>().is_err());
        assert!("ten.0.0.1".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn ip_protocol_round_trip() {
        for value in 0..=255u8 {
            let proto = IpProtocol::from(value);
            assert_eq!(u8::from(proto), value);
        }
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Unknown(89));
    }

    #[test]
    fn tos_bits() {
        let tos = Tos::new(5, true, false, true);
        assert_eq!(tos.precedence(), 5);
        assert!(tos.low_delay());
        assert!(!tos.high_throughput());
        assert!(tos.high_reliability());
        assert_eq!(tos.service_class(), ServiceClass::LowDelay);

        let bulk = Tos::new(0, false, true, false);
        assert_eq!(bulk.service_class(), ServiceClass::HighThroughput);
        assert_eq!(Tos::default().service_class(), ServiceClass::BestEffort);
    }

    #[test]
    fn tos_precedence_masked() {
        let tos = Tos::new(0xff, false, false, false);
        assert_eq!(tos.precedence(), 7);
    }
}
