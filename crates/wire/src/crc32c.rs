//! CRC32C (Castagnoli) — the stronger integrity check the Internet
//! checksum was never meant to be.
//!
//! The paper's goal list ranks accountability and integrity low, and the
//! wire format shows it: the 16-bit one's-complement checksum cannot see
//! word transpositions, cancelling word pairs, or the 0x0000/0xFFFF
//! flip (all pinned by `tests/checksum_escape.rs`). CRC32C detects every
//! one of those classes: it is a degree-32 polynomial code with Hamming
//! distance ≥ 4 over any realistic segment length, and its burst-error
//! guarantee covers all bursts up to 32 bits. This module vendors the
//! reflected table-driven implementation (polynomial 0x1EDC6F41,
//! reflected 0x82F63B78 — the iSCSI/SCTP polynomial) so the stack can
//! carry an opt-in payload CRC without any external dependency.

/// The reflected CRC32C polynomial (0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Compute the CRC32C of `data` (initial value all-ones, final XOR
/// all-ones, reflected — the standard iSCSI/SCTP convention).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[usize::from((crc as u8) ^ byte)];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The canonical check value for "123456789" (RFC 3720 App. B.4
        // uses the same polynomial; this vector is the CRC catalogue's).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // 32 bytes of zeros (iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of ones (iSCSI test vector).
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // Empty input: init XOR final = 0.
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_bytes_change_the_crc() {
        let a = crc32c(b"the quick brown fox");
        let b = crc32c(b"the quick brown foy");
        assert_ne!(a, b);
    }

    #[test]
    fn detects_word_transposition() {
        // The Internet checksum is blind to reordered 16-bit words
        // (one's-complement addition commutes); CRC32C is not.
        let orig = [0x12u8, 0x34, 0xAB, 0xCD, 0x55, 0x66];
        let mut swapped = orig;
        swapped.swap(0, 2);
        swapped.swap(1, 3);
        assert_ne!(crc32c(&orig), crc32c(&swapped));
    }

    #[test]
    fn detects_zero_flip() {
        // 0x0000 -> 0xFFFF in a word is invisible to the one's-complement
        // sum (both are zero); CRC32C sees it.
        let orig = [0x00u8, 0x00, 0x12, 0x34];
        let flipped = [0xFFu8, 0xFF, 0x12, 0x34];
        assert_ne!(crc32c(&orig), crc32c(&flipped));
    }
}
