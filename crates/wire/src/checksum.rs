//! The Internet checksum (RFC 1071): one's-complement sum of 16-bit words.
//!
//! Used by IPv4 (header), ICMPv4 (whole message), and UDP/TCP (pseudo-header
//! plus payload). The checksum is the only integrity mechanism the 1988
//! architecture assumes of itself; everything else is the network's problem
//! or the endpoint's problem — which is exactly the point of the paper's
//! "variety of networks" goal.

use crate::types::{IpProtocol, Ipv4Address};

/// Compute the one's-complement sum of `data`, without the final inversion.
///
/// Odd trailing bytes are padded with zero, per RFC 1071.
///
/// This is the wide kernel: it consumes four 16-bit words per iteration
/// through a `u64` accumulator with end-around carry. Because
/// `2^64 ≡ 1 (mod 2^16 − 1)`, a u64 end-around-carry sum is congruent to
/// the scalar word-by-word sum, so `fold(sum(d)) == fold(sum_scalar(d))`
/// for every input — the folded value, not the raw accumulator, is the
/// contract (see `tests/checksum_lanes.rs`). The partial fold at the end
/// keeps the returned accumulator small enough that [`combine`] and
/// [`pseudo_header_sum`] can add several of them without overflow.
pub fn sum(data: &[u8]) -> u32 {
    let mut wide: u64 = 0;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_be_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        let (added, carry) = wide.overflowing_add(word);
        // End-around carry: 2^64 ≡ 1, so a wrapped bit re-enters at the
        // bottom. `added` can never be u64::MAX when `carry` is set, so
        // this addition itself cannot overflow.
        wide = added + u64::from(carry);
    }
    // Partially fold the four 16-bit lanes down; both steps preserve the
    // value mod 0xffff (2^32 ≡ 1 and 2^16 ≡ 1) and never map a nonzero
    // accumulator to zero.
    let halves = (wide >> 32) + (wide & 0xffff_ffff);
    let mut accum = ((halves >> 16) + (halves & 0xffff)) as u32;
    // Scalar tail for the 0–7 leftover bytes, odd byte zero-padded.
    let mut tail = chunks.remainder().chunks_exact(2);
    for chunk in &mut tail {
        accum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = tail.remainder() {
        accum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    accum
}

/// The scalar reference sum: one 16-bit word per iteration.
///
/// Kept as the executable specification for [`sum`]; the property tests
/// assert `fold(sum(d)) == fold(sum_scalar(d))` exhaustively on short
/// inputs and on seeded random long ones.
pub fn sum_scalar(data: &[u8]) -> u32 {
    let mut accum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        accum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        accum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    accum
}

/// RFC 1624 incremental checksum update: the checksum of a message in
/// which the 16-bit word `old` has been replaced by `new`, given the
/// message's previous `checksum`, without touching the other bytes.
///
/// `HC' = ~(~HC + ~m + m')` (RFC 1624 eq. 3, the form that avoids the
/// minus-zero pitfall of RFC 1141). For any message whose stored
/// checksum was itself produced by [`checksum`] — in particular every
/// IPv4 header this stack builds or verifies before forwarding — the
/// result is bit-identical to a full recompute, because both reductions
/// land on the same canonical representative of the sum mod 0xffff.
pub fn update(checksum: u16, old: u16, new: u16) -> u16 {
    !fold(u32::from(!checksum) + u32::from(!old) + u32::from(new))
}

/// Fold a 32-bit accumulator into a 16-bit one's-complement value.
pub fn fold(mut accum: u32) -> u16 {
    while accum > 0xffff {
        accum = (accum & 0xffff) + (accum >> 16);
    }
    accum as u16
}

/// Compute the Internet checksum of `data` (folded and inverted).
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// Combine several partial (unfolded) sums.
pub fn combine(sums: &[u32]) -> u16 {
    !fold(sums.iter().copied().fold(0, u32::wrapping_add))
}

/// The unfolded sum of the IPv4 pseudo-header used by UDP and TCP.
pub fn pseudo_header_sum(
    src_addr: Ipv4Address,
    dst_addr: Ipv4Address,
    protocol: IpProtocol,
    length: u32,
) -> u32 {
    sum(src_addr.as_bytes())
        + sum(dst_addr.as_bytes())
        + u32::from(u8::from(protocol))
        + (length >> 16)
        + (length & 0xffff)
}

/// Verify that `data` (whose checksum field is included) sums to the
/// all-ones pattern, i.e. the checksum is valid.
pub fn verify(data: &[u8]) -> bool {
    fold(sum(data)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn empty_data() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(verify(&[]) || checksum(&[]) == 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x12u8, 0x34, 0x56, 0x78, 0x00, 0x00];
        let csum = checksum(&data[..]);
        data[4..6].copy_from_slice(&csum.to_be_bytes());
        assert!(verify(&data));
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(!verify(&corrupt), "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn combine_matches_single_pass() {
        let a = [0x01u8, 0x02, 0x03, 0x04];
        let b = [0x05u8, 0x06, 0x07, 0x08];
        let whole: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(combine(&[sum(&a), sum(&b)]), checksum(&whole));
    }

    #[test]
    fn pseudo_header_known_value() {
        let s = pseudo_header_sum(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            IpProtocol::Udp,
            12,
        );
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 12
        assert_eq!(s, 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 17 + 12);
    }

    #[test]
    fn wide_sum_matches_scalar_on_rfc_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum(&data)), fold(sum_scalar(&data)));
        assert_eq!(fold(sum(&data)), 0xddf2);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        // Replace one aligned word and compare against a full re-sum.
        let mut data = vec![0x45u8, 0x00, 0x12, 0x34, 0xab, 0xcd, 0x00, 0x00];
        let ck = checksum(&data);
        data[6..8].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        let old = u16::from_be_bytes([data[2], data[3]]);
        let new = 0x11u16 << 8 | 0x34;
        let incremental = update(ck, old, new);
        data[2..4].copy_from_slice(&new.to_be_bytes());
        data[6..8].copy_from_slice(&[0, 0]);
        assert_eq!(incremental, checksum(&data));
    }

    #[test]
    fn incremental_update_noop_word_is_identity() {
        assert_eq!(update(0x1234, 0xabcd, 0xabcd), 0x1234);
    }

    #[test]
    fn fold_handles_large_accumulators() {
        assert_eq!(fold(0xffff_ffff), 0xffff);
        assert_eq!(fold(0x0001_0000), 0x0001);
        assert_eq!(fold(0x1234_5678), fold(0x5678 + 0x1234));
    }
}
