//! The User Datagram Protocol (RFC 768).
//!
//! UDP is the architectural residue of the TCP/IP split that the 1988 paper
//! recounts: once the reliable-stream machinery moved out of the internet
//! layer into TCP, applications that wanted the *datagram itself* — packet
//! voice, XNET debugging, routing protocols — needed only ports and an
//! optional checksum on top of IP. That thin shim is UDP.

use crate::checksum;
use crate::field::{Field, Rest};
use crate::types::{IpProtocol, Ipv4Address};
use crate::{Error, Result};

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

mod fields {
    use super::{Field, Rest};
    pub const SRC_PORT: Field = 0..2;
    pub const DST_PORT: Field = 2..4;
    pub const LENGTH: Field = 4..6;
    pub const CHECKSUM: Field = 6..8;
    pub const PAYLOAD: Rest = 8..;
}

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, checking lengths.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate the buffer against the header and its length field.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = usize::from(self.len_field());
        if len < HEADER_LEN || len > data.len() {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn u16_at(&self, field: Field) -> u16 {
        let raw = &self.buffer.as_ref()[field];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The source port.
    pub fn src_port(&self) -> u16 {
        self.u16_at(fields::SRC_PORT)
    }

    /// The destination port.
    pub fn dst_port(&self) -> u16 {
        self.u16_at(fields::DST_PORT)
    }

    /// The length field (header + payload).
    pub fn len_field(&self) -> u16 {
        self.u16_at(fields::LENGTH)
    }

    /// The checksum field.
    pub fn checksum_field(&self) -> u16 {
        self.u16_at(fields::CHECKSUM)
    }

    /// Verify the checksum against the pseudo-header. A zero checksum
    /// field means "not computed" and passes (RFC 768).
    pub fn verify_checksum(&self, src_addr: Ipv4Address, dst_addr: Ipv4Address) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = usize::from(self.len_field());
        let data = &self.buffer.as_ref()[..len];
        checksum::fold(
            checksum::pseudo_header_sum(src_addr, dst_addr, IpProtocol::Udp, len as u32)
                + checksum::sum(data),
        ) == 0xffff
    }

    /// The payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field());
        &self.buffer.as_ref()[HEADER_LEN..len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    fn set_u16_at(&mut self, field: Field, value: u16) {
        self.buffer.as_mut()[field].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        self.set_u16_at(fields::SRC_PORT, value);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        self.set_u16_at(fields::DST_PORT, value);
    }

    /// Set the length field.
    pub fn set_len_field(&mut self, value: u16) {
        self.set_u16_at(fields::LENGTH, value);
    }

    /// Set the checksum field.
    pub fn set_checksum_field(&mut self, value: u16) {
        self.set_u16_at(fields::CHECKSUM, value);
    }

    /// Mutable access to everything after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[fields::PAYLOAD]
    }

    /// Compute and store the checksum using the given pseudo-header. A
    /// computed checksum of zero is transmitted as all-ones, per RFC 768.
    pub fn fill_checksum(&mut self, src_addr: Ipv4Address, dst_addr: Ipv4Address) {
        self.set_checksum_field(0);
        let len = usize::from(self.len_field());
        let csum = {
            let data = &self.buffer.as_ref()[..len];
            checksum::combine(&[
                checksum::pseudo_header_sum(src_addr, dst_addr, IpProtocol::Udp, len as u32),
                checksum::sum(data),
            ])
        };
        self.set_checksum_field(if csum == 0 { 0xffff } else { csum });
    }
}

/// High-level representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a datagram, verifying the checksum against the pseudo-header.
    pub fn parse<T: AsRef<[u8]>>(
        packet: &Packet<T>,
        src_addr: Ipv4Address,
        dst_addr: Ipv4Address,
    ) -> Result<Repr> {
        packet.check_len()?;
        if !packet.verify_checksum(src_addr, dst_addr) {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload_len: usize::from(packet.len_field()) - HEADER_LEN,
        })
    }

    /// The length of the emitted datagram including payload space.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header. Write the payload afterwards, then call
    /// [`Packet::fill_checksum`].
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len_field(self.buffer_len() as u16);
        packet.set_checksum_field(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn build(payload: &[u8]) -> Vec<u8> {
        let repr = Repr {
            src_port: 5000,
            dst_port: 53,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(payload);
        packet.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn round_trip() {
        let buf = build(b"query");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        let repr = Repr::parse(&packet, SRC, DST).unwrap();
        assert_eq!(repr.src_port, 5000);
        assert_eq!(repr.dst_port, 53);
        assert_eq!(repr.payload_len, 5);
        assert_eq!(packet.payload(), b"query");
    }

    #[test]
    fn pseudo_header_binds_addresses() {
        // A datagram delivered to the wrong address must fail its checksum:
        // this is how UDP detects misrouted datagrams without trusting the
        // network — pure end-to-end thinking.
        let buf = build(b"query");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, Ipv4Address::new(10, 0, 0, 3)));
        assert_eq!(
            Repr::parse(&packet, SRC, Ipv4Address::new(10, 0, 0, 3)).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut buf = build(b"query");
        *buf.last_mut().unwrap() ^= 0x20;
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let mut buf = build(b"query");
        buf[6] = 0;
        buf[7] = 0;
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_bounds_payload() {
        let mut buf = build(b"query");
        buf.extend_from_slice(&[0xEE; 3]); // link padding
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"query");
        assert!(packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn bad_length_field_rejected() {
        let mut buf = build(b"query");
        buf[4] = 0;
        buf[5] = 4; // shorter than the header
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
        let mut buf2 = build(b"query");
        buf2[5] = 200; // longer than the buffer
        assert_eq!(
            Packet::new_checked(&buf2[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn empty_payload() {
        let buf = build(b"");
        let repr = Repr::parse(&Packet::new_checked(&buf[..]).unwrap(), SRC, DST).unwrap();
        assert_eq!(repr.payload_len, 0);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 7][..]).unwrap_err(),
            Error::Truncated
        );
    }
}
