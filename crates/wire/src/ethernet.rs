//! Ethernet II framing.
//!
//! Ethernet is one of the "variety of networks" (goal 3) the internet layer
//! must run over. The simulator also offers link classes that carry bare IP
//! datagrams (point-to-point ARPANET/SATNET-style trunks); Ethernet framing
//! is used on the LAN link class, where ARP is required to map IP addresses
//! to hardware addresses.

use crate::field::{Field, Rest};
use crate::types::EthernetAddress;
use crate::{Error, Result};

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

mod fields {
    use super::{Field, Rest};
    pub const DESTINATION: Field = 0..6;
    pub const SOURCE: Field = 6..12;
    pub const ETHERTYPE: Field = 12..14;
    pub const PAYLOAD: Rest = 14..;
}

/// The EtherType of an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    Arp,
    /// Any other EtherType, carried verbatim.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> Self {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(other) => other,
        }
    }
}

/// A read/write view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without validating its length.
    pub const fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, checking it is long enough to hold a header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        let frame = Self::new_unchecked(buffer);
        frame.check_len()?;
        Ok(frame)
    }

    /// Validate the buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < HEADER_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The destination hardware address.
    pub fn dst_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[fields::DESTINATION])
    }

    /// The source hardware address.
    pub fn src_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[fields::SOURCE])
    }

    /// The EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let raw = &self.buffer.as_ref()[fields::ETHERTYPE];
        EtherType::from(u16::from_be_bytes([raw[0], raw[1]]))
    }

    /// The frame payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[fields::PAYLOAD]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination hardware address.
    pub fn set_dst_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[fields::DESTINATION].copy_from_slice(addr.as_bytes());
    }

    /// Set the source hardware address.
    pub fn set_src_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[fields::SOURCE].copy_from_slice(addr.as_bytes());
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, value: EtherType) {
        self.buffer.as_mut()[fields::ETHERTYPE].copy_from_slice(&u16::from(value).to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[fields::PAYLOAD]
    }
}

/// High-level representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source hardware address.
    pub src_addr: EthernetAddress,
    /// Destination hardware address.
    pub dst_addr: EthernetAddress,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse a frame into its representation.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Result<Repr> {
        frame.check_len()?;
        Ok(Repr {
            src_addr: frame.src_addr(),
            dst_addr: frame.dst_addr(),
            ethertype: frame.ethertype(),
        })
    }

    /// The length of the emitted header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit the representation into a frame.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_src_addr(self.src_addr);
        frame.set_dst_addr(self.dst_addr);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static FRAME_BYTES: [u8; 18] = [
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // dst: broadcast
        0x02, 0x00, 0x00, 0x00, 0x00, 0x01, // src
        0x08, 0x00, // IPv4
        0xde, 0xad, 0xbe, 0xef, // payload
    ];

    #[test]
    fn parse_frame() {
        let frame = Frame::new_checked(&FRAME_BYTES[..]).unwrap();
        assert_eq!(frame.dst_addr(), EthernetAddress::BROADCAST);
        assert_eq!(
            frame.src_addr(),
            EthernetAddress::new(0x02, 0, 0, 0, 0, 0x01)
        );
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn emit_round_trip() {
        let repr = Repr {
            src_addr: EthernetAddress::new(0x02, 0, 0, 0, 0, 0x01),
            dst_addr: EthernetAddress::BROADCAST,
            ethertype: EtherType::Ipv4,
        };
        let mut buf = vec![0u8; repr.buffer_len() + 4];
        let mut frame = Frame::new_unchecked(&mut buf[..]);
        repr.emit(&mut frame);
        frame.payload_mut().copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&buf[..], &FRAME_BYTES[..]);

        let parsed = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&parsed).unwrap(), repr);
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(
            Frame::new_checked(&FRAME_BYTES[..13]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let mut bytes = FRAME_BYTES;
        bytes[12] = 0x12;
        bytes[13] = 0x34;
        let frame = Frame::new_checked(&bytes[..]).unwrap();
        assert_eq!(frame.ethertype(), EtherType::Unknown(0x1234));
        assert_eq!(u16::from(frame.ethertype()), 0x1234);
    }
}
