//! The Transmission Control Protocol segment format (RFC 793).
//!
//! The paper devotes its final section to TCP's two most argued-over wire
//! decisions, both visible here:
//!
//! - **Byte-based sequence numbers** (not packet-based): permits a sender
//!   to *repacketize* on retransmission — combining many small unacked
//!   packets into one, or splitting a large one when the path MSS shrinks.
//!   The `catenet-core` baseline `pktseq` implements the rejected
//!   alternative so the benefit can be measured (experiment E9).
//! - **EOL becoming PSH**: the original end-of-letter semantics proved
//!   untenable once bytes were the unit; the PSH flag survives as the
//!   weaker "deliver what you have" signal.

use crate::checksum;
use crate::field::Field;
use crate::types::{IpProtocol, Ipv4Address};
use crate::{Error, Result};

/// Length of the options-free TCP header.
pub const HEADER_LEN: usize = 20;

mod fields {
    use super::Field;
    pub const SRC_PORT: Field = 0..2;
    pub const DST_PORT: Field = 2..4;
    pub const SEQ_NUM: Field = 4..8;
    pub const ACK_NUM: Field = 8..12;
    pub const FLAGS: Field = 12..14;
    pub const WIN_SIZE: Field = 14..16;
    pub const CHECKSUM: Field = 16..18;
    pub const URGENT: Field = 18..20;
}

const FLG_FIN: u16 = 0x001;
const FLG_SYN: u16 = 0x002;
const FLG_RST: u16 = 0x004;
const FLG_PSH: u16 = 0x008;
const FLG_ACK: u16 = 0x010;
const FLG_URG: u16 = 0x020;

const OPT_END: u8 = 0;
const OPT_NOP: u8 = 1;
const OPT_MSS: u8 = 2;
/// Experimental option kind (RFC 4727 reserves 253 for experiments)
/// carrying a CRC32C over the segment payload: kind, length = 6, then
/// four CRC bytes, padded to eight bytes with two leading NOPs when
/// emitted. The Internet checksum's blind spots (cancelling word pairs,
/// transpositions, the 0x0000/0xFFFF flip — see
/// `tests/checksum_escape.rs`) motivated it; it is strictly opt-in and
/// a segment without the option encodes byte-identically to a stack
/// that has never heard of it.
pub const OPT_PAYLOAD_CRC: u8 = 253;
const OPT_PAYLOAD_CRC_LEN: u8 = 6;

/// A TCP sequence number: a 32-bit value compared in modulo arithmetic.
///
/// Sequence space is a ring; `a < b` means "a is earlier than b" within
/// half the space. All window bookkeeping in `catenet-tcp` flows through
/// this type so wraparound is handled in exactly one place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct SeqNumber(pub u32);

impl SeqNumber {
    /// The raw 32-bit value.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// The number of bytes from `other` to `self` (may be negative in
    /// sequence-space terms, returned as a signed distance).
    pub fn distance(self, other: SeqNumber) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// The maximum of two sequence numbers under ring ordering.
    pub fn max(self, other: SeqNumber) -> SeqNumber {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The minimum of two sequence numbers under ring ordering.
    pub fn min(self, other: SeqNumber) -> SeqNumber {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl core::ops::Add<usize> for SeqNumber {
    type Output = SeqNumber;
    fn add(self, rhs: usize) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(rhs as u32))
    }
}

impl core::ops::Sub<usize> for SeqNumber {
    type Output = SeqNumber;
    fn sub(self, rhs: usize) -> SeqNumber {
        SeqNumber(self.0.wrapping_sub(rhs as u32))
    }
}

impl core::ops::Sub<SeqNumber> for SeqNumber {
    type Output = i32;
    fn sub(self, rhs: SeqNumber) -> i32 {
        self.distance(rhs)
    }
}

impl PartialOrd for SeqNumber {
    fn partial_cmp(&self, other: &SeqNumber) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqNumber {
    fn cmp(&self, other: &SeqNumber) -> core::cmp::Ordering {
        self.distance(*other).cmp(&0)
    }
}

impl core::fmt::Display for SeqNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The control flags of a segment, collapsed to the combinations the state
/// machine distinguishes. URG is parsed but ignored (as in smoltcp).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Control {
    /// No control flag: a data or pure-ACK segment.
    #[default]
    None,
    /// PSH set: deliver buffered data to the application promptly.
    Psh,
    /// SYN set: open a connection.
    Syn,
    /// FIN set: close this direction.
    Fin,
    /// RST set: abort the connection.
    Rst,
}

impl Control {
    /// How many units of sequence space this control consumes.
    pub const fn len(self) -> usize {
        match self {
            Control::Syn | Control::Fin => 1,
            _ => 0,
        }
    }

    /// Whether this control consumes no sequence space.
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Quash the PSH flag, treating it as plain data (receivers that
    /// deliver eagerly need not distinguish).
    pub const fn quash_psh(self) -> Control {
        match self {
            Control::Psh => Control::None,
            other => other,
        }
    }
}

/// A read/write view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, checking lengths.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate the buffer length against the data offset.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = usize::from(self.header_len());
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn u16_at(&self, field: Field) -> u16 {
        let raw = &self.buffer.as_ref()[field];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    fn u32_at(&self, field: Field) -> u32 {
        let raw = &self.buffer.as_ref()[field];
        u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]])
    }

    /// The source port.
    pub fn src_port(&self) -> u16 {
        self.u16_at(fields::SRC_PORT)
    }

    /// The destination port.
    pub fn dst_port(&self) -> u16 {
        self.u16_at(fields::DST_PORT)
    }

    /// The sequence number.
    pub fn seq_number(&self) -> SeqNumber {
        SeqNumber(self.u32_at(fields::SEQ_NUM))
    }

    /// The acknowledgment number.
    pub fn ack_number(&self) -> SeqNumber {
        SeqNumber(self.u32_at(fields::ACK_NUM))
    }

    fn flags(&self) -> u16 {
        self.u16_at(fields::FLAGS) & 0x0fff
    }

    /// The header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        ((self.u16_at(fields::FLAGS) >> 12) * 4) as u8
    }

    /// Whether FIN is set.
    pub fn fin(&self) -> bool {
        self.flags() & FLG_FIN != 0
    }
    /// Whether SYN is set.
    pub fn syn(&self) -> bool {
        self.flags() & FLG_SYN != 0
    }
    /// Whether RST is set.
    pub fn rst(&self) -> bool {
        self.flags() & FLG_RST != 0
    }
    /// Whether PSH is set.
    pub fn psh(&self) -> bool {
        self.flags() & FLG_PSH != 0
    }
    /// Whether ACK is set.
    pub fn ack(&self) -> bool {
        self.flags() & FLG_ACK != 0
    }
    /// Whether URG is set.
    pub fn urg(&self) -> bool {
        self.flags() & FLG_URG != 0
    }

    /// The advertised receive window.
    pub fn window_len(&self) -> u16 {
        self.u16_at(fields::WIN_SIZE)
    }

    /// The checksum field.
    pub fn checksum_field(&self) -> u16 {
        self.u16_at(fields::CHECKSUM)
    }

    /// The urgent pointer (carried but ignored by this stack).
    pub fn urgent_at(&self) -> u16 {
        self.u16_at(fields::URGENT)
    }

    /// The options bytes, between the fixed header and the payload.
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..usize::from(self.header_len())]
    }

    /// The payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[usize::from(self.header_len())..]
    }

    /// The length of sequence space this segment occupies
    /// (payload bytes plus one for SYN and one for FIN).
    pub fn segment_len(&self) -> usize {
        let mut len = self.payload().len();
        if self.syn() {
            len += 1;
        }
        if self.fin() {
            len += 1;
        }
        len
    }

    /// Verify the checksum against the pseudo-header.
    pub fn verify_checksum(&self, src_addr: Ipv4Address, dst_addr: Ipv4Address) -> bool {
        let data = self.buffer.as_ref();
        checksum::fold(
            checksum::pseudo_header_sum(src_addr, dst_addr, IpProtocol::Tcp, data.len() as u32)
                + checksum::sum(data),
        ) == 0xffff
    }

    /// Scan options for a Maximum Segment Size option.
    pub fn mss_option(&self) -> Result<Option<u16>> {
        let mut options = self.options();
        while let Some(&kind) = options.first() {
            match kind {
                OPT_END => break,
                OPT_NOP => options = &options[1..],
                _ => {
                    if options.len() < 2 {
                        return Err(Error::Malformed);
                    }
                    let len = usize::from(options[1]);
                    if len < 2 || len > options.len() {
                        return Err(Error::Malformed);
                    }
                    if kind == OPT_MSS {
                        if len != 4 {
                            return Err(Error::Malformed);
                        }
                        return Ok(Some(u16::from_be_bytes([options[2], options[3]])));
                    }
                    options = &options[len..];
                }
            }
        }
        Ok(None)
    }

    /// Scan options for a payload-CRC option (kind
    /// [`OPT_PAYLOAD_CRC`]).
    pub fn payload_crc_option(&self) -> Result<Option<u32>> {
        let mut options = self.options();
        while let Some(&kind) = options.first() {
            match kind {
                OPT_END => break,
                OPT_NOP => options = &options[1..],
                _ => {
                    if options.len() < 2 {
                        return Err(Error::Malformed);
                    }
                    let len = usize::from(options[1]);
                    if len < 2 || len > options.len() {
                        return Err(Error::Malformed);
                    }
                    if kind == OPT_PAYLOAD_CRC {
                        if len != usize::from(OPT_PAYLOAD_CRC_LEN) {
                            return Err(Error::Malformed);
                        }
                        return Ok(Some(u32::from_be_bytes([
                            options[2], options[3], options[4], options[5],
                        ])));
                    }
                    options = &options[len..];
                }
            }
        }
        Ok(None)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    fn set_u16_at(&mut self, field: Field, value: u16) {
        self.buffer.as_mut()[field].copy_from_slice(&value.to_be_bytes());
    }

    fn set_u32_at(&mut self, field: Field, value: u32) {
        self.buffer.as_mut()[field].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the source port.
    pub fn set_src_port(&mut self, value: u16) {
        self.set_u16_at(fields::SRC_PORT, value);
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, value: u16) {
        self.set_u16_at(fields::DST_PORT, value);
    }

    /// Set the sequence number.
    pub fn set_seq_number(&mut self, value: SeqNumber) {
        self.set_u32_at(fields::SEQ_NUM, value.0);
    }

    /// Set the acknowledgment number.
    pub fn set_ack_number(&mut self, value: SeqNumber) {
        self.set_u32_at(fields::ACK_NUM, value.0);
    }

    /// Set the header length (must be a multiple of 4) and flags together.
    pub fn set_header_len_and_flags(
        &mut self,
        header_len: u8,
        fin: bool,
        syn: bool,
        rst: bool,
        psh: bool,
        ack: bool,
    ) {
        debug_assert_eq!(header_len % 4, 0);
        let mut raw = u16::from(header_len / 4) << 12;
        if fin {
            raw |= FLG_FIN;
        }
        if syn {
            raw |= FLG_SYN;
        }
        if rst {
            raw |= FLG_RST;
        }
        if psh {
            raw |= FLG_PSH;
        }
        if ack {
            raw |= FLG_ACK;
        }
        self.set_u16_at(fields::FLAGS, raw);
    }

    /// Set the advertised window.
    pub fn set_window_len(&mut self, value: u16) {
        self.set_u16_at(fields::WIN_SIZE, value);
    }

    /// Set the checksum field.
    pub fn set_checksum_field(&mut self, value: u16) {
        self.set_u16_at(fields::CHECKSUM, value);
    }

    /// Set the urgent pointer.
    pub fn set_urgent_at(&mut self, value: u16) {
        self.set_u16_at(fields::URGENT, value);
    }

    /// Mutable access to the options bytes.
    pub fn options_mut(&mut self) -> &mut [u8] {
        let header_len = usize::from(self.header_len());
        &mut self.buffer.as_mut()[HEADER_LEN..header_len]
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = usize::from(self.header_len());
        &mut self.buffer.as_mut()[header_len..]
    }

    /// Compute and store the checksum.
    pub fn fill_checksum(&mut self, src_addr: Ipv4Address, dst_addr: Ipv4Address) {
        self.set_checksum_field(0);
        let csum = {
            let data = self.buffer.as_ref();
            checksum::combine(&[
                checksum::pseudo_header_sum(
                    src_addr,
                    dst_addr,
                    IpProtocol::Tcp,
                    data.len() as u32,
                ),
                checksum::sum(data),
            ])
        };
        self.set_checksum_field(csum);
    }
}

/// High-level representation of a TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Control flag (SYN/FIN/RST/PSH collapsed; see [`Control`]).
    pub control: Control,
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq_number: SeqNumber,
    /// Acknowledgment number, if the ACK flag is set.
    pub ack_number: Option<SeqNumber>,
    /// Advertised receive window in bytes.
    pub window_len: u16,
    /// Maximum segment size option, if present (SYN segments only).
    pub max_seg_size: Option<u16>,
    /// Opt-in CRC32C over the payload, carried as option kind
    /// [`OPT_PAYLOAD_CRC`]. `None` emits byte-identically to a stack
    /// without the feature.
    pub payload_crc: Option<u32>,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse and validate a segment.
    pub fn parse<T: AsRef<[u8]>>(
        packet: &Packet<T>,
        src_addr: Ipv4Address,
        dst_addr: Ipv4Address,
    ) -> Result<Repr> {
        packet.check_len()?;
        if !packet.verify_checksum(src_addr, dst_addr) {
            return Err(Error::Checksum);
        }
        let control = match (packet.syn(), packet.fin(), packet.rst(), packet.psh()) {
            (false, false, false, false) => Control::None,
            (false, false, false, true) => Control::Psh,
            (true, false, false, _) => Control::Syn,
            (false, true, false, _) => Control::Fin,
            (false, false, true, _) => Control::Rst,
            _ => return Err(Error::Malformed),
        };
        let ack_number = if packet.ack() {
            Some(packet.ack_number())
        } else {
            None
        };
        // Per RFC 1122, MSS is only valid on SYN segments; elsewhere ignore.
        let max_seg_size = if packet.syn() {
            packet.mss_option()?
        } else {
            None
        };
        Ok(Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            control,
            seq_number: packet.seq_number(),
            ack_number,
            window_len: packet.window_len(),
            max_seg_size,
            payload_crc: packet.payload_crc_option()?,
            payload_len: packet.payload().len(),
        })
    }

    /// Length of the header this representation emits (with options).
    pub fn header_len(&self) -> usize {
        let mut len = HEADER_LEN;
        if self.max_seg_size.is_some() {
            len += 4;
        }
        if self.payload_crc.is_some() {
            // Two leading NOPs pad the 6-byte option to a 4-byte
            // multiple, keeping the data offset valid.
            len += 8;
        }
        len
    }

    /// Length of the emitted segment including payload space.
    pub fn buffer_len(&self) -> usize {
        self.header_len() + self.payload_len
    }

    /// The amount of sequence space this segment occupies.
    pub fn segment_len(&self) -> usize {
        self.payload_len + self.control.len()
    }

    /// Emit the header and options. Write the payload afterwards, then
    /// call [`Packet::fill_checksum`].
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_seq_number(self.seq_number);
        packet.set_ack_number(self.ack_number.unwrap_or_default());
        packet.set_header_len_and_flags(
            self.header_len() as u8,
            self.control == Control::Fin,
            self.control == Control::Syn,
            self.control == Control::Rst,
            self.control == Control::Psh,
            self.ack_number.is_some(),
        );
        packet.set_window_len(self.window_len);
        packet.set_urgent_at(0);
        packet.set_checksum_field(0);
        let mut cursor = 0;
        if let Some(mss) = self.max_seg_size {
            let options = packet.options_mut();
            options[0] = OPT_MSS;
            options[1] = 4;
            options[2..4].copy_from_slice(&mss.to_be_bytes());
            cursor = 4;
        }
        if let Some(crc) = self.payload_crc {
            let options = packet.options_mut();
            options[cursor] = OPT_NOP;
            options[cursor + 1] = OPT_NOP;
            options[cursor + 2] = OPT_PAYLOAD_CRC;
            options[cursor + 3] = OPT_PAYLOAD_CRC_LEN;
            options[cursor + 4..cursor + 8].copy_from_slice(&crc.to_be_bytes());
        }
    }
}

impl core::fmt::Display for Repr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}->{} {:?} seq={}",
            self.src_port, self.dst_port, self.control, self.seq_number
        )?;
        if let Some(ack) = self.ack_number {
            write!(f, " ack={ack}")?;
        }
        write!(f, " win={} len={}", self.window_len, self.payload_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    const DST: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);

    fn build(repr: &Repr, payload: &[u8]) -> Vec<u8> {
        assert_eq!(repr.payload_len, payload.len());
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(payload);
        packet.fill_checksum(SRC, DST);
        buf
    }

    fn sample_repr() -> Repr {
        Repr {
            src_port: 49152,
            dst_port: 80,
            control: Control::None,
            seq_number: SeqNumber(0x0123_4567),
            ack_number: Some(SeqNumber(0x89ab_cdef)),
            window_len: 4096,
            max_seg_size: None,
            payload_crc: None,
            payload_len: 4,
        }
    }

    #[test]
    fn round_trip_data_segment() {
        let repr = sample_repr();
        let buf = build(&repr, b"data");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&packet, SRC, DST).unwrap(), repr);
        assert_eq!(packet.payload(), b"data");
        assert_eq!(packet.segment_len(), 4);
    }

    #[test]
    fn round_trip_syn_with_mss() {
        let repr = Repr {
            control: Control::Syn,
            ack_number: None,
            max_seg_size: Some(1460),
            payload_len: 0,
            ..sample_repr()
        };
        let buf = build(&repr, b"");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len(), 24);
        assert_eq!(packet.mss_option().unwrap(), Some(1460));
        assert_eq!(packet.segment_len(), 1); // SYN occupies sequence space
        assert_eq!(Repr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn round_trip_payload_crc_option() {
        let repr = Repr {
            payload_crc: Some(crate::crc32c::crc32c(b"data")),
            ..sample_repr()
        };
        let buf = build(&repr, b"data");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len(), 28);
        assert_eq!(
            packet.payload_crc_option().unwrap(),
            Some(crate::crc32c::crc32c(b"data"))
        );
        assert_eq!(packet.payload(), b"data");
        assert_eq!(Repr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn crc_off_arm_is_byte_identical() {
        // A repr with payload_crc = None must emit exactly the bytes the
        // pre-option stack emitted: no length change, no reserved bits.
        let repr = sample_repr();
        let buf = build(&repr, b"data");
        assert_eq!(buf.len(), HEADER_LEN + 4);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len() as usize, HEADER_LEN);
        assert!(packet.options().is_empty());
        assert_eq!(packet.payload_crc_option().unwrap(), None);
    }

    #[test]
    fn mss_and_payload_crc_coexist() {
        let repr = Repr {
            control: Control::Syn,
            ack_number: None,
            max_seg_size: Some(536),
            payload_crc: Some(0xDEAD_BEEF),
            payload_len: 0,
            ..sample_repr()
        };
        let buf = build(&repr, b"");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len(), 32);
        assert_eq!(packet.mss_option().unwrap(), Some(536));
        assert_eq!(packet.payload_crc_option().unwrap(), Some(0xDEAD_BEEF));
        assert_eq!(Repr::parse(&packet, SRC, DST).unwrap(), repr);
    }

    #[test]
    fn truncated_payload_crc_option_rejected() {
        let repr = Repr {
            payload_crc: Some(1),
            ..sample_repr()
        };
        let mut buf = build(&repr, b"data");
        buf[23] = 3; // option length too short for a 4-byte CRC
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload_crc_option().unwrap_err(), Error::Malformed);
    }

    #[test]
    fn round_trip_all_controls() {
        for control in [
            Control::None,
            Control::Psh,
            Control::Syn,
            Control::Fin,
            Control::Rst,
        ] {
            let repr = Repr {
                control,
                payload_len: 0,
                ..sample_repr()
            };
            let buf = build(&repr, b"");
            let parsed =
                Repr::parse(&Packet::new_checked(&buf[..]).unwrap(), SRC, DST).unwrap();
            assert_eq!(parsed.control, control);
            assert_eq!(parsed.segment_len(), control.len());
        }
    }

    #[test]
    fn checksum_binds_addresses() {
        let buf = build(&sample_repr(), b"data");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        // A different destination changes the pseudo-header sum.
        assert!(!packet.verify_checksum(SRC, Ipv4Address::new(10, 0, 0, 7)));
        // Note: swapping src and dst does NOT change the sum (one's-complement
        // addition is commutative) — a documented weakness of the Internet
        // checksum, preserved faithfully here.
        assert!(packet.verify_checksum(DST, SRC));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = build(&sample_repr(), b"data");
        buf[22] ^= 0x01;
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(
            Repr::parse(&packet, SRC, DST).unwrap_err(),
            Error::Checksum
        );
    }

    #[test]
    fn syn_fin_together_malformed() {
        let repr = Repr {
            control: Control::Syn,
            payload_len: 0,
            ..sample_repr()
        };
        let mut buf = build(&repr, b"");
        {
            let mut packet = Packet::new_unchecked(&mut buf[..]);
            packet.set_header_len_and_flags(20, true, true, false, false, true);
            packet.fill_checksum(SRC, DST);
        }
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap(), SRC, DST).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn malformed_options_rejected() {
        let repr = Repr {
            control: Control::Syn,
            max_seg_size: Some(1460),
            ack_number: None,
            payload_len: 0,
            ..sample_repr()
        };
        let mut buf = build(&repr, b"");
        buf[21] = 1; // MSS option length too short
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.mss_option().unwrap_err(), Error::Malformed);
    }

    #[test]
    fn options_with_nop_padding() {
        let repr = Repr {
            control: Control::Syn,
            max_seg_size: Some(536),
            ack_number: None,
            payload_len: 0,
            ..sample_repr()
        };
        let mut buf = build(&repr, b"");
        // Rewrite options as NOP, NOP, then truncate MSS into unknown option.
        buf[20] = OPT_NOP;
        buf[21] = OPT_NOP;
        buf[22] = OPT_END;
        buf[23] = 0;
        let mut packet = Packet::new_unchecked(&mut buf[..]);
        packet.fill_checksum(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.mss_option().unwrap(), None);
    }

    #[test]
    fn seq_number_ring_arithmetic() {
        let near_wrap = SeqNumber(u32::MAX - 1);
        let wrapped = near_wrap + 4;
        assert_eq!(wrapped, SeqNumber(2));
        assert!(wrapped > near_wrap);
        assert_eq!(wrapped - near_wrap, 4);
        assert_eq!(near_wrap - wrapped, -4);
        assert_eq!(wrapped - 4usize, near_wrap);
        assert_eq!(near_wrap.max(wrapped), wrapped);
        assert_eq!(near_wrap.min(wrapped), near_wrap);
    }

    #[test]
    fn seq_number_ordering_is_modular() {
        let a = SeqNumber(0);
        let b = SeqNumber(0x7fff_ffff);
        assert!(a < b);
        let c = SeqNumber(0x8000_0001);
        assert!(c < a); // more than half the ring "ahead" reads as behind
    }

    #[test]
    fn control_lengths() {
        assert_eq!(Control::Syn.len(), 1);
        assert_eq!(Control::Fin.len(), 1);
        assert_eq!(Control::None.len(), 0);
        assert_eq!(Control::Psh.len(), 0);
        assert_eq!(Control::Rst.len(), 0);
        assert_eq!(Control::Psh.quash_psh(), Control::None);
        assert_eq!(Control::Syn.quash_psh(), Control::Syn);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 19][..]).unwrap_err(),
            Error::Truncated
        );
        // Data offset pointing beyond the buffer.
        let mut buf = build(&sample_repr(), b"data");
        buf[12] = 0xf0;
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }
}
