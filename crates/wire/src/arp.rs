//! The Address Resolution Protocol (RFC 826), Ethernet/IPv4 flavor.
//!
//! ARP is the host-attachment glue (goal 6) on broadcast LANs: it lets a
//! host join a network knowing only its own IP address, discovering
//! hardware addresses on demand instead of by configuration.

use crate::field::Field;
use crate::types::{EthernetAddress, Ipv4Address};
use crate::{Error, Result};

/// Length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

const HTYPE_ETHERNET: u16 = 1;
const PTYPE_IPV4: u16 = 0x0800;

mod fields {
    use super::Field;
    pub const HTYPE: Field = 0..2;
    pub const PTYPE: Field = 2..4;
    pub const HLEN: usize = 4;
    pub const PLEN: usize = 5;
    pub const OPER: Field = 6..8;
    pub const SHA: Field = 8..14;
    pub const SPA: Field = 14..18;
    pub const THA: Field = 18..24;
    pub const TPA: Field = 24..28;
}

/// An ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// A request (`who-has`).
    Request,
    /// A reply (`is-at`).
    Reply,
    /// Any other operation code.
    Unknown(u16),
}

impl From<u16> for Operation {
    fn from(value: u16) -> Self {
        match value {
            1 => Operation::Request,
            2 => Operation::Reply,
            other => Operation::Unknown(other),
        }
    }
}

impl From<Operation> for u16 {
    fn from(value: Operation) -> Self {
        match value {
            Operation::Request => 1,
            Operation::Reply => 2,
            Operation::Unknown(other) => other,
        }
    }
}

/// A read/write view of an ARP packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating it.
    pub const fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap a buffer, checking its length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate the buffer length.
    pub fn check_len(&self) -> Result<()> {
        if self.buffer.as_ref().len() < PACKET_LEN {
            Err(Error::Truncated)
        } else {
            Ok(())
        }
    }

    /// Recover the wrapped buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn u16_at(&self, field: Field) -> u16 {
        let raw = &self.buffer.as_ref()[field];
        u16::from_be_bytes([raw[0], raw[1]])
    }

    /// The hardware type.
    pub fn hardware_type(&self) -> u16 {
        self.u16_at(fields::HTYPE)
    }

    /// The protocol type.
    pub fn protocol_type(&self) -> u16 {
        self.u16_at(fields::PTYPE)
    }

    /// The hardware address length.
    pub fn hardware_len(&self) -> u8 {
        self.buffer.as_ref()[fields::HLEN]
    }

    /// The protocol address length.
    pub fn protocol_len(&self) -> u8 {
        self.buffer.as_ref()[fields::PLEN]
    }

    /// The operation code.
    pub fn operation(&self) -> Operation {
        Operation::from(self.u16_at(fields::OPER))
    }

    /// The sender hardware address.
    pub fn source_hardware_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[fields::SHA])
    }

    /// The sender protocol (IPv4) address.
    pub fn source_protocol_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[fields::SPA])
    }

    /// The target hardware address.
    pub fn target_hardware_addr(&self) -> EthernetAddress {
        EthernetAddress::from_bytes(&self.buffer.as_ref()[fields::THA])
    }

    /// The target protocol (IPv4) address.
    pub fn target_protocol_addr(&self) -> Ipv4Address {
        Ipv4Address::from_bytes(&self.buffer.as_ref()[fields::TPA])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    fn set_u16_at(&mut self, field: Field, value: u16) {
        self.buffer.as_mut()[field].copy_from_slice(&value.to_be_bytes());
    }

    /// Set the hardware type.
    pub fn set_hardware_type(&mut self, value: u16) {
        self.set_u16_at(fields::HTYPE, value);
    }

    /// Set the protocol type.
    pub fn set_protocol_type(&mut self, value: u16) {
        self.set_u16_at(fields::PTYPE, value);
    }

    /// Set the hardware address length.
    pub fn set_hardware_len(&mut self, value: u8) {
        self.buffer.as_mut()[fields::HLEN] = value;
    }

    /// Set the protocol address length.
    pub fn set_protocol_len(&mut self, value: u8) {
        self.buffer.as_mut()[fields::PLEN] = value;
    }

    /// Set the operation code.
    pub fn set_operation(&mut self, value: Operation) {
        self.set_u16_at(fields::OPER, value.into());
    }

    /// Set the sender hardware address.
    pub fn set_source_hardware_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[fields::SHA].copy_from_slice(addr.as_bytes());
    }

    /// Set the sender protocol address.
    pub fn set_source_protocol_addr(&mut self, addr: Ipv4Address) {
        self.buffer.as_mut()[fields::SPA].copy_from_slice(addr.as_bytes());
    }

    /// Set the target hardware address.
    pub fn set_target_hardware_addr(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[fields::THA].copy_from_slice(addr.as_bytes());
    }

    /// Set the target protocol address.
    pub fn set_target_protocol_addr(&mut self, addr: Ipv4Address) {
        self.buffer.as_mut()[fields::TPA].copy_from_slice(addr.as_bytes());
    }
}

/// High-level representation of an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// The operation.
    pub operation: Operation,
    /// Sender hardware address.
    pub source_hardware_addr: EthernetAddress,
    /// Sender IPv4 address.
    pub source_protocol_addr: Ipv4Address,
    /// Target hardware address (all-zero in requests).
    pub target_hardware_addr: EthernetAddress,
    /// Target IPv4 address.
    pub target_protocol_addr: Ipv4Address,
}

impl Repr {
    /// Parse a packet, requiring the Ethernet/IPv4 flavor.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        if packet.hardware_type() != HTYPE_ETHERNET
            || packet.protocol_type() != PTYPE_IPV4
            || packet.hardware_len() != 6
            || packet.protocol_len() != 4
        {
            return Err(Error::Malformed);
        }
        Ok(Repr {
            operation: packet.operation(),
            source_hardware_addr: packet.source_hardware_addr(),
            source_protocol_addr: packet.source_protocol_addr(),
            target_hardware_addr: packet.target_hardware_addr(),
            target_protocol_addr: packet.target_protocol_addr(),
        })
    }

    /// The length of the emitted packet.
    pub const fn buffer_len(&self) -> usize {
        PACKET_LEN
    }

    /// Emit the representation into a packet view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_hardware_type(HTYPE_ETHERNET);
        packet.set_protocol_type(PTYPE_IPV4);
        packet.set_hardware_len(6);
        packet.set_protocol_len(4);
        packet.set_operation(self.operation);
        packet.set_source_hardware_addr(self.source_hardware_addr);
        packet.set_source_protocol_addr(self.source_protocol_addr);
        packet.set_target_hardware_addr(self.target_hardware_addr);
        packet.set_target_protocol_addr(self.target_protocol_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Repr {
        Repr {
            operation: Operation::Request,
            source_hardware_addr: EthernetAddress::new(0x02, 0, 0, 0, 0, 1),
            source_protocol_addr: Ipv4Address::new(10, 0, 0, 1),
            target_hardware_addr: EthernetAddress::default(),
            target_protocol_addr: Ipv4Address::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn reply_round_trip() {
        let mut repr = sample_repr();
        repr.operation = Operation::Reply;
        repr.target_hardware_addr = EthernetAddress::new(0x02, 0, 0, 0, 0, 2);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn wrong_flavor_rejected() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[0] = 0;
        buf[1] = 99; // bogus hardware type
        assert_eq!(
            Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 27][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn unknown_operation_preserved() {
        let mut repr = sample_repr();
        repr.operation = Operation::Unknown(7);
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap()).unwrap();
        assert_eq!(parsed.operation, Operation::Unknown(7));
    }
}
