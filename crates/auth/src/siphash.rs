//! SipHash-2-4, self-contained.
//!
//! The keyed MAC underneath route-origin attestation. SipHash
//! (Aumasson & Bernstein, 2012) is a 64-bit PRF over a 128-bit key,
//! designed exactly for short authenticated inputs like the 12-byte
//! canonical attestation encoding. Like `catenet-sim`'s xoshiro256++,
//! the implementation is vendored in full so simulations are
//! reproducible bit-for-bit on any platform with no external
//! dependencies, and validated against the reference known-answer
//! vectors from the SipHash paper.

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
///
/// `k0` is the little-endian first half of the key, `k1` the second, as
/// in the reference implementation.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let mut last = [0u8; 8];
    let rem = chunks.remainder();
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;

    v[2] ^= 0xff;
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key from the SipHash paper: bytes 00 01 02 .. 0f.
    const K0: u64 = 0x0706_0504_0302_0100;
    const K1: u64 = 0x0f0e_0d0c_0b0a_0908;

    /// First sixteen vectors of `vectors_64` from the reference
    /// implementation: input is the byte string 00 01 .. (len-1).
    const KAT: [u64; 16] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
        0x9e00_82df_0ba9_e4b0,
        0x7a5d_bbc5_94dd_b9f3,
        0xf4b3_2f46_226b_ada7,
        0x751e_8fbc_860e_e5fb,
        0x14ea_5627_c084_3d90,
        0xf723_ca90_8e7a_f2ee,
        0xa129_ca61_49be_45e5,
    ];

    #[test]
    fn known_answer_vectors() {
        for (len, &expect) in KAT.iter().enumerate() {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(
                siphash24(K0, K1, &input),
                expect,
                "vector mismatch at input length {len}"
            );
        }
    }

    #[test]
    fn spans_block_boundaries() {
        // Inputs straddling the 8-byte block boundary exercise both the
        // chunked loop and the padded final block.
        let input: Vec<u8> = (0..64).collect();
        let a = siphash24(K0, K1, &input[..7]);
        let b = siphash24(K0, K1, &input[..8]);
        let c = siphash24(K0, K1, &input[..9]);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn any_single_bit_flip_in_message_changes_the_tag() {
        let msg: Vec<u8> = (0..24).map(|i| (i * 7) as u8).collect();
        let tag = siphash24(K0, K1, &msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut flipped = msg.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    siphash24(K0, K1, &flipped),
                    tag,
                    "flip at byte {byte} bit {bit} left the tag unchanged"
                );
            }
        }
    }

    #[test]
    fn any_single_bit_flip_in_key_changes_the_tag() {
        let msg = b"catenet-attest-v1";
        let tag = siphash24(K0, K1, msg);
        for bit in 0..64 {
            assert_ne!(siphash24(K0 ^ (1 << bit), K1, msg), tag, "k0 bit {bit}");
            assert_ne!(siphash24(K0, K1 ^ (1 << bit), msg), tag, "k1 bit {bit}");
        }
    }

    #[test]
    fn length_is_authenticated() {
        // Trailing zero bytes must not collide with the shorter input:
        // the length byte in the final block separates them.
        let short = [0u8; 4];
        let long = [0u8; 5];
        assert_ne!(siphash24(K0, K1, &short), siphash24(K0, K1, &long));
    }
}
