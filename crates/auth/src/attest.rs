//! Keys, attestations, and replay windows.
//!
//! An [`Attestation`] binds `(origin, prefix, sequence)` under the
//! origin's [`MacKey`]: the statement "origin O vouches, as of serial S,
//! that it owns this prefix". The prefix itself is not carried — both
//! signer and verifier take it from the RIP entry the attestation rides
//! on, so a tag lifted onto a different prefix never verifies.
//!
//! The sequence number gives replay protection with RFC 1982 serial
//! arithmetic: an eavesdropped advertisement stays valid only within a
//! bounded window of the origin's current serial, after which a
//! [`ReplayWindow`] brands it [`Freshness::Stale`].

use catenet_wire::Ipv4Cidr;

use crate::siphash::siphash24;

/// Domain-separation label prefixed to every MAC input, so attestation
/// tags can never collide with any other use of the same key.
const DOMAIN: &[u8] = b"catenet-attest-v1";

/// A 128-bit MAC key, as the two little-endian halves SipHash consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacKey(pub [u64; 2]);

impl MacKey {
    /// Derive a per-origin key from a master key by hashing the origin id
    /// under the master (a one-level KDF; key separation comes from
    /// SipHash being a PRF).
    pub fn derive(master: MacKey, origin: OriginId) -> MacKey {
        let label = origin.0.to_be_bytes();
        let half0 = siphash24(master.0[0], master.0[1], &[&b"k0"[..], &label].concat());
        let half1 = siphash24(master.0[0], master.0[1], &[&b"k1"[..], &label].concat());
        MacKey([half0, half1])
    }

    /// MAC an arbitrary message under this key.
    pub fn mac(&self, data: &[u8]) -> u64 {
        siphash24(self.0[0], self.0[1], data)
    }
}

/// The identity of an announcing gateway (its node id in the topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OriginId(pub u16);

impl core::fmt::Display for OriginId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "origin#{}", self.0)
    }
}

/// A signed route-origin attestation, carried per RIP entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attestation {
    /// Who vouches for the prefix.
    pub origin: OriginId,
    /// The origin's serial when it signed (monotone; replay protection).
    pub seq: u32,
    /// SipHash-2-4 tag over the canonical `(origin, prefix, seq)` encoding.
    pub tag: u64,
}

/// The canonical byte string the tag authenticates.
fn canonical(origin: OriginId, prefix: Ipv4Cidr, seq: u32) -> [u8; 28] {
    let mut buf = [0u8; 28];
    buf[..17].copy_from_slice(DOMAIN);
    buf[17..19].copy_from_slice(&origin.0.to_be_bytes());
    buf[19..23].copy_from_slice(prefix.address().as_bytes());
    buf[23] = prefix.prefix_len();
    buf[24..28].copy_from_slice(&seq.to_be_bytes());
    buf
}

impl Attestation {
    /// Sign `prefix` as `origin` at serial `seq`.
    pub fn sign(key: MacKey, origin: OriginId, prefix: Ipv4Cidr, seq: u32) -> Attestation {
        let tag = key.mac(&canonical(origin, prefix, seq));
        Attestation { origin, seq, tag }
    }

    /// Check the tag against the prefix this attestation arrived on.
    pub fn verify(&self, key: MacKey, prefix: Ipv4Cidr) -> bool {
        key.mac(&canonical(self.origin, prefix, self.seq)) == self.tag
    }
}

/// The signing half kept by an announcing gateway: its identity, its
/// key, and the serial it stamps on fresh attestations.
///
/// The serial is set from virtual time at each advertisement round, so
/// it is monotone across a crash/restart without any stable storage —
/// the property real BGPsec gets from persisted serials.
#[derive(Debug, Clone, Copy)]
pub struct Attestor {
    origin: OriginId,
    key: MacKey,
    seq: u32,
}

impl Attestor {
    /// Create an attestor for `origin` holding `key`.
    pub fn new(origin: OriginId, key: MacKey) -> Attestor {
        Attestor { origin, key, seq: 0 }
    }

    /// The identity this attestor signs as.
    pub fn origin(&self) -> OriginId {
        self.origin
    }

    /// The serial fresh attestations will carry.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Advance the serial to `seq` (never backwards).
    pub fn advance(&mut self, seq: u32) {
        self.seq = self.seq.max(seq);
    }

    /// Sign `prefix` at the current serial.
    pub fn sign(&self, prefix: Ipv4Cidr) -> Attestation {
        Attestation::sign(self.key, self.origin, prefix, self.seq)
    }
}

/// Verdict of a [`ReplayWindow`] freshness check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Newer than anything seen: accept and advance the high-water mark.
    Fresh,
    /// Within the window behind the high-water mark: an acceptable
    /// duplicate or reordered advertisement.
    InWindow,
    /// Older than the window tolerates: a replay of a stale serial.
    Stale,
}

/// `a > b` in RFC 1982 serial-number arithmetic on u32.
fn serial_gt(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000_0000
}

/// Freshness tracking for one `(origin, prefix)` stream of serials.
///
/// Tolerates the propagation lag of a distance-vector fabric — a stored
/// attestation is re-advertised hop by hop, so verifiers far from the
/// origin legitimately see serials a few rounds behind — while rejecting
/// serials further back than `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayWindow {
    window: u32,
    max: Option<u32>,
}

impl ReplayWindow {
    /// A window tolerating serials up to `window` behind the newest seen.
    pub fn new(window: u32) -> ReplayWindow {
        ReplayWindow { window, max: None }
    }

    /// Classify `seq`, advancing the high-water mark when it is fresh.
    pub fn check(&mut self, seq: u32) -> Freshness {
        match self.max {
            None => {
                self.max = Some(seq);
                Freshness::Fresh
            }
            Some(max) if serial_gt(seq, max) => {
                self.max = Some(seq);
                Freshness::Fresh
            }
            Some(max) if max.wrapping_sub(seq) <= self.window => Freshness::InWindow,
            Some(_) => Freshness::Stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Ipv4Address;

    fn cidr(a: u8, b: u8, c: u8, d: u8, len: u8) -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Address::new(a, b, c, d), len)
    }

    const MASTER: MacKey = MacKey([0x6361_7465_6e65_7421, 0x6d61_7374_6572_6b65]);

    #[test]
    fn sign_verify_roundtrip() {
        let key = MacKey::derive(MASTER, OriginId(7));
        let prefix = cidr(10, 128, 0, 0, 30);
        let att = Attestation::sign(key, OriginId(7), prefix, 42);
        assert!(att.verify(key, prefix));
    }

    #[test]
    fn tag_does_not_transfer_to_another_prefix() {
        let key = MacKey::derive(MASTER, OriginId(7));
        let att = Attestation::sign(key, OriginId(7), cidr(10, 128, 0, 0, 30), 42);
        assert!(!att.verify(key, cidr(10, 128, 0, 4, 30)));
        // Nor to the same address under a different mask.
        assert!(!att.verify(key, cidr(10, 128, 0, 0, 29)));
    }

    #[test]
    fn wrong_key_and_wrong_origin_fail() {
        let key7 = MacKey::derive(MASTER, OriginId(7));
        let key9 = MacKey::derive(MASTER, OriginId(9));
        let prefix = cidr(192, 168, 3, 0, 24);
        let att = Attestation::sign(key7, OriginId(7), prefix, 1);
        assert!(!att.verify(key9, prefix));
        // Claiming a different origin under the right key also fails:
        // the origin id is inside the canonical encoding.
        let mut forged = att;
        forged.origin = OriginId(9);
        assert!(!forged.verify(key7, prefix));
    }

    #[test]
    fn key_separation_between_origins() {
        // Derived keys are pairwise distinct and a tag under one origin's
        // key never verifies under a sibling's.
        let keys: Vec<MacKey> = (0..32).map(|i| MacKey::derive(MASTER, OriginId(i))).collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "origins {i} and {j} share a key");
                }
            }
        }
    }

    #[test]
    fn seq_and_tag_tamper_detected() {
        let key = MacKey::derive(MASTER, OriginId(3));
        let prefix = cidr(198, 18, 0, 0, 24);
        let att = Attestation::sign(key, OriginId(3), prefix, 100);
        let mut bumped = att;
        bumped.seq += 1;
        assert!(!bumped.verify(key, prefix));
        let mut flipped = att;
        flipped.tag ^= 1;
        assert!(!flipped.verify(key, prefix));
    }

    #[test]
    fn replay_window_accepts_fresh_and_in_window() {
        let mut w = ReplayWindow::new(4);
        assert_eq!(w.check(10), Freshness::Fresh);
        assert_eq!(w.check(11), Freshness::Fresh);
        // Duplicate of the newest serial.
        assert_eq!(w.check(11), Freshness::InWindow);
        // Reordered but within the window.
        assert_eq!(w.check(8), Freshness::InWindow);
        assert_eq!(w.check(7), Freshness::InWindow);
        // One past the window edge.
        assert_eq!(w.check(6), Freshness::Stale);
    }

    #[test]
    fn replay_window_wraps_around_u32() {
        let mut w = ReplayWindow::new(8);
        assert_eq!(w.check(u32::MAX - 2), Freshness::Fresh);
        // Serial arithmetic: 3 is "greater than" u32::MAX - 2.
        assert_eq!(w.check(3), Freshness::Fresh);
        // u32::MAX is 4 behind 3 in wrapping distance: in window.
        assert_eq!(w.check(u32::MAX), Freshness::InWindow);
        // 3 - 9 wraps to far behind: stale.
        assert_eq!(w.check(3u32.wrapping_sub(9)), Freshness::Stale);
    }

    #[test]
    fn replay_window_first_observation_is_fresh() {
        let mut w = ReplayWindow::new(0);
        assert_eq!(w.check(0), Freshness::Fresh);
        assert_eq!(w.check(0), Freshness::InWindow);
        assert_eq!(w.check(u32::MAX), Freshness::Stale);
    }

    #[test]
    fn attestor_serial_is_monotone() {
        let key = MacKey::derive(MASTER, OriginId(1));
        let mut attestor = Attestor::new(OriginId(1), key);
        attestor.advance(50);
        attestor.advance(40);
        assert_eq!(attestor.seq(), 50, "advance must never move backwards");
        let att = attestor.sign(cidr(10, 0, 0, 0, 24));
        assert_eq!(att.seq, 50);
        assert_eq!(att.origin, OriginId(1));
    }
}
