//! # catenet-auth
//!
//! Route-origin attestation for the catenet control plane.
//!
//! Clark's goal ordering put survivability first and accountability last,
//! and the 1988 routing fabric inherited that ranking: any gateway could
//! announce any prefix and its neighbors believed it. PR 4's byzantine
//! experiments priced that trust — a single lying gateway black-holes
//! 9.5–16.7% of host pairs — and showed that admission heuristics alone
//! (RouteGuard) cannot close the hole, because a liar under the rate limit
//! announcing a plausible metric for a prefix it does not own is
//! indistinguishable from an honest neighbor.
//!
//! This crate supplies the missing primitive: **verifiable origin**. It is
//! BGPsec in miniature, adapted to a closed deterministic simulation:
//!
//! - [`siphash`] — a self-contained SipHash-2-4 implementation (the keyed
//!   MAC; no external dependencies, bit-exact on any platform).
//! - [`MacKey`] / [`Attestation`] — a per-origin key and the signed
//!   binding `(origin, prefix, sequence) → tag` carried in RIP
//!   announcements.
//! - [`OriginRegistry`] — the deterministic prefix-ownership table
//!   distributed to every gateway at topology build time (the simulation's
//!   stand-in for an RPKI: ownership is ground truth by construction).
//! - [`ReplayWindow`] — RFC 1982-style serial-number freshness so a
//!   recorded-but-valid advertisement goes stale.
//!
//! The MAC is symmetric (every verifier holds every origin's key), which
//! models the *semantics* of origin signatures — who may announce what,
//! and whether the announcement is fresh — without vendoring an asymmetric
//! signature scheme. The one attack this deliberately does not stop is an
//! authenticated neighbor lying about its *metric* for a prefix it heard
//! legitimately: path attestation is out of scope, exactly as it is for
//! origin-only RPKI deployment. E14's hijack-by-authenticated-neighbor
//! arm measures that residual.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attest;
pub mod registry;
pub mod siphash;

pub use attest::{Attestation, Attestor, Freshness, MacKey, OriginId, ReplayWindow};
pub use registry::OriginRegistry;
pub use siphash::siphash24;
