//! The prefix-ownership registry.
//!
//! In the real internet, route-origin validation needs an external trust
//! anchor (the RPKI) because nobody holds ground truth about address
//! ownership. A simulation *builds* the ground truth: the topology
//! constructor knows exactly which gateway owns which prefix, so the
//! registry is assembled deterministically at build time and distributed
//! to every gateway — the moral equivalent of a pre-populated, perfectly
//! synchronized RPKI cache.
//!
//! A prefix may have several legitimate owners: both endpoints of a
//! point-to-point /30 announce the shared link prefix at metric 1.

use std::collections::BTreeMap;

use catenet_wire::Ipv4Cidr;

use crate::attest::{MacKey, OriginId};

/// Who may originate which prefix, and the key each origin signs with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginRegistry {
    master: MacKey,
    owners: BTreeMap<Ipv4Cidr, Vec<OriginId>>,
    keys: BTreeMap<OriginId, MacKey>,
}

impl OriginRegistry {
    /// An empty registry deriving per-origin keys from `master`.
    pub fn new(master: MacKey) -> OriginRegistry {
        OriginRegistry {
            master,
            owners: BTreeMap::new(),
            keys: BTreeMap::new(),
        }
    }

    /// Record that `origin` legitimately announces `prefix` (stored in
    /// canonical network form), deriving the origin's key on first sight.
    pub fn register(&mut self, prefix: Ipv4Cidr, origin: OriginId) {
        let owners = self.owners.entry(prefix.network()).or_default();
        if !owners.contains(&origin) {
            owners.push(origin);
        }
        let master = self.master;
        self.keys
            .entry(origin)
            .or_insert_with(|| MacKey::derive(master, origin));
    }

    /// Whether any origin is registered for `prefix`.
    pub fn is_registered(&self, prefix: Ipv4Cidr) -> bool {
        self.owners.contains_key(&prefix.network())
    }

    /// Whether `origin` is a registered owner of `prefix`.
    pub fn owns(&self, prefix: Ipv4Cidr, origin: OriginId) -> bool {
        self.owners
            .get(&prefix.network())
            .is_some_and(|owners| owners.contains(&origin))
    }

    /// The signing/verification key for `origin`, if it is registered.
    pub fn key(&self, origin: OriginId) -> Option<MacKey> {
        self.keys.get(&origin).copied()
    }

    /// Number of registered prefixes.
    pub fn prefix_count(&self) -> usize {
        self.owners.len()
    }

    /// Number of registered origins.
    pub fn origin_count(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catenet_wire::Ipv4Address;

    fn cidr(a: u8, b: u8, c: u8, d: u8, len: u8) -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Address::new(a, b, c, d), len)
    }

    const MASTER: MacKey = MacKey([1, 2]);

    #[test]
    fn shared_link_prefix_has_two_owners() {
        let mut reg = OriginRegistry::new(MASTER);
        let link = cidr(10, 128, 0, 0, 30);
        reg.register(link, OriginId(1));
        reg.register(link, OriginId(2));
        assert!(reg.owns(link, OriginId(1)));
        assert!(reg.owns(link, OriginId(2)));
        assert!(!reg.owns(link, OriginId(3)));
        assert_eq!(reg.prefix_count(), 1);
        assert_eq!(reg.origin_count(), 2);
    }

    #[test]
    fn lookup_is_canonical() {
        let mut reg = OriginRegistry::new(MASTER);
        reg.register(cidr(10, 128, 0, 1, 30), OriginId(1));
        // A host address inside the prefix resolves to the same network.
        assert!(reg.is_registered(cidr(10, 128, 0, 2, 30)));
        assert!(reg.owns(cidr(10, 128, 0, 0, 30), OriginId(1)));
        // Same bits, different mask: a different prefix.
        assert!(!reg.is_registered(cidr(10, 128, 0, 0, 29)));
    }

    #[test]
    fn registration_is_idempotent_and_keys_stable() {
        let mut reg = OriginRegistry::new(MASTER);
        let lan = cidr(192, 168, 1, 0, 24);
        reg.register(lan, OriginId(5));
        let key_before = reg.key(OriginId(5)).unwrap();
        reg.register(lan, OriginId(5));
        assert_eq!(reg.key(OriginId(5)).unwrap(), key_before);
        assert_eq!(reg.prefix_count(), 1);
        assert_eq!(
            key_before,
            MacKey::derive(MASTER, OriginId(5)),
            "key derivation must be reproducible from the master"
        );
    }

    #[test]
    fn unknown_origin_has_no_key() {
        let reg = OriginRegistry::new(MASTER);
        assert_eq!(reg.key(OriginId(9)), None);
        assert!(!reg.is_registered(cidr(203, 0, 113, 0, 24)));
    }
}
