//! Microbenchmarks for experiment E6 (host attachment cost): the
//! per-packet and per-connection processing prices the architecture
//! makes every host pay.
//!
//! Self-contained harness (no external bench framework): each op runs
//! for a fixed wall-clock budget and reports mean ns/op and throughput.

use catenet_bench::e6_host_cost;
use std::time::{Duration, Instant};

fn bench<F: FnMut()>(name: &str, bytes: Option<u64>, mut op: F) {
    // Warm up, then measure for a fixed budget.
    for _ in 0..32 {
        op();
    }
    let budget = Duration::from_millis(300);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget {
        for _ in 0..16 {
            op();
        }
        iters += 16;
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    match bytes {
        Some(b) => {
            let mbps = (b as f64 * iters as f64) / elapsed.as_secs_f64() / 1e6;
            println!("{name:<44} {ns_per_op:>12.1} ns/op {mbps:>10.1} MB/s");
        }
        None => println!("{name:<44} {ns_per_op:>12.1} ns/op"),
    }
}

fn main() {
    println!("# e6 stack microbenchmarks");
    for &size in &[64usize, 576, 1460] {
        let datagram = e6_host_cost::sample_datagram(size);
        let len = datagram.len() as u64;
        let d = datagram.clone();
        bench(&format!("ipv4_parse_verify/{size}"), Some(len), move || {
            e6_host_cost::op_parse(std::hint::black_box(&d));
        });
        let d = datagram.clone();
        bench(&format!("internet_checksum/{size}"), Some(len), move || {
            e6_host_cost::op_checksum(std::hint::black_box(&d));
        });
    }
    let datagram = e6_host_cost::sample_datagram(1460);
    bench("fragment_reassemble_1480_to_576", None, move || {
        e6_host_cost::op_fragment_reassemble(std::hint::black_box(&datagram));
    });
    for &bytes in &[1_024usize, 10_240, 102_400] {
        bench(
            &format!("tcp_syn_transfer_close/{bytes}"),
            Some(bytes as u64),
            move || {
                e6_host_cost::op_tcp_session(bytes);
            },
        );
    }
}
