//! Criterion microbenchmarks for experiment E6 (host attachment cost):
//! the per-packet and per-connection processing prices the architecture
//! makes every host pay.

use catenet_bench::e6_host_cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_wire");
    for &size in &[64usize, 576, 1460] {
        let datagram = e6_host_cost::sample_datagram(size);
        group.throughput(Throughput::Bytes(datagram.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("ipv4_parse_verify", size),
            &datagram,
            |b, d| b.iter(|| e6_host_cost::op_parse(std::hint::black_box(d))),
        );
        group.bench_with_input(
            BenchmarkId::new("internet_checksum", size),
            &datagram,
            |b, d| b.iter(|| e6_host_cost::op_checksum(std::hint::black_box(d))),
        );
    }
    group.finish();
}

fn bench_fragmentation(c: &mut Criterion) {
    let datagram = e6_host_cost::sample_datagram(1460);
    c.bench_function("e6_fragment_reassemble_1480_to_576", |b| {
        b.iter(|| e6_host_cost::op_fragment_reassemble(std::hint::black_box(&datagram)))
    });
}

fn bench_tcp_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_tcp_session");
    group.sample_size(20);
    for &bytes in &[1_024usize, 10_240, 102_400] {
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("syn_transfer_close", bytes),
            &bytes,
            |b, &bytes| b.iter(|| e6_host_cost::op_tcp_session(bytes)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_fragmentation, bench_tcp_session);
criterion_main!(benches);
