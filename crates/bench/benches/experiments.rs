//! Criterion harness: one benchmark per paper experiment (E1–E5,
//! E7–E10; E6's microbenches live in `stack_micro.rs`).
//!
//! Each benchmark runs a reduced but structurally identical
//! configuration of the corresponding experiment in `catenet-bench`;
//! the full tables are produced by `cargo run --release --bin
//! reproduce`. Benchmarking the experiment itself keeps the whole
//! simulation path (wire codecs, event loop, TCP machinery, routing)
//! under continuous performance observation.

use catenet_bench::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("e1_survivability_quick", |b| {
        b.iter(|| e1_survivability::quick(std::hint::black_box(7)))
    });
    group.bench_function("e2_type_of_service_quick", |b| {
        b.iter(|| e2_type_of_service::quick(std::hint::black_box(7)))
    });
    group.bench_function("e3_variety_quick", |b| {
        b.iter(|| e3_variety::quick(std::hint::black_box(7)))
    });
    group.bench_function("e4_distributed_mgmt_quick", |b| {
        b.iter(|| e4_distributed_mgmt::quick(std::hint::black_box(7)))
    });
    group.bench_function("e5_cost_quick", |b| {
        b.iter(|| e5_cost::quick(std::hint::black_box(7)))
    });
    group.bench_function("e7_accounting_quick", |b| {
        b.iter(|| e7_accounting::quick(std::hint::black_box(7)))
    });
    group.bench_function("e8_soft_state_quick", |b| {
        b.iter(|| e8_soft_state::quick(std::hint::black_box(7)))
    });
    group.bench_function("e9_byte_sequencing_quick", |b| {
        b.iter(|| e9_byte_sequencing::quick(std::hint::black_box(7)))
    });
    group.bench_function("e10_realizations_quick", |b| {
        b.iter(|| e10_realizations::quick(std::hint::black_box(7)))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
