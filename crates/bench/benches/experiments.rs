//! One benchmark per paper experiment (E1–E5, E7–E11; E6's microbenches
//! live in `stack_micro.rs`).
//!
//! Each benchmark runs a reduced but structurally identical
//! configuration of the corresponding experiment in `catenet-bench`;
//! the full tables are produced by `cargo run --release --bin
//! reproduce`. Benchmarking the experiment itself keeps the whole
//! simulation path (wire codecs, event loop, TCP machinery, routing)
//! under continuous performance observation.
//!
//! Self-contained harness (no external bench framework): each quick
//! experiment runs a few iterations and reports mean wall-clock time.

use catenet_bench::*;
use std::time::Instant;

fn bench(name: &str, op: &dyn Fn()) {
    op(); // warm-up
    let iters = 3u32;
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    println!("{name:<36} {ms:>10.1} ms/iter");
}

fn main() {
    println!("# experiment quick-run benchmarks");
    bench("e1_survivability_quick", &|| {
        e1_survivability::quick(std::hint::black_box(7));
    });
    bench("e2_type_of_service_quick", &|| {
        e2_type_of_service::quick(std::hint::black_box(7));
    });
    bench("e3_variety_quick", &|| {
        e3_variety::quick(std::hint::black_box(7));
    });
    bench("e4_distributed_mgmt_quick", &|| {
        e4_distributed_mgmt::quick(std::hint::black_box(7));
    });
    bench("e5_cost_quick", &|| {
        e5_cost::quick(std::hint::black_box(7));
    });
    bench("e7_accounting_quick", &|| {
        e7_accounting::quick(std::hint::black_box(7));
    });
    bench("e8_soft_state_quick", &|| {
        e8_soft_state::quick(std::hint::black_box(7));
    });
    bench("e9_byte_sequencing_quick", &|| {
        e9_byte_sequencing::quick(std::hint::black_box(7));
    });
    bench("e10_realizations_quick", &|| {
        e10_realizations::quick(std::hint::black_box(7));
    });
    bench("e11_gauntlet_quick", &|| {
        e11_gauntlet::quick(std::hint::black_box(7));
    });
}
