//! E3 — Variety of networks: fragmentation and its price (paper §5, goal 3).
//!
//! **Claim.** "The Internet architecture ... makes a minimum set of
//! assumptions about the \[underlying\] network ... that the network can
//! transport a packet or datagram ... of reasonable \[minimum\] size."
//! Anything bigger is the internet layer's problem: gateways fragment,
//! destinations reassemble. The known cost (§7): losing one fragment
//! loses the whole datagram, so fragmentation *amplifies* loss.
//!
//! **Experiment.** UDP datagrams of increasing size cross the 1988
//! menagerie — Ethernet (MTU 1500) → ARPANET trunk (1006) → serial line
//! (296). We count fragments per datagram, delivery rate at a given
//! per-link loss, and header overhead. Delivered payloads are verified
//! byte-for-byte (reassembly correctness under real reordering).

use crate::table::Table;
use catenet_core::iface::Framing;
use catenet_core::{Endpoint, Network};
use catenet_sim::{Duration, LinkClass, LinkParams};
use catenet_wire::IPV4_HEADER_LEN;

/// One row of the fragmentation table.
#[derive(Debug, Clone, Copy)]
pub struct FragReport {
    /// Datagram payload size.
    pub payload: usize,
    /// Fragments each datagram becomes on the narrowest hop.
    pub frags_per_datagram: f64,
    /// Datagrams sent.
    pub sent: u64,
    /// Datagrams fully reassembled at the destination.
    pub delivered: u64,
    /// Header bytes per delivered payload byte (IP headers only).
    pub header_overhead: f64,
}

impl FragReport {
    /// Delivery fraction.
    pub fn delivery_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.sent as f64
    }
}

/// Send `count` UDP datagrams of `payload` bytes across the
/// heterogeneous path with `loss` applied to every link.
pub fn run(seed: u64, payload: usize, count: u64, loss: f64) -> FragReport {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("h2");
    let lossy = |class: LinkClass| LinkParams {
        loss,
        corruption: 0.0,
        // Deep queues so the measured effect is fragmentation's loss
        // amplification, not rate-mismatch tail drop (which E5's queue
        // accounting covers separately).
        queue_limit: 64,
        ..class.params()
    };
    net.connect_with(h1, g1, lossy(LinkClass::EthernetLan), Framing::RawIp);
    net.connect_with(g1, g2, lossy(LinkClass::ArpanetTrunk), Framing::RawIp);
    net.connect_with(g2, h2, lossy(LinkClass::SlipLine), Framing::RawIp);
    net.converge_routing(Duration::from_secs(60));

    let dst = net.node(h2).primary_addr();
    net.node_mut(h2).udp_bind(9000);
    let sock = net.node_mut(h1).udp_bind(9001);
    let pattern: Vec<u8> = (0..payload).map(|i| (i % 251) as u8).collect();
    // Pace the datagrams so the 9.6 kb/s serial line can drain.
    let wire_per_dgram = payload + 28;
    let drain_time =
        Duration::from_secs_f64(wire_per_dgram as f64 * 8.0 / 9_600.0) + Duration::from_millis(80);
    for _ in 0..count {
        net.node_mut(h1).udp_sockets[sock].send_to(Endpoint::new(dst, 9000), &pattern);
        net.kick(h1);
        net.run_for(drain_time);
    }
    net.run_for(Duration::from_secs(20));

    let mut delivered = 0u64;
    while let Some(dgram) = net.node_mut(h2).udp_sockets[0].recv() {
        assert_eq!(dgram.payload, pattern, "reassembly must be byte-exact");
        delivered += 1;
    }
    // Fragments per datagram on the narrowest link (SLIP, IP MTU 296):
    // the g2→h2 hop's frame count over datagram count.
    let frags = net.node(g2).stats.frags_created.max(count) as f64 / count as f64;
    // The UDP datagram needs (payload + 8) transport bytes; each fragment
    // repeats the 20-byte IP header.
    let total_headers = frags.ceil() * IPV4_HEADER_LEN as f64 + 8.0;
    FragReport {
        payload,
        frags_per_datagram: frags,
        sent: count,
        delivered,
        header_overhead: total_headers / payload as f64,
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E3 — Variety of networks: datagrams across Ethernet(1500) → ARPANET(1006) → serial(296)",
        &[
            "payload (B)",
            "frags/datagram",
            "delivered @0% loss",
            "delivered @2%/link loss",
            "predicted @2%",
            "header overhead",
        ],
    );
    for payload in [256usize, 576, 1024, 2048, 4096] {
        let clean = run(seeds[0], payload, 40, 0.0);
        // Pool lossy runs across seeds.
        let mut sent = 0u64;
        let mut delivered = 0u64;
        for &seed in seeds {
            let lossy = run(seed, payload, 40, 0.02);
            sent += lossy.sent;
            delivered += lossy.delivered;
        }
        // A datagram of f fragments needs all f to survive 3 links:
        // P = (1-p)^(hops_before_split) × (1-p)^(2×f)… simplified model:
        // one Ethernet hop + one ARPANET hop (≤2 frags there) + f SLIP
        // fragments. Use the coarse bound (1-p)^(2 + 2f) for the note.
        let f = clean.frags_per_datagram;
        let predicted = (1.0f64 - 0.02).powf(2.0 + 2.0 * f);
        table.row(vec![
            format!("{payload}"),
            format!("{:.1}", clean.frags_per_datagram),
            format!("{:.0}%", clean.delivery_rate() * 100.0),
            format!("{:.0}%", 100.0 * delivered as f64 / sent as f64),
            format!("{:.0}%", predicted * 100.0),
            format!("{:.1}%", clean.header_overhead * 100.0),
        ]);
    }
    table.note(
        "Paper's claim: the internet layer assumes only a 'reasonable minimum' MTU of \
         each network and fragments across smaller ones — at the cost that a datagram \
         dies if ANY fragment dies. Expected shape: delivery at fixed link loss falls \
         with datagram size (loss amplification ≈ (1-p)^(2+2f)), while per-byte header \
         overhead falls.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> FragReport {
    run(seed, 1024, 10, 0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datagrams_unfragmented_and_delivered() {
        let report = run(11, 256, 20, 0.0);
        assert_eq!(report.delivered, 20);
        assert!(report.frags_per_datagram <= 1.01);
    }

    #[test]
    fn large_datagrams_fragment_and_still_deliver() {
        let report = run(11, 2048, 10, 0.0);
        assert_eq!(report.delivered, 10, "lossless: all reassembled");
        assert!(
            report.frags_per_datagram >= 7.0,
            "2 kB over 296-MTU: {} frags",
            report.frags_per_datagram
        );
    }

    #[test]
    fn loss_amplification_grows_with_size() {
        let small = run(11, 256, 60, 0.03);
        let large = run(11, 2048, 60, 0.03);
        assert!(
            large.delivery_rate() < small.delivery_rate(),
            "large {} vs small {}",
            large.delivery_rate(),
            small.delivery_rate()
        );
    }
}
