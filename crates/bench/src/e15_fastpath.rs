//! E15 — Forwarding fast-path benchmark (ROADMAP "per-packet cost").
//!
//! **Claim.** Clark's §goal-5/6 discussion blames the datagram
//! architecture's cost on per-packet *processing*, and the kernels of
//! the era answered with buffer pools and in-place header prepends
//! (mbufs, skbuffs). This stack now does the same: pooled
//! [`PacketBuf`](catenet_core::PacketBuf)s ride from socket to wire and
//! hop to hop with headers prepended into reserved headroom, recycling
//! through a freelist instead of the allocator. A perf rewrite of the
//! *data path* is only trustworthy if it is proven observably identical
//! to what it replaced.
//!
//! **Experiment.** The E13 topologies (gateway rings of 50–400 plus a
//! grid mesh) run their cold-start convergence storm and bulk TCP flows
//! twice: once in **copy mode** — the pool hands out exact-size fresh
//! buffers and copies at every layer boundary, the pre-pool behavior —
//! and once on the **fast path**. Three things are measured:
//!
//! 1. **Equivalence**: metrics, time-series, and flight-recorder dumps
//!    of the two arms must be byte-identical. Buffer management must be
//!    invisible to every observable the simulation has.
//! 2. **Per-packet cost**: pool counters over a steady-state window
//!    (after the convergence storm and TCP starts settle) divided by
//!    datagrams forwarded in that window — allocations and bytes copied
//!    per forwarded packet, for each arm.
//! 3. **End-to-end wall clock** per arm, and the resulting speedup.
//!
//! Results are rendered as a table and emitted as `BENCH_e15.json`. In
//! `--check` mode the JSON omits wall-clock fields, leaving only
//! seed-deterministic numbers — CI runs it twice and diffs.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::{Endpoint, Network, NodeId, TcpConfig};
use catenet_sim::{Duration, LinkClass};

/// Ring sizes (gateway counts) in the full battery.
pub const RING_SIZES: [usize; 4] = [50, 100, 200, 400];
/// Ring sizes in the fast/CI battery.
pub const RING_SIZES_FAST: [usize; 2] = [50, 100];
/// Virtual time each arm runs.
pub const VIRTUAL: Duration = Duration::from_secs(30);
/// Steady-state window start: the convergence storm is over and every
/// bulk flow (staggered from 8 s) is under way by here, so the counters
/// between `WARMUP` and [`VIRTUAL`] price the *converged* forwarding
/// path, not topology construction.
pub const WARMUP: Duration = Duration::from_secs(12);
/// A host pair with a bulk transfer every this many gateways.
const FLOW_SPACING: usize = 2;
/// Bytes per bulk transfer.
const FLOW_BYTES: usize = 500_000;

/// Attach host pairs around the topology, exactly as E13 does: at every
/// [`FLOW_SPACING`]-th gateway, a sender two gateways from a sink, with
/// a [`FLOW_BYTES`] transfer starting once nearby routes exist.
fn add_flows(net: &mut Network, gateways: &[NodeId]) {
    for i in (0..gateways.len()).step_by(FLOW_SPACING) {
        let near = gateways[i];
        let far = gateways[(i + 2) % gateways.len()];
        let sender = net.add_host(format!("src{i}"));
        let sink = net.add_host(format!("dst{i}"));
        net.connect(sender, near, LinkClass::EthernetLan);
        net.connect(sink, far, LinkClass::EthernetLan);
        let dst = net.node(sink).primary_addr();
        let config = TcpConfig::default();
        net.attach_app(sink, Box::new(SinkServer::new(80, config.clone())));
        net.attach_app(
            sender,
            Box::new(BulkSender::new(
                Endpoint::new(dst, 80),
                FLOW_BYTES,
                config,
                catenet_sim::Instant::from_secs(8),
            )),
        );
    }
}

/// Build the E13 ring (hosts on either side, flows around it) and
/// return the gateway ids so forwarding counters can be summed.
fn build_ring(gateways: usize, seed: u64, copy_mode: bool) -> (Network, Vec<NodeId>) {
    let mut net = Network::new(seed);
    net.set_copy_mode(copy_mode);
    let h1 = net.add_host("h1");
    let gs: Vec<NodeId> = (0..gateways)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    for i in 0..gateways {
        net.connect(gs[i], gs[(i + 1) % gateways], LinkClass::T1Terrestrial);
    }
    let h2 = net.add_host("h2");
    net.connect(gs[gateways / 2], h2, LinkClass::EthernetLan);
    add_flows(&mut net, &gs);
    (net, gs)
}

/// Build the E13 grid mesh with hosts at opposite corners.
fn build_mesh(side: usize, seed: u64, copy_mode: bool) -> (Network, Vec<NodeId>) {
    let mut net = Network::new(seed);
    net.set_copy_mode(copy_mode);
    let gs: Vec<NodeId> = (0..side * side)
        .map(|i| net.add_gateway(format!("g{i}")))
        .collect();
    for row in 0..side {
        for col in 0..side {
            let here = gs[row * side + col];
            if col + 1 < side {
                net.connect(here, gs[row * side + col + 1], LinkClass::T1Terrestrial);
            }
            if row + 1 < side {
                net.connect(here, gs[(row + 1) * side + col], LinkClass::T1Terrestrial);
            }
        }
    }
    let h1 = net.add_host("h1");
    let h2 = net.add_host("h2");
    net.connect(h1, gs[0], LinkClass::EthernetLan);
    net.connect(h2, gs[side * side - 1], LinkClass::EthernetLan);
    add_flows(&mut net, &gs);
    (net, gs)
}

/// Steady-state window counters for one arm.
#[derive(Debug, Clone, Copy)]
pub struct ArmCost {
    /// Fresh allocations in the window.
    pub steady_allocs: u64,
    /// Bytes copied (relocations + ingest copies) in the window.
    pub steady_bytes_copied: u64,
    /// Freelist hits in the window (always 0 in copy mode).
    pub steady_recycled: u64,
    /// Fresh allocations per datagram forwarded in the window.
    pub allocs_per_forward: f64,
    /// Bytes copied per datagram forwarded in the window.
    pub bytes_per_forward: f64,
    /// Full-run wall clock, milliseconds.
    pub sim_ms: f64,
}

/// One topology's measurements: the copy arm, the fast arm, and the
/// equivalence verdict between them.
#[derive(Debug, Clone)]
pub struct TopoResult {
    /// Display name, e.g. `ring-400` or `mesh-10x10`.
    pub name: String,
    /// Gateway count.
    pub gateways: usize,
    /// Events the simulation processed (identical across arms).
    pub events: u64,
    /// Datagrams forwarded by gateways over the full run.
    pub forwarded: u64,
    /// Datagrams forwarded inside the steady-state window.
    pub steady_forwarded: u64,
    /// The two arms' telemetry dumps were byte-identical.
    pub dumps_equal: bool,
    /// Copy-mode arm (pre-pool behavior).
    pub copy: ArmCost,
    /// Fast-path arm (pooled, headroom prepends).
    pub fast: ArmCost,
    /// Freelist occupancy at the end of the fast run.
    pub pool_free: u64,
    /// Wall-clock speedup: copy sim time / fast sim time.
    pub speedup: f64,
}

fn dumps(net: &Network) -> [String; 3] {
    [net.metrics_dump(), net.series_dump(), net.flight_dump()]
}

struct ArmRun {
    dumps: [String; 3],
    events: u64,
    forwarded: u64,
    steady_forwarded: u64,
    cost: ArmCost,
    pool_free: u64,
}

/// Run one arm to [`VIRTUAL`], snapshotting pool and forwarding
/// counters at [`WARMUP`] so the window prices steady state only.
fn run_arm(build: &dyn Fn(bool) -> (Network, Vec<NodeId>), copy_mode: bool) -> ArmRun {
    let (mut net, gateways) = build(copy_mode);
    let forwarded_by = |net: &Network| -> u64 {
        gateways.iter().map(|&g| net.node(g).stats.ip_forwarded).sum()
    };
    let t0 = std::time::Instant::now();
    net.run_for(WARMUP);
    let at_warmup = net.pool().stats();
    let fwd_warmup = forwarded_by(&net);
    net.run_for(VIRTUAL - WARMUP);
    let sim_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = net.pool().stats();
    let forwarded = forwarded_by(&net);
    let steady_forwarded = forwarded - fwd_warmup;
    let per = |n: u64| n as f64 / (steady_forwarded.max(1)) as f64;
    let steady_allocs = stats.fresh_allocs - at_warmup.fresh_allocs;
    let steady_bytes_copied = stats.bytes_copied - at_warmup.bytes_copied;
    ArmRun {
        dumps: dumps(&net),
        events: net.sched_stats().processed,
        forwarded,
        steady_forwarded,
        cost: ArmCost {
            steady_allocs,
            steady_bytes_copied,
            steady_recycled: stats.recycled - at_warmup.recycled,
            allocs_per_forward: per(steady_allocs),
            bytes_per_forward: per(steady_bytes_copied),
            sim_ms,
        },
        pool_free: net.pool().free_buffers() as u64,
    }
}

/// Measure one topology: copy arm, then fast arm, then compare.
fn measure(name: &str, gateways: usize, build: &dyn Fn(bool) -> (Network, Vec<NodeId>)) -> TopoResult {
    let copy = run_arm(build, true);
    let fast = run_arm(build, false);
    assert_eq!(
        copy.events, fast.events,
        "{name}: arms processed different event counts"
    );
    assert_eq!(
        copy.forwarded, fast.forwarded,
        "{name}: arms forwarded different datagram counts"
    );
    TopoResult {
        name: name.to_string(),
        gateways,
        events: fast.events,
        forwarded: fast.forwarded,
        steady_forwarded: fast.steady_forwarded,
        dumps_equal: copy.dumps == fast.dumps,
        speedup: copy.cost.sim_ms / fast.cost.sim_ms,
        copy: copy.cost,
        fast: fast.cost,
        pool_free: fast.pool_free,
    }
}

/// Run the battery. `fast` selects the CI-sized topologies.
pub fn run_battery(fast: bool, seed: u64) -> Vec<TopoResult> {
    let sizes: &[usize] = if fast { &RING_SIZES_FAST } else { &RING_SIZES };
    let mut results = Vec::new();
    for &gateways in sizes {
        results.push(measure(&format!("ring-{gateways}"), gateways, &|copy| {
            build_ring(gateways, seed, copy)
        }));
    }
    let side = if fast { 5 } else { 10 };
    results.push(measure(&format!("mesh-{side}x{side}"), side * side, &|copy| {
        build_mesh(side, seed, copy)
    }));
    results
}

/// Render the battery as an experiment table.
pub fn table(results: &[TopoResult]) -> Table {
    let mut table = Table::new(
        format!(
            "E15 — Forwarding fast path: pooled zero-copy buffers vs the \
             allocate-and-copy baseline on the E13 topologies, {VIRTUAL} of \
             virtual time per arm; per-packet costs measured over the \
             steady-state window ({WARMUP}..{VIRTUAL})"
        ),
        &[
            "topology",
            "gateways",
            "forwarded",
            "dumps equal",
            "copy allocs/fwd",
            "fast allocs/fwd",
            "copy bytes/fwd",
            "fast bytes/fwd",
            "copy sim (ms)",
            "fast sim (ms)",
            "speedup",
        ],
    );
    for r in results {
        table.row(vec![
            r.name.clone(),
            format!("{}", r.gateways),
            format!("{}", r.forwarded),
            if r.dumps_equal { "yes" } else { "NO" }.into(),
            format!("{:.3}", r.copy.allocs_per_forward),
            format!("{:.4}", r.fast.allocs_per_forward),
            format!("{:.1}", r.copy.bytes_per_forward),
            format!("{:.2}", r.fast.bytes_per_forward),
            format!("{:.1}", r.copy.sim_ms),
            format!("{:.1}", r.fast.sim_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    table.note(
        "Expected shape: dumps equal everywhere (buffer management is \
         invisible to every observable); the fast arm's steady-state \
         allocations per forwarded packet are ~0 (the freelist serves the \
         converged network) while the copy arm pays ~2 allocations and a \
         multi-hundred-byte copy bill per packet. The speedup column \
         isolates buffer management alone — both arms share the wide \
         checksum kernel, incremental TTL updates and room-sized \
         application chunking, so the end-to-end win of the whole fast-path \
         change is larger (compare E13's wall-clock columns across \
         revisions). Wall-clock columns vary run to run; counters and dump \
         equality are seed-deterministic.",
    );
    table
}

/// Serialize results as `BENCH_e15.json`. With `timings: false` (CI
/// `--check` mode) all wall-clock fields are omitted, leaving only
/// seed-deterministic numbers — run twice and diff.
pub fn to_json(results: &[TopoResult], timings: bool) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e15\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"virtual_secs\": {},\n  \"warmup_secs\": {},\n  \"topologies\": [\n",
        if timings { "full" } else { "check" },
        VIRTUAL.total_micros() / 1_000_000,
        WARMUP.total_micros() / 1_000_000,
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"gateways\": {},\n", r.gateways));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!("      \"forwarded\": {},\n", r.forwarded));
        out.push_str(&format!(
            "      \"steady_forwarded\": {},\n",
            r.steady_forwarded
        ));
        out.push_str(&format!("      \"dumps_equal\": {},\n", r.dumps_equal));
        out.push_str(&format!("      \"pool_free_buffers\": {},\n", r.pool_free));
        for (key, arm) in [("copy", &r.copy), ("fast", &r.fast)] {
            out.push_str(&format!(
                "      \"{}\": {{\"steady_allocs\": {}, \"steady_bytes_copied\": {}, \
                 \"steady_recycled\": {}, \"allocs_per_forward\": {:.4}, \
                 \"bytes_per_forward\": {:.2}",
                key,
                arm.steady_allocs,
                arm.steady_bytes_copied,
                arm.steady_recycled,
                arm.allocs_per_forward,
                arm.bytes_per_forward,
            ));
            if timings {
                out.push_str(&format!(", \"sim_ms\": {:.3}", arm.sim_ms));
            }
            out.push_str("},\n");
        }
        if timings {
            out.push_str(&format!("      \"speedup\": {:.3}\n", r.speedup));
        } else {
            // Trailing key without a comma problem: repeat a
            // deterministic field so the object stays valid JSON.
            out.push_str(&format!("      \"events_check\": {}\n", r.events));
        }
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ring_arms_agree_and_fast_path_is_alloc_free() {
        let r = measure("ring-4", 4, &|copy| build_ring(4, 11, copy));
        assert!(r.dumps_equal, "copy and fast dumps must be identical");
        assert!(r.forwarded > 1_000, "flows forwarded: {}", r.forwarded);
        assert!(
            r.fast.allocs_per_forward < 0.01,
            "fast path steady allocs/fwd {} not ~0",
            r.fast.allocs_per_forward
        );
        assert!(
            r.copy.allocs_per_forward > 1.0,
            "copy arm must pay per-packet allocations: {}",
            r.copy.allocs_per_forward
        );
        assert!(
            r.copy.bytes_per_forward > r.fast.bytes_per_forward,
            "copy arm must move more bytes"
        );
        assert!(r.fast.steady_recycled > 0, "freelist never hit");
    }

    #[test]
    fn mesh_arms_agree() {
        let r = measure("mesh-3x3", 9, &|copy| build_mesh(3, 23, copy));
        assert!(r.dumps_equal);
        assert!(r.forwarded > 1_000);
    }

    #[test]
    fn json_check_mode_is_deterministic_and_timing_free() {
        let a = measure("ring-3", 3, &|copy| build_ring(3, 11, copy));
        let b = measure("ring-3", 3, &|copy| build_ring(3, 11, copy));
        let ja = to_json(&[a], false);
        let jb = to_json(&[b], false);
        assert_eq!(ja, jb, "check-mode JSON replays bit-for-bit");
        assert!(!ja.contains("_ms"), "no wall-clock fields in check mode");
        assert!(!ja.contains("speedup"), "no speedup in check mode");
        assert!(ja.contains("\"mode\": \"check\""));
        assert!(ja.contains("\"dumps_equal\": true"));
    }
}
