//! An abstract lossy channel for transport-level A/B comparisons.
//!
//! Experiment E9 compares TCP's byte sequencing against the
//! packet-sequenced baseline. To make that comparison *mechanism-pure*,
//! both transports are driven through this identical channel: fixed
//! one-way delay, independent per-segment loss from a seeded RNG, FIFO
//! delivery. (The full network stack would be fair too, but the channel
//! removes every confound except the sequencing design itself.)

use catenet_sim::{Duration, Instant, Rng, Scheduler};
use catenet_tcp::{Endpoint, Socket, SocketConfig};
use catenet_wire::Ipv4Address;

/// Channel parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChannelParams {
    /// One-way delay.
    pub delay: Duration,
    /// Independent per-segment loss probability (each direction).
    pub loss: f64,
    /// Random seed.
    pub seed: u64,
    /// Wall-clock budget in virtual time before giving up.
    pub deadline: Instant,
    /// Spacing between application writes (ZERO = all buffered up
    /// front). Pacing matters for Nagle comparisons: an interactive
    /// source produces bytes over time, not in one burst.
    pub write_interval: Duration,
}

impl Default for ChannelParams {
    fn default() -> ChannelParams {
        ChannelParams {
            delay: Duration::from_millis(20),
            loss: 0.0,
            seed: 1,
            deadline: Instant::from_secs(600),
            write_interval: Duration::ZERO,
        }
    }
}

/// Result of pushing a workload through a transport over the channel.
#[derive(Debug, Clone, Copy)]
pub struct TransferReport {
    /// All application data arrived intact and in order.
    pub completed: bool,
    /// Virtual time at completion.
    pub finished_at: Instant,
    /// Data segments transmitted (including retransmissions).
    pub segs_sent: u64,
    /// Wire bytes transmitted, headers included.
    pub wire_bytes: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
}

const TCP_HEADERS: u64 = 40; // IP (20) + TCP (20), options ignored

/// Drive a TCP connection carrying `writes` (each an application write)
/// through the channel, Nagle per `nagle`. Returns the report for the
/// sending side.
pub fn run_tcp(
    params: ChannelParams,
    writes: &[Vec<u8>],
    nagle: bool,
    mss: usize,
) -> TransferReport {
    let a_addr = Ipv4Address::new(10, 0, 0, 1);
    let b_addr = Ipv4Address::new(10, 0, 0, 2);
    let mut client = Socket::new(SocketConfig {
        initial_seq: 1000,
        mss,
        nagle,
        delayed_ack: None,
        tx_capacity: 1 << 20,
        ..SocketConfig::default()
    });
    let mut server = Socket::new(SocketConfig {
        initial_seq: 2000,
        mss,
        delayed_ack: None,
        rx_capacity: 1 << 20,
        ..SocketConfig::default()
    });
    server
        .listen(Endpoint::new(b_addr, 80))
        .expect("fresh socket");
    client
        .connect(Endpoint::new(a_addr, 9999), Endpoint::new(b_addr, 80), Instant::ZERO)
        .expect("fresh socket");

    enum Ev {
        ToServer(catenet_wire::TcpRepr, Vec<u8>),
        ToClient(catenet_wire::TcpRepr, Vec<u8>),
        Tick,
    }
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut rng = Rng::from_seed(params.seed);
    let total: usize = writes.iter().map(|w| w.len()).sum();
    let mut write_cursor = 0usize;
    let mut received = 0usize;
    let mut report = TransferReport {
        completed: false,
        finished_at: Instant::ZERO,
        segs_sent: 0,
        wire_bytes: 0,
        retransmits: 0,
    };
    sched.schedule_at(Instant::ZERO, Ev::Tick);
    // Deduplicate timer ticks: scheduling one per event iteration would
    // grow the queue quadratically.
    let mut next_tick: Option<Instant> = Some(Instant::ZERO);

    let drain =
        |sock: &mut Socket,
         now: Instant,
         to_server: bool,
         sched: &mut Scheduler<Ev>,
         rng: &mut Rng,
         report: &mut TransferReport| {
            while let Some((repr, payload)) = sock.dispatch(now) {
                if to_server {
                    report.segs_sent += 1;
                    report.wire_bytes += TCP_HEADERS + payload.len() as u64;
                }
                if rng.chance(params.loss) {
                    continue;
                }
                let ev = if to_server {
                    Ev::ToServer(repr, payload)
                } else {
                    Ev::ToClient(repr, payload)
                };
                sched.schedule_at(now + params.delay, ev);
            }
        };

    while let Some((now, ev)) = sched.pop() {
        if now > params.deadline {
            break;
        }
        if next_tick.is_some_and(|at| at <= now) {
            next_tick = None;
        }
        match ev {
            Ev::ToServer(repr, payload) => {
                server.process(now, b_addr, a_addr, &repr, &payload);
                let mut buf = [0u8; 4096];
                while let Ok(n) = server.recv_slice(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    received += n;
                }
                drain(&mut server, now, false, &mut sched, &mut rng, &mut report);
            }
            Ev::ToClient(repr, payload) => {
                client.process(now, a_addr, b_addr, &repr, &payload);
                drain(&mut client, now, true, &mut sched, &mut rng, &mut report);
            }
            Ev::Tick => {}
        }
        // Feed writes that are due (paced by write_interval).
        while write_cursor < writes.len() {
            let due = Instant::ZERO + params.write_interval * write_cursor as u32;
            if now < due {
                if next_tick.is_none_or(|pending| due < pending) {
                    next_tick = Some(due);
                    sched.schedule_at(due, Ev::Tick);
                }
                break;
            }
            let write = &writes[write_cursor];
            match client.send_slice(write) {
                Ok(n) if n == write.len() => write_cursor += 1,
                _ => break,
            }
        }
        drain(&mut client, now, true, &mut sched, &mut rng, &mut report);
        report.retransmits = client.stats.retransmits;
        if received >= total && write_cursor == writes.len() {
            report.completed = true;
            report.finished_at = now;
            break;
        }
        // Keep timers alive: schedule the next poll point (deduped).
        if let Some(at) = client.poll_at() {
            let at = if at <= now {
                now + Duration::from_micros(1)
            } else {
                at
            };
            if next_tick.is_none_or(|pending| at < pending) {
                next_tick = Some(at);
                sched.schedule_at(at, Ev::Tick);
            }
        }
    }
    report
}

/// Drive the packet-sequenced baseline through the same channel.
pub fn run_pktseq(
    params: ChannelParams,
    writes: &[Vec<u8>],
    window: u64,
) -> TransferReport {
    use catenet_core::baseline::pktseq::{PktReceiver, PktSegment, PktSender, PKT_HEADER};

    let mut tx = PktSender::new(window, Duration::from_millis(100).max(params.delay * 3));
    let mut rx = PktReceiver::new();
    for write in writes {
        tx.send(write);
    }
    enum Ev {
        Data(PktSegment),
        Ack(u64),
        Tick,
    }
    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut rng = Rng::from_seed(params.seed);
    let mut report = TransferReport {
        completed: false,
        finished_at: Instant::ZERO,
        segs_sent: 0,
        wire_bytes: 0,
        retransmits: 0,
    };
    sched.schedule_at(Instant::ZERO, Ev::Tick);
    let mut next_tick: Option<Instant> = Some(Instant::ZERO);
    while let Some((now, ev)) = sched.pop() {
        if now > params.deadline {
            break;
        }
        if next_tick.is_some_and(|at| at <= now) {
            next_tick = None;
        }
        match ev {
            Ev::Data(seg) => {
                let ack = rx.process(seg);
                if !rng.chance(params.loss) {
                    sched.schedule_at(now + params.delay, Ev::Ack(ack));
                }
            }
            Ev::Ack(ack) => tx.process_ack(ack, now),
            Ev::Tick => {}
        }
        while let Some(seg) = tx.dispatch(now) {
            report.segs_sent += 1;
            report.wire_bytes += PKT_HEADER as u64 + seg.payload.len() as u64;
            if !rng.chance(params.loss) {
                sched.schedule_at(now + params.delay, Ev::Data(seg));
            }
        }
        report.retransmits = tx.stats.retransmits;
        if tx.all_acked() {
            report.completed = true;
            report.finished_at = now;
            break;
        }
        if let Some(at) = tx.poll_at() {
            let at = if at <= now {
                now + Duration::from_micros(1)
            } else {
                at
            };
            if next_tick.is_none_or(|pending| at < pending) {
                next_tick = Some(at);
                sched.schedule_at(at, Ev::Tick);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writes(n: usize, size: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![(i % 251) as u8; size]).collect()
    }

    #[test]
    fn tcp_completes_lossless() {
        let report = run_tcp(ChannelParams::default(), &writes(10, 500), true, 1000);
        assert!(report.completed);
        assert_eq!(report.retransmits, 0);
        assert!(report.segs_sent >= 5);
    }

    #[test]
    fn tcp_completes_under_loss() {
        let params = ChannelParams {
            loss: 0.1,
            seed: 5,
            ..ChannelParams::default()
        };
        // Enough segments that 10% loss is statistically certain to bite.
        let report = run_tcp(params, &writes(100, 500), true, 1000);
        assert!(report.completed, "TCP recovered from loss");
        assert!(report.retransmits > 0);
    }

    #[test]
    fn pktseq_completes_lossless_and_lossy() {
        let clean = run_pktseq(ChannelParams::default(), &writes(10, 500), 8);
        assert!(clean.completed);
        assert_eq!(clean.retransmits, 0);
        let params = ChannelParams {
            loss: 0.1,
            seed: 5,
            ..ChannelParams::default()
        };
        let lossy = run_pktseq(params, &writes(20, 500), 8);
        assert!(lossy.completed);
        assert!(lossy.retransmits > 0);
    }

    #[test]
    fn tcp_coalesces_tinygrams_pktseq_cannot() {
        // 200 ten-byte writes: Nagle packs them; pktseq sends 200 packets.
        let tcp = run_tcp(ChannelParams::default(), &writes(200, 10), true, 1000);
        let pkt = run_pktseq(ChannelParams::default(), &writes(200, 10), 8);
        assert!(tcp.completed && pkt.completed);
        assert!(
            tcp.segs_sent * 3 < pkt.segs_sent,
            "TCP {} segs vs pktseq {} segs",
            tcp.segs_sent,
            pkt.segs_sent
        );
    }

    #[test]
    fn deterministic() {
        let params = ChannelParams {
            loss: 0.07,
            seed: 9,
            ..ChannelParams::default()
        };
        let a = run_tcp(params, &writes(30, 300), true, 536);
        let b = run_tcp(params, &writes(30, 300), true, 536);
        assert_eq!(a.segs_sent, b.segs_sent);
        assert_eq!(a.finished_at, b.finished_at);
    }
}
