//! E6 — The cost of attaching a host (paper §8, goal 6).
//!
//! **Claim.** "The goal of host attachment ... a host \[must\] implement
//! [TCP/IP] ... \[and\] poor implementations hurt the network as well as
//! the host." The architecture deliberately pushes work to the endpoint
//! (checksums, reassembly, retransmission state) — this experiment
//! measures what that endpoint work costs per packet and per
//! connection, which is the number a 1988 host implementor cared about.
//!
//! **Experiment.** Microbenchmarks of the stack's per-packet operations
//! (parse/validate, emit, checksum, fragment/reassemble) and the
//! per-connection handshake, run over a loopback socket pair. Criterion
//! drives the statistically careful version (`cargo bench`); the
//! `reproduce` binary prints quick wall-clock estimates of the same
//! operations.

use crate::table::Table;
use catenet_ip::{build_ipv4, fragment, Reassembler};
use catenet_sim::Instant;
use catenet_tcp::{Endpoint, Socket, SocketConfig};
use catenet_wire::{checksum, IpProtocol, Ipv4Address, Ipv4Packet, Ipv4Repr, Tos};

/// A reference 1460-byte-payload datagram.
pub fn sample_datagram(payload: usize) -> Vec<u8> {
    build_ipv4(
        &Ipv4Repr {
            src_addr: Ipv4Address::new(10, 0, 0, 1),
            dst_addr: Ipv4Address::new(10, 9, 0, 2),
            protocol: IpProtocol::Udp,
            payload_len: payload,
            hop_limit: 64,
            tos: Tos::default(),
        },
        42,
        false,
        &vec![0xA5u8; payload],
    )
}

/// Parse + validate a datagram (the receive-path hot operation).
pub fn op_parse(datagram: &[u8]) -> bool {
    match Ipv4Packet::new_checked(datagram) {
        Ok(packet) => packet.verify_checksum(),
        Err(_) => false,
    }
}

/// Internet checksum over `data`.
pub fn op_checksum(data: &[u8]) -> u16 {
    checksum::checksum(data)
}

/// Fragment to MTU 576 and fully reassemble.
pub fn op_fragment_reassemble(datagram: &[u8]) -> usize {
    let frags = fragment(datagram, 576).expect("fragmentable");
    let mut reasm = Reassembler::new();
    let mut out = 0;
    for frag in &frags {
        if let Ok(Some(whole)) = reasm.push(frag, Instant::ZERO) {
            out = whole.len();
        }
    }
    out
}

/// A complete TCP handshake + 10 kB transfer + close over loopback.
pub fn op_tcp_session(bytes: usize) -> u64 {
    let a = Ipv4Address::new(127, 0, 0, 1);
    let b = Ipv4Address::new(127, 0, 0, 2);
    let mut client = Socket::new(SocketConfig {
        initial_seq: 1,
        mss: 1460,
        delayed_ack: None,
        congestion: catenet_tcp::CongestionAlgo::None,
        tx_capacity: bytes.max(4096),
        ..SocketConfig::default()
    });
    let mut server = Socket::new(SocketConfig {
        initial_seq: 2,
        mss: 1460,
        delayed_ack: None,
        rx_capacity: bytes.max(4096),
        ..SocketConfig::default()
    });
    server.listen(Endpoint::new(b, 80)).expect("fresh");
    client
        .connect(Endpoint::new(a, 4000), Endpoint::new(b, 80), Instant::ZERO)
        .expect("fresh");
    let payload = vec![0x7Eu8; bytes];
    let mut written = 0;
    let mut received = 0u64;
    let mut buf = vec![0u8; 8192];
    let mut now = Instant::ZERO;
    for _ in 0..10_000 {
        if written < bytes {
            written += client.send_slice(&payload[written..]).unwrap_or(0);
        }
        let mut progressed = false;
        while let Some((repr, data)) = client.dispatch(now) {
            progressed = true;
            server.process(now, b, a, &repr, &data);
        }
        while let Ok(n) = server.recv_slice(&mut buf) {
            if n == 0 {
                break;
            }
            received += n as u64;
        }
        while let Some((repr, data)) = server.dispatch(now) {
            progressed = true;
            client.process(now, a, b, &repr, &data);
        }
        if received >= bytes as u64 {
            break;
        }
        if !progressed {
            now += catenet_sim::Duration::from_millis(10);
        }
    }
    received
}

fn time_per_op<F: FnMut() -> R, R>(mut f: F, iters: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Quick wall-clock table (criterion gives the careful numbers).
pub fn default_table(_seeds: &[u64]) -> Table {
    let small = sample_datagram(64);
    let large = sample_datagram(1460);
    let mut table = Table::new(
        "E6 — Host attachment cost: per-operation processing time (wall clock, this machine)",
        &["operation", "ns/op", "equiv. pkts/sec"],
    );
    let mut add = |name: &str, ns: f64| {
        table.row(vec![
            name.into(),
            format!("{ns:.0}"),
            format!("{:.2e}", 1e9 / ns),
        ]);
    };
    add("IPv4 parse+verify (64 B)", time_per_op(|| op_parse(&small), 200_000));
    add("IPv4 parse+verify (1460 B)", time_per_op(|| op_parse(&large), 100_000));
    add("Internet checksum (1460 B)", time_per_op(|| op_checksum(&large), 100_000));
    add(
        "fragment+reassemble (1480→576 MTU)",
        time_per_op(|| op_fragment_reassemble(&large), 20_000),
    );
    add(
        "TCP session: SYN→10 kB→close (whole session)",
        time_per_op(|| op_tcp_session(10_240), 2_000),
    );
    table.note(
        "Paper's claim: the endpoint bears the cost of the missing in-network services \
         ('the host [must] implement ...'). These are the per-packet/per-connection \
         costs a 1988 implementor paid; `cargo bench` (criterion) reproduces them with \
         confidence intervals.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_rejects_corrupt() {
        let dgram = sample_datagram(256);
        assert!(op_parse(&dgram));
        let mut bad = dgram.clone();
        bad[9] ^= 0xff;
        assert!(!op_parse(&bad));
    }

    #[test]
    fn fragment_reassemble_round_trips() {
        let dgram = sample_datagram(1460);
        assert_eq!(op_fragment_reassemble(&dgram), dgram.len());
    }

    #[test]
    fn tcp_session_transfers_everything() {
        assert_eq!(op_tcp_session(10_240), 10_240);
        assert_eq!(op_tcp_session(100), 100);
    }
}
