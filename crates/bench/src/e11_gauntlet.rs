//! E11 — The survivability gauntlet (paper §3, goals 1–2, run adversarially).
//!
//! **Claim.** The architecture's first-priority goal is that
//! communication "continue despite loss of networks or gateways", with
//! the only acceptable degradation being *time*: conversations stall and
//! resume, data is never silently wrong, and a connection that cannot
//! continue fails with an explicit error rather than hanging forever.
//!
//! **Experiment.** One topology — `h1 — gA — gD — gB — h2` with the
//! longer backup path `gA — gC1 — gC2 — gB` — runs a bulk TCP transfer
//! under a battery of named chaos scenarios, each a deterministic
//! [`FaultPlan`] derived from the run seed: link flaps, crash storms,
//! partitions (healed and permanent), silent blackholes, loss and
//! corruption bursts, a byzantine gateway that lies to attract the
//! traffic it then eats, and combinations. Every run is scored against
//! the end-to-end invariants in `catenet_core::invariant`:
//!
//! - **integrity** — the delivered stream is a byte-for-byte prefix of
//!   the sent stream, always;
//! - **progress** — no stall longer than the watchdog limit while a
//!   usable path exists (outage windows derived from the plan itself
//!   are excused);
//! - **clean exit** — every connection either completes or aborts with
//!   an explicit error within the time limit; hanging is a failure.

use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::{shared, Endpoint, Network, ProgressWatchdog, StreamIntegrity, TcpConfig};
use catenet_routing::{DvConfig, GuardPolicy};
use catenet_sim::{
    ByzantineAttack, Duration, FaultAction, FaultPlan, Instant, LinkClass, Rng, SchedulerKind,
    ShardKind,
};
use std::sync::Arc;

/// The named chaos archetypes the gauntlet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// No faults at all — the control arm.
    Calm,
    /// The primary backbone link flaps repeatedly; the backup is clean.
    PrimaryFlap,
    /// Every backbone link flaps — both paths are unreliable.
    FlapStorm,
    /// Repeated crash/reboot strikes across all middle gateways.
    CrashStorm,
    /// The sender's side is partitioned from the rest, then healed.
    PartitionHeal,
    /// The partition never heals — the transfer *must* abort cleanly.
    PartitionForever,
    /// The primary link silently eats every frame for a window; routing
    /// sees a healthy link (the failure mode §6 warns about).
    Blackhole,
    /// A heavy loss burst on the primary link (packets still trickle).
    LossBurst,
    /// A corruption burst: frames arrive, but damaged.
    CorruptionBurst,
    /// One-direction loss on the primary link: data drowns while ACKs
    /// (and routing updates) sail through the clean reverse direction.
    AsymmetricLoss,
    /// A latency spike with heavy jitter on the primary link: nothing
    /// is dropped, but back-to-back segments arrive reordered and RTT
    /// estimates inflate mid-transfer.
    DelaySpike,
    /// A gateway crash *while* the backup path is flapping.
    DoubleFault,
    /// A silent blackhole on the primary while a backup gateway crashes.
    SilentCascade,
    /// A compromised gateway advertises a metric-0 route for the
    /// receiver's LAN — attracting the traffic — while its forwarding
    /// plane silently eats it: the blackhole failure mode escalated
    /// from a sick link to a lying router. Rehabilitated after a
    /// window.
    ByzantineBlackhole,
    /// A compromised gateway rewrites the receiver's LAN to metric 1
    /// with the owner's attestation stripped — a wire-legal prefix
    /// hijack that plain sanitization cannot object to. Run with origin
    /// attestation armed: the proof-less claim is rejected entry by
    /// entry and the hijacked prefix is quarantined from the liar,
    /// while its forwarding plane still eats what transits it until
    /// rehabilitation.
    PrefixHijack,
    /// Flaps, crashes, loss, corruption and a partition, all at once.
    KitchenSink,
}

/// One gauntlet scenario: a chaos archetype plus workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Display name (stable across runs; used in the table).
    pub name: &'static str,
    /// Which fault schedule to generate.
    pub chaos: Chaos,
    /// Bytes to transfer.
    pub transfer_bytes: usize,
    /// Give up after this much virtual time.
    pub limit: Duration,
    /// Whether the transfer is expected to complete (the permanent
    /// partition is expected to abort instead).
    pub expect_complete: bool,
    /// Run with origin attestation enabled and attested guards armed
    /// from cold boot. Off for the classic battery so those runs stay
    /// byte-identical to their unattested baselines.
    pub attested: bool,
}

/// The full scenario battery, in reporting order.
pub fn scenarios() -> Vec<Scenario> {
    // Sized so the transfer (~11 s at T1 rate when undisturbed) is
    // still in flight when every chaos window opens — chaos that lands
    // after the last byte tests nothing.
    let base = |name, chaos| Scenario {
        name,
        chaos,
        transfer_bytes: 2_000_000,
        limit: Duration::from_secs(180),
        expect_complete: true,
        attested: false,
    };
    vec![
        base("calm (control)", Chaos::Calm),
        base("primary-flap", Chaos::PrimaryFlap),
        base("flap-storm", Chaos::FlapStorm),
        base("crash-storm", Chaos::CrashStorm),
        base("partition+heal", Chaos::PartitionHeal),
        // Long limit: give-up needs max_retries+1 consecutive RTOs, and
        // RTO backs off to its 60 s ceiling — the explicit error lands
        // around t≈240 s. The run must outlast it, not race it.
        Scenario {
            expect_complete: false,
            limit: Duration::from_secs(280),
            ..base("partition-forever", Chaos::PartitionForever)
        },
        base("blackhole", Chaos::Blackhole),
        base("loss-burst", Chaos::LossBurst),
        base("corruption-burst", Chaos::CorruptionBurst),
        base("asymmetric-loss", Chaos::AsymmetricLoss),
        base("delay-spike", Chaos::DelaySpike),
        base("double-fault", Chaos::DoubleFault),
        base("silent-cascade", Chaos::SilentCascade),
        base("byzantine-blackhole", Chaos::ByzantineBlackhole),
        Scenario {
            attested: true,
            ..base("prefix-hijack (attested)", Chaos::PrefixHijack)
        },
        Scenario {
            limit: Duration::from_secs(240),
            ..base("kitchen-sink", Chaos::KitchenSink)
        },
    ]
}

/// One run's outcome. Everything is integral, boolean or a
/// deterministic string, so two runs of the same (scenario, seed) can
/// be compared with `==` — the determinism check the gauntlet's
/// reproducibility claim rests on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The transfer finished in time.
    pub completed: bool,
    /// The connection died with an explicit error (reset / give-up).
    pub aborted: bool,
    /// Completed *or* aborted — never left hanging.
    pub clean_exit: bool,
    /// No stream-integrity violations.
    pub integrity_ok: bool,
    /// FNV digest of the delivered stream (equality across runs =
    /// byte-identical delivery).
    pub delivered_digest: u64,
    /// Stream violations + stalls, total.
    pub violations: usize,
    /// Watchdog stalls (no progress with a path up).
    pub stalls: usize,
    /// Completion time in µs, if completed.
    pub duration_us: Option<u64>,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Fault actions the network executed.
    pub faults: u64,
    /// Payload bytes acknowledged end to end.
    pub bytes_acked: u64,
    /// Flight-recorder dump captured at the *first* invariant
    /// violation — the causal neighborhood of the failure, in
    /// virtual-time order. Empty when the run was clean.
    pub flight_dump: String,
}

struct Topo {
    l_ad: usize,
    l_db: usize,
    l_ac1: usize,
    l_c1c2: usize,
    l_c2b: usize,
    h1: usize,
    ga: usize,
    gd: usize,
    gc1: usize,
    gc2: usize,
    /// h2's LAN (address bytes, prefix length) — the byzantine
    /// scenario's lie targets the receiver's subnet.
    victim_lan: ([u8; 4], u8),
}

/// Build the fault schedule for one chaos archetype. Returns the plan
/// plus the *outage windows* — intervals where no end-to-end path is
/// guaranteed, which the progress watchdog excuses. Windows are
/// conservative (they may over-cover), never optimistic.
fn build_plan(
    chaos: Chaos,
    topo: &Topo,
    start: Instant,
    limit: Duration,
    rng: &mut Rng,
) -> (FaultPlan, Vec<(Instant, Instant)>) {
    let s = |secs: u64| start + Duration::from_secs(secs);
    let mut plan = FaultPlan::new();
    let mut outages: Vec<(Instant, Instant)> = Vec::new();
    match chaos {
        Chaos::Calm => {}
        Chaos::PrimaryFlap => {
            // Backup path stays clean, so no outage window.
            plan.link_flap(
                topo.l_ad,
                s(2),
                s(25),
                Duration::from_secs(2),
                Duration::from_secs(1),
                rng,
            );
        }
        Chaos::FlapStorm => {
            for link in [topo.l_ad, topo.l_db, topo.l_ac1, topo.l_c2b] {
                plan.link_flap(
                    link,
                    s(2),
                    s(25),
                    Duration::from_millis(1500),
                    Duration::from_millis(1000),
                    rng,
                );
            }
            // Both paths flap: no guarantee until the storm ends.
            outages.push((s(2), s(25)));
        }
        Chaos::CrashStorm => {
            plan.crash_storm(
                &[topo.gd, topo.gc1, topo.gc2],
                s(1),
                s(20),
                6,
                (Duration::from_secs(2), Duration::from_secs(6)),
                rng,
            );
            // Restarts may land up to 6 s after the last strike.
            outages.push((s(1), s(26)));
        }
        Chaos::PartitionHeal => {
            plan.partition(vec![topo.h1, topo.ga], s(3), Duration::from_secs(15));
            outages.push((s(3), s(18)));
        }
        Chaos::PartitionForever => {
            // Heal scheduled beyond the run limit: it never fires.
            plan.partition(vec![topo.h1, topo.ga], s(3), limit * 2);
            outages.push((s(3), start + limit * 2));
        }
        Chaos::Blackhole => {
            plan.blackhole(topo.l_ad, s(2), Duration::from_secs(8));
            // Routing cannot see the hole; primary-path traffic is
            // gone until restore.
            outages.push((s(2), s(10)));
        }
        Chaos::LossBurst => {
            plan.loss_burst(topo.l_ad, s(2), Duration::from_secs(10), 0.4);
        }
        Chaos::CorruptionBurst => {
            plan.corruption_burst(topo.l_ad, s(2), Duration::from_secs(10), 0.3);
        }
        Chaos::AsymmetricLoss => {
            // Heavy loss on the data direction (gA→gD) only; ACKs and
            // routing updates cross the clean reverse direction, so the
            // link keeps *looking* healthy from gD's side. Windows stay
            // under the 18 s route timeout so one-way update loss can't
            // silently expire routes.
            plan.one_way_loss_burst(topo.l_ad, true, s(2), Duration::from_secs(8), 0.5);
            plan.one_way_loss_burst(topo.l_ad, true, s(14), Duration::from_secs(6), 0.5);
        }
        Chaos::DelaySpike => {
            // +150 ms propagation with 80 ms jitter: segments sent 2 ms
            // apart routinely swap order. Nothing is lost, so no outage.
            plan.delay_spike(
                topo.l_ad,
                s(2),
                Duration::from_secs(6),
                Duration::from_millis(150),
                Duration::from_millis(80),
            );
            plan.delay_spike(
                topo.l_ad,
                s(12),
                Duration::from_secs(6),
                Duration::from_millis(250),
                Duration::from_millis(120),
            );
        }
        Chaos::DoubleFault => {
            plan.push(s(2), FaultAction::NodeCrash { node: topo.gd });
            plan.push(s(20), FaultAction::NodeRestart { node: topo.gd });
            plan.link_flap(
                topo.l_c1c2,
                s(4),
                s(18),
                Duration::from_secs(2),
                Duration::from_secs(1),
                rng,
            );
            outages.push((s(2), s(20)));
        }
        Chaos::SilentCascade => {
            plan.blackhole(topo.l_ad, s(2), Duration::from_secs(10));
            plan.push(s(4), FaultAction::NodeCrash { node: topo.gc1 });
            plan.push(s(14), FaultAction::NodeRestart { node: topo.gc1 });
            outages.push((s(2), s(14)));
        }
        Chaos::ByzantineBlackhole => {
            // gD advertises a metric-0 route for h2's LAN: no honest
            // route can compete, so failover never helps — the window
            // is an outage by construction. Rehabilitation clears the
            // forwarding-plane hole instantly (the route through gD is
            // honest again), so the outage ends with the window plus a
            // second of slack for in-flight frames.
            let (addr, prefix_len) = topo.victim_lan;
            plan.compromise_window(
                topo.gd,
                ByzantineAttack::BlackholeVictim { addr, prefix_len },
                s(2),
                Duration::from_secs(10),
            );
            outages.push((s(2), s(13)));
        }
        Chaos::PrefixHijack => {
            // gD rewrites h2's LAN to metric 1 with the attestation
            // stripped. Attested guards at gA and gB reject the
            // proof-less claim entry by entry — no honest route is ever
            // displaced — but gD sits on the primary path and its
            // compromised forwarding plane still eats the victim's
            // transit traffic, so the window is an outage regardless.
            // Rehabilitation clears the hole; the quarantine the liar
            // earned suppresses its (honest) re-announcements for a
            // while, which only costs path length, not correctness.
            let (addr, prefix_len) = topo.victim_lan;
            plan.compromise_window(
                topo.gd,
                ByzantineAttack::HijackPrefix { addr, prefix_len },
                s(2),
                Duration::from_secs(10),
            );
            outages.push((s(2), s(13)));
        }
        Chaos::KitchenSink => {
            plan.link_flap(
                topo.l_ad,
                s(2),
                s(30),
                Duration::from_secs(2),
                Duration::from_secs(1),
                rng,
            );
            plan.loss_burst(topo.l_c1c2, s(5), Duration::from_secs(15), 0.3);
            plan.corruption_burst(topo.l_db, s(8), Duration::from_secs(10), 0.2);
            plan.crash_storm(
                &[topo.gd],
                s(6),
                s(20),
                2,
                (Duration::from_secs(2), Duration::from_secs(5)),
                rng,
            );
            plan.partition(vec![topo.h1, topo.ga], s(12), Duration::from_secs(8));
            outages.push((s(2), s(45)));
        }
    }
    (plan, outages)
}

/// Everything observable about one gauntlet run: the scored outcome
/// plus the full telemetry dumps. The differential harness asserts two
/// `RunArtifacts` from different scheduler backends are `==` — i.e. the
/// backends are indistinguishable down to every metric line, sampler
/// row, and flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArtifacts {
    /// The scored outcome (includes the delivered-stream digest).
    pub outcome: Outcome,
    /// Deterministic metrics-registry dump.
    pub metrics: String,
    /// Deterministic time-series dump.
    pub series: String,
    /// Full flight-recorder ring at end of run (the outcome's
    /// `flight_dump` is the snapshot at first violation; this is final).
    pub flight: String,
}

/// Run one scenario with one seed, with the standard 60 s stall limit.
pub fn run(scenario: Scenario, seed: u64) -> Outcome {
    run_inner(scenario, seed, Duration::from_secs(60))
}

/// Run one scenario with an explicit progress-watchdog stall limit.
/// Tightening the limit below the worst-case RTO backoff manufactures a
/// stall violation on demand — which is how the flight-recorder capture
/// path is exercised deterministically.
pub fn run_inner(scenario: Scenario, seed: u64, stall_limit: Duration) -> Outcome {
    run_full(
        scenario,
        seed,
        stall_limit,
        SchedulerKind::default(),
        ShardKind::Single,
    )
    .outcome
}

/// Run one scenario on an explicit scheduler backend and keep every
/// observable artifact.
pub fn run_with(scenario: Scenario, seed: u64, kind: SchedulerKind) -> RunArtifacts {
    run_full(scenario, seed, Duration::from_secs(60), kind, ShardKind::Single)
}

/// Run one scenario on an explicit shard mode and keep every observable
/// artifact. The shard-equivalence harness runs the battery at K ∈
/// {1, 2, 4, 8} in both the serial `Sharded` arm and the scoped-thread
/// `Parallel` arm and asserts the artifacts are byte-identical. The
/// gauntlet's invariant apps share state across nodes (the sender and
/// sink both hold the `StreamIntegrity` checker behind `Arc<Mutex>`),
/// which the threaded arm carries fine: handles are only touched
/// inside the owning lane's window, and the barrier joins window
/// threads before cross-lane frames deliver, so outcomes are
/// schedule-independent.
pub fn run_with_shards(scenario: Scenario, seed: u64, shard: ShardKind) -> RunArtifacts {
    run_full(
        scenario,
        seed,
        Duration::from_secs(60),
        SchedulerKind::default(),
        shard,
    )
}

fn run_full(
    scenario: Scenario,
    seed: u64,
    stall_limit: Duration,
    kind: SchedulerKind,
    shard: ShardKind,
) -> RunArtifacts {
    let mut net = Network::with_config(seed, kind, shard);
    let h1 = net.add_host("h1");
    let ga = net.add_gateway("gA");
    let gd = net.add_gateway("gD");
    let gb = net.add_gateway("gB");
    let gc1 = net.add_gateway("gC1");
    let gc2 = net.add_gateway("gC2");
    let h2 = net.add_host("h2");
    if scenario.attested {
        // Attested runs converge on the fast timer profile so the
        // liar's periodic announcements land often enough inside the
        // 10 s compromise window to accumulate quarantine strikes.
        // Identity and guards are armed *before the first connect*:
        // even the build-time triggered announcements go out signed,
        // and the guards screen from the very first frame (cold boot).
        for g in [ga, gd, gb, gc1, gc2] {
            net.node_mut(g).set_dv_config(DvConfig::fast());
        }
        net.enable_attestation();
        net.set_guard_policy(GuardPolicy::attested());
    }
    net.connect(h1, ga, LinkClass::EthernetLan);
    let l_ad = net.connect(ga, gd, LinkClass::T1Terrestrial);
    let l_db = net.connect(gd, gb, LinkClass::T1Terrestrial);
    let l_ac1 = net.connect(ga, gc1, LinkClass::T1Terrestrial);
    let l_c1c2 = net.connect(gc1, gc2, LinkClass::T1Terrestrial);
    let l_c2b = net.connect(gc2, gb, LinkClass::T1Terrestrial);
    let l_bh2 = net.connect(gb, h2, LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(90));
    let start = net.now();
    let lan = net.link_subnet(l_bh2);
    let topo = Topo {
        l_ad,
        l_db,
        l_ac1,
        l_c1c2,
        l_c2b,
        h1,
        ga,
        gd,
        gc1,
        gc2,
        victim_lan: (lan.address().0, lan.prefix_len()),
    };

    // The fault schedule is pure data derived from the seed: two runs
    // with the same (scenario, seed) replay the identical chaos.
    let mut chaos_rng = Rng::from_seed(seed ^ 0xE11_C4A0_5EED ^ scenario.name.len() as u64);
    let (plan, outages) = build_plan(scenario.chaos, &topo, start, scenario.limit, &mut chaos_rng);
    net.attach_fault_plan(plan);

    // Finite patience so a hopeless connection *errors* instead of
    // retrying forever — the gauntlet treats hanging as a failure.
    let config = TcpConfig {
        max_retries: Some(10),
        ..TcpConfig::default()
    };
    let integrity = shared(StreamIntegrity::new());
    let dst = net.node(h2).primary_addr();
    let sink = SinkServer::new(80, config.clone()).with_integrity(Arc::clone(&integrity));
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        scenario.transfer_bytes,
        config,
        start + Duration::from_millis(100),
    )
    .with_integrity(Arc::clone(&integrity));
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));

    // Stall limit: by default comfortably beyond worst-case RTO backoff
    // plus distance-vector reconvergence.
    let mut watchdog = ProgressWatchdog::new(stall_limit, start);
    let step = Duration::from_millis(500);
    let end = start + scenario.limit;
    let mut t = start;
    let mut flight_dump = String::new();
    while t < end {
        t = (t + step).min(end);
        net.run_until(t);
        let path_up = !outages.iter().any(|&(from, to)| t >= from && t < to);
        watchdog.set_path_available(path_up, t);
        watchdog.observe(result.lock().unwrap().bytes_acked, t);
        // First violation: snapshot the flight recorder — the black-box
        // readout of the causal neighborhood.
        let violations_now = integrity.lock().unwrap().violations().len() + watchdog.stalls();
        if flight_dump.is_empty() && violations_now > 0 {
            let detail = integrity
                .lock().unwrap()
                .violations()
                .iter()
                .chain(watchdog.violations())
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            net.record_invariant("e11-end-to-end", false, detail);
            flight_dump = net.flight_dump();
        }
        let done = {
            let r = result.lock().unwrap();
            r.completed_at.is_some() || r.aborted
        };
        if done {
            break;
        }
    }

    let result = result.lock().unwrap();
    let integrity = integrity.lock().unwrap();
    let completed = result.completed_at.is_some();
    let outcome = Outcome {
        completed,
        aborted: result.aborted,
        clean_exit: completed || result.aborted,
        integrity_ok: integrity.is_clean(),
        delivered_digest: integrity.delivered_digest(),
        violations: integrity.violations().len() + watchdog.stalls(),
        stalls: watchdog.stalls(),
        duration_us: result.duration().map(|d| d.total_micros()),
        retransmits: result.retransmits,
        timeouts: result.timeouts,
        faults: net.faults_applied,
        bytes_acked: result.bytes_acked,
        flight_dump,
    };
    RunArtifacts {
        outcome,
        metrics: net.metrics_dump(),
        series: net.series_dump(),
        flight: net.flight_dump(),
    }
}

/// Run the full battery over the seed set and render the table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E11 — Survivability gauntlet: 2 MB transfer under scripted chaos \
         (every row: all seeds; integrity = delivered stream is a prefix of sent)",
        &[
            "scenario",
            "completed",
            "clean exit",
            "integrity",
            "violations",
            "median completion (s)",
            "mean retransmits",
            "mean faults",
        ],
    );
    for scenario in scenarios() {
        let outcomes: Vec<Outcome> = seeds.iter().map(|&seed| run(scenario, seed)).collect();
        let n = outcomes.len();
        let completed = outcomes.iter().filter(|o| o.completed).count();
        let clean = outcomes.iter().filter(|o| o.clean_exit).count();
        let intact = outcomes.iter().filter(|o| o.integrity_ok).count();
        let violations: usize = outcomes.iter().map(|o| o.violations).sum();
        let mut durations: Vec<u64> = outcomes.iter().filter_map(|o| o.duration_us).collect();
        durations.sort_unstable();
        let median = durations
            .get(durations.len() / 2)
            .map(|&us| format!("{:.1}", us as f64 / 1e6))
            .unwrap_or_else(|| "—".into());
        let mean_retx =
            outcomes.iter().map(|o| o.retransmits).sum::<u64>() as f64 / n as f64;
        let mean_faults = outcomes.iter().map(|o| o.faults).sum::<u64>() as f64 / n as f64;
        table.row(vec![
            scenario.name.into(),
            format!("{completed}/{n}"),
            format!("{clean}/{n}"),
            format!("{intact}/{n}"),
            format!("{violations}"),
            median,
            format!("{mean_retx:.1}"),
            format!("{mean_faults:.1}"),
        ]);
    }
    table.note(
        "Expected shape: every scenario except partition-forever completes on every \
         seed; partition-forever aborts with an explicit error (clean exit without \
         completion); integrity holds everywhere; violations stay 0.",
    );
    table
}

/// Randomized soak: `runs` gauntlet runs, each drawing a scenario from
/// the battery and jittering its transfer size, with per-run seeds
/// derived deterministically from `base_seed`. The composition is pure
/// data from the seed — the same `(runs, base_seed)` always soaks the
/// identical sequence — so a soak failure is as replayable as any
/// single scenario.
pub fn soak_table(runs: usize, base_seed: u64) -> Table {
    let battery = scenarios();
    // Per-scenario aggregates: (runs, completed, clean exits, violations).
    let mut agg: Vec<(usize, usize, usize, usize)> = vec![(0, 0, 0, 0); battery.len()];
    for (pick, transfer_bytes, seed) in soak_plan(runs, base_seed) {
        let mut scenario = battery[pick];
        scenario.transfer_bytes = transfer_bytes;
        let outcome = run(scenario, seed);
        let slot = &mut agg[pick];
        slot.0 += 1;
        slot.1 += usize::from(outcome.completed);
        slot.2 += usize::from(outcome.clean_exit);
        slot.3 += outcome.violations;
    }
    let mut table = Table::new(
        format!(
            "E11 soak — {runs} randomized gauntlet runs (scenario and transfer size \
             drawn from seed {base_seed}; every run individually replayable)"
        ),
        &["scenario", "runs", "completed", "clean exit", "violations"],
    );
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for (scenario, &(n, completed, clean, violations)) in battery.iter().zip(&agg) {
        if n == 0 {
            continue;
        }
        totals.0 += n;
        totals.1 += completed;
        totals.2 += clean;
        totals.3 += violations;
        table.row(vec![
            scenario.name.into(),
            format!("{n}"),
            format!("{completed}/{n}"),
            format!("{clean}/{n}"),
            format!("{violations}"),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        format!("{}", totals.0),
        format!("{}/{}", totals.1, totals.0),
        format!("{}/{}", totals.2, totals.0),
        format!("{}", totals.3),
    ]);
    table.note(
        "Expected shape: clean exits everywhere, zero violations; completion only \
         fails on draws of partition-forever, which must abort explicitly instead.",
    );
    table
}

/// The soak composition as pure data: for each of `runs` draws, the
/// scenario index into [`scenarios`], the jittered transfer size
/// (1–3 MB, so chaos windows land at varying points of the transfer's
/// lifetime), and the derived per-run seed. `soak_table` executes
/// exactly this plan, so pinning the plan pins the soak: the same
/// `(runs, base_seed)` always soaks the identical sequence.
pub fn soak_plan(runs: usize, base_seed: u64) -> Vec<(usize, usize, u64)> {
    let battery_len = scenarios().len() as u64;
    let mut compose = Rng::from_seed(base_seed ^ 0x50AC_50AC_50AC_50AC);
    (0..runs)
        .map(|i| {
            let pick = compose.below(battery_len) as usize;
            let bytes = 1_000_000 + compose.below(2_000_000) as usize;
            (pick, bytes, derive_seed(base_seed, i as u64))
        })
        .collect()
}

/// SplitMix64 step: decorrelated per-run seeds from one base seed.
fn derive_seed(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast configuration for the benchmark harness.
pub fn quick(seed: u64) -> Outcome {
    run(
        Scenario {
            name: "quick",
            chaos: Chaos::PrimaryFlap,
            transfer_bytes: 40_000,
            limit: Duration::from_secs(60),
            expect_complete: true,
            attested: false,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> Scenario {
        scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario exists")
    }

    #[test]
    fn battery_has_sixteen_scenarios() {
        assert_eq!(scenarios().len(), 16);
    }

    #[test]
    fn byzantine_blackhole_is_survived_with_integrity() {
        let outcome = run(by_name("byzantine-blackhole"), 11);
        assert!(outcome.completed, "{outcome:?}");
        assert!(outcome.integrity_ok);
        assert_eq!(outcome.violations, 0);
        assert!(
            outcome.retransmits > 0,
            "the lying gateway cost retransmissions: {outcome:?}"
        );
        assert_eq!(outcome.faults, 2, "compromise + rehabilitate");
    }

    #[test]
    fn prefix_hijack_under_attestation_is_survived_on_every_seed() {
        // The gauntlet's integrity bar, held across the whole seed set:
        // the proof-less hijack is rejected (never installed), the liar
        // earns a prefix quarantine, and the stream still completes
        // intact — the only degradation is time.
        for seed in crate::SEEDS {
            let art = run_with(
                by_name("prefix-hijack (attested)"),
                seed,
                SchedulerKind::default(),
            );
            let o = &art.outcome;
            assert!(o.completed, "seed {seed}: {o:?}");
            assert!(o.integrity_ok, "seed {seed}");
            assert_eq!(o.violations, 0, "seed {seed}");
            assert!(
                o.retransmits > 0,
                "seed {seed}: the eaten window cost retransmissions"
            );
            assert!(
                art.metrics.contains("guard_attest_rejected"),
                "seed {seed}: the hijacked entries were rejected by proof, \
                 not by luck:\n{}",
                art.metrics
            );
            assert!(
                art.flight.contains("attest-rejected"),
                "seed {seed}: rejections appear in the black box"
            );
            assert!(
                art.flight.contains("prefix-quarantined"),
                "seed {seed}: repeat offenses earn the prefix holddown:\n{}",
                art.flight
            );
        }
    }

    #[test]
    fn asymmetric_loss_is_survived_with_integrity() {
        let outcome = run(by_name("asymmetric-loss"), 11);
        assert!(outcome.completed, "{outcome:?}");
        assert!(outcome.integrity_ok);
        assert_eq!(outcome.violations, 0);
        assert!(
            outcome.retransmits > 0,
            "one-way loss must cost retransmissions"
        );
    }

    #[test]
    fn delay_spike_reordering_is_absorbed() {
        let outcome = run(by_name("delay-spike"), 11);
        assert!(outcome.completed, "{outcome:?}");
        assert!(outcome.integrity_ok, "reordering never corrupts the stream");
        assert_eq!(outcome.violations, 0);
    }

    #[test]
    fn induced_violation_produces_a_causal_flight_dump() {
        // A 1 s stall limit is far below blackhole RTO backoff: the
        // watchdog must trip once the hole closes and TCP is still
        // backing off, and the outcome must carry the black-box readout.
        let outcome = run_inner(by_name("blackhole"), 11, Duration::from_secs(1));
        assert!(outcome.violations > 0, "stall manufactured: {outcome:?}");
        let dump = &outcome.flight_dump;
        assert!(!dump.is_empty(), "dump captured at the violation");
        assert!(dump.contains("fault: degrade link"), "fault events: {dump}");
        assert!(dump.contains("rto-fired"), "RTO events: {dump}");
        assert!(
            dump.contains("INVARIANT TRIPPED"),
            "the trip itself is the last entry: {dump}"
        );
        // Virtual timestamps are non-decreasing: the ring records only
        // forward in time.
        let times: Vec<u64> = dump
            .lines()
            .filter_map(|l| l.trim_start().split("us ").next()?.trim().parse().ok())
            .collect();
        assert!(times.len() >= 3, "parsed timestamps from: {dump}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "time order: {dump}");
        // And the same induced run replays to the identical dump.
        let again = run_inner(by_name("blackhole"), 11, Duration::from_secs(1));
        assert_eq!(outcome, again, "induced violation replays bit-for-bit");
    }

    #[test]
    fn soak_plan_is_pinned_to_the_base_seed() {
        // The soak's reproducibility claim: composition is pure data
        // from (runs, base_seed).
        let a = soak_plan(50, 11);
        assert_eq!(a, soak_plan(50, 11), "same base seed, same triples");
        assert_ne!(a, soak_plan(50, 12), "different base seed diverges");
        // A shorter soak is a prefix of a longer one with the same seed,
        // so growing N never invalidates earlier repro reports.
        assert_eq!(a[..10], soak_plan(10, 11)[..]);
        let n = scenarios().len();
        for &(pick, bytes, _) in &a {
            assert!(pick < n, "scenario index in range");
            assert!((1_000_000..3_000_000).contains(&bytes), "1–3 MB jitter");
        }
        let distinct: std::collections::HashSet<u64> = a.iter().map(|t| t.2).collect();
        assert_eq!(distinct.len(), a.len(), "per-run seeds decorrelated");
    }

    #[test]
    fn soak_is_deterministic() {
        let a = soak_table(3, 99).to_string();
        let b = soak_table(3, 99).to_string();
        assert_eq!(a, b);
        assert!(a.contains("TOTAL"));
    }

    #[test]
    fn calm_control_completes_clean() {
        let outcome = run(by_name("calm (control)"), 11);
        assert!(outcome.completed, "{outcome:?}");
        assert!(outcome.integrity_ok);
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.faults, 0);
    }

    #[test]
    fn blackhole_is_survived_with_integrity() {
        let outcome = run(by_name("blackhole"), 11);
        assert!(outcome.completed, "{outcome:?}");
        assert!(outcome.integrity_ok);
        assert!(outcome.retransmits > 0, "the hole cost retransmissions");
    }

    #[test]
    fn permanent_partition_aborts_cleanly() {
        let outcome = run(by_name("partition-forever"), 11);
        assert!(!outcome.completed, "{outcome:?}");
        assert!(outcome.aborted, "explicit error, not a hang: {outcome:?}");
        assert!(outcome.clean_exit);
        assert!(outcome.integrity_ok, "partial delivery still intact");
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let scenario = by_name("primary-flap");
        let a = run(scenario, 23);
        let b = run(scenario, 23);
        assert_eq!(a, b, "fault plan and traffic must replay identically");
    }

    #[test]
    fn quick_outcome_sane() {
        let outcome = quick(1);
        assert!(outcome.clean_exit);
    }
}
