//! E2 — Types of service: why TCP and IP had to split (paper §4, goal 2).
//!
//! **Claim.** "It was felt that ... reliable, sequenced delivery ...
//! \[is\] too restrictive ... the most important example ... is real time
//! delivery of digitized speech ... it is preferable to lose an
//! occasional packet than to wait for retransmission." Hence the TCP/IP
//! split and UDP.
//!
//! **Experiment.** A 64 kbit/s voice stream (160-byte frames every
//! 20 ms) crosses a lossy T1 dumbbell twice: once over UDP (the
//! architecture's answer) and once inside a TCP stream (the rejected
//! single-service world). We report per-frame delivery-latency
//! percentiles and loss. UDP loses a few frames and keeps its latency;
//! TCP loses none but stalls every frame behind each retransmission
//! (head-of-line blocking), which for voice is strictly worse.

use crate::table::Table;
use catenet_core::app::{CbrSink, CbrSource, TcpVoiceSink, TcpVoiceSource};
use catenet_core::iface::Framing;
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_sim::{Duration, LinkParams, Summary};
use std::sync::Arc;

/// Measured delivery behavior of one transport arm.
#[derive(Debug, Clone)]
pub struct VoiceReport {
    /// Frames handed to the transport.
    pub sent: u64,
    /// Frames delivered to the listener.
    pub received: u64,
    /// Delivery latency distribution (ms).
    pub latency_ms: Summary,
}

impl VoiceReport {
    /// Fraction of frames lost (never delivered).
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - (self.received as f64 / self.sent as f64)
    }
}

fn lossy_t1(loss: f64) -> LinkParams {
    LinkParams {
        loss,
        ..catenet_sim::LinkClass::T1Terrestrial.params()
    }
}

fn voice_net(seed: u64, loss: f64) -> (Network, usize, usize) {
    let mut net = Network::new(seed);
    let h1 = net.add_host("talker");
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    let h2 = net.add_host("listener");
    net.connect(h1, g1, catenet_sim::LinkClass::EthernetLan);
    net.connect_with(g1, g2, lossy_t1(loss), Framing::RawIp);
    net.connect(g2, h2, catenet_sim::LinkClass::EthernetLan);
    net.converge_routing(Duration::from_secs(60));
    (net, h1, h2)
}

/// Voice over UDP: the architecture's datagram service.
pub fn run_udp(seed: u64, loss: f64, seconds: u64) -> VoiceReport {
    let (mut net, h1, h2) = voice_net(seed, loss);
    let dst = net.node(h2).primary_addr();
    let start = net.now();
    let sink = CbrSink::new(5004);
    let latencies = Arc::clone(&sink.latencies_ms);
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let source = CbrSource::new(
        Endpoint::new(dst, 5004),
        Duration::from_millis(20),
        160,
        start + Duration::from_millis(100),
        start + Duration::from_secs(seconds),
    );
    let sent = Arc::clone(&source.sent);
    net.attach_app(h1, Box::new(source));
    net.run_until(start + Duration::from_secs(seconds + 3));
    let sent = *sent.lock().unwrap();
    let received = *received.lock().unwrap();
    let latency_ms = latencies.lock().unwrap().clone();
    VoiceReport {
        sent,
        received,
        latency_ms,
    }
}

/// Voice inside TCP: the rejected single-service world.
pub fn run_tcp(seed: u64, loss: f64, seconds: u64) -> VoiceReport {
    let (mut net, h1, h2) = voice_net(seed, loss);
    let dst = net.node(h2).primary_addr();
    let start = net.now();
    let config = TcpConfig {
        nagle: false, // give TCP its best shot at low latency
        delayed_ack: None,
        ..TcpConfig::default()
    };
    let sink = TcpVoiceSink::new(5005, 160, config.clone());
    let latencies = Arc::clone(&sink.latencies_ms);
    let received = Arc::clone(&sink.received);
    net.attach_app(h2, Box::new(sink));
    let source = TcpVoiceSource::new(
        Endpoint::new(dst, 5005),
        Duration::from_millis(20),
        160,
        config,
        start + Duration::from_millis(100),
        start + Duration::from_secs(seconds),
    );
    let sent = Arc::clone(&source.sent);
    net.attach_app(h1, Box::new(source));
    net.run_until(start + Duration::from_secs(seconds + 10));
    let sent = *sent.lock().unwrap();
    let received = *received.lock().unwrap();
    let latency_ms = latencies.lock().unwrap().clone();
    VoiceReport {
        sent,
        received,
        latency_ms,
    }
}

/// Render the paper table across loss rates.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E2 — Types of service: 64 kbit/s voice over UDP vs TCP (T1 path, 20 s of speech)",
        &[
            "link loss",
            "transport",
            "frames lost",
            "p50 latency (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "max (ms)",
        ],
    );
    for loss in [0.01, 0.03] {
        for (name, runner) in [
            ("UDP (paper)", run_udp as fn(u64, f64, u64) -> VoiceReport),
            ("TCP (baseline)", run_tcp as fn(u64, f64, u64) -> VoiceReport),
        ] {
            // Pool latencies across seeds.
            let mut pooled = Summary::new();
            let mut sent = 0u64;
            let mut received = 0u64;
            for &seed in seeds {
                let report = runner(seed, loss, 20);
                sent += report.sent;
                received += report.received;
                for &v in report.latency_ms.values() {
                    pooled.record(v);
                }
            }
            let loss_pct = 100.0 * (1.0 - received as f64 / sent.max(1) as f64);
            table.row(vec![
                format!("{:.0}%", loss * 100.0),
                name.into(),
                format!("{loss_pct:.2}%"),
                format!("{:.1}", pooled.median()),
                format!("{:.1}", pooled.percentile(0.95)),
                format!("{:.1}", pooled.percentile(0.99)),
                format!("{:.1}", pooled.max()),
            ]);
        }
    }
    table.note(
        "Paper's claim: reliable sequenced delivery is the wrong service for speech — \
         better to lose a frame than to wait for its retransmission. Expected shape: \
         UDP loses ≈ the link loss rate but keeps a flat latency tail; TCP loses \
         nothing but its p95/p99 latency explodes with head-of-line blocking.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> (VoiceReport, VoiceReport) {
    (run_udp(seed, 0.02, 5), run_tcp(seed, 0.02, 5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_keeps_latency_flat_and_loses_a_little() {
        let report = run_udp(11, 0.02, 10);
        assert!(report.sent >= 490, "sent {}", report.sent);
        let loss = report.loss_fraction();
        assert!(loss > 0.0 && loss < 0.10, "loss {loss}");
        // p99 within a couple frame-times of the median: no HoL blocking.
        assert!(
            report.latency_ms.percentile(0.99) < report.latency_ms.median() + 50.0,
            "p99 {} vs median {}",
            report.latency_ms.percentile(0.99),
            report.latency_ms.median()
        );
    }

    #[test]
    fn tcp_delivers_everything_but_stalls() {
        let udp = run_udp(11, 0.03, 10);
        let tcp = run_tcp(11, 0.03, 10);
        // TCP delivers (nearly) all frames...
        assert!(
            tcp.received as f64 >= tcp.sent as f64 * 0.98,
            "tcp delivered {}/{}",
            tcp.received,
            tcp.sent
        );
        // ...but its tail latency is far worse than UDP's.
        assert!(
            tcp.latency_ms.percentile(0.99) > udp.latency_ms.percentile(0.99) * 2.0,
            "tcp p99 {} vs udp p99 {}",
            tcp.latency_ms.percentile(0.99),
            udp.latency_ms.percentile(0.99)
        );
    }
}
