//! # catenet-bench
//!
//! The experiment harness. Clark's 1988 paper has no tables or figures —
//! its evaluation is a prioritized list of architectural claims — so
//! each module here operationalizes one claim as a quantitative
//! experiment (the mapping is in `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! | Module | Claim measured |
//! |--------|----------------|
//! | [`e1_survivability`] | fate-sharing vs in-network connection state under gateway crash |
//! | [`e2_type_of_service`] | reliable-stream vs datagram service for voice-like traffic |
//! | [`e3_variety`] | fragmentation across heterogeneous MTUs, and its loss amplification |
//! | [`e4_distributed_mgmt`] | distance-vector convergence across administrative regions |
//! | [`e5_cost`] | end-to-end vs hop-by-hop retransmission; header overhead |
//! | [`e6_host_cost`] | per-packet and per-connection processing cost of the stack |
//! | [`e7_accounting`] | gateway accounting error under end-to-end retransmission |
//! | [`e8_soft_state`] | soft-state flow tables rebuilding after gateway loss |
//! | [`e9_byte_sequencing`] | TCP byte sequencing vs packet sequencing |
//! | [`e10_realizations`] | one architecture across LAN / terrestrial / satellite realizations |
//! | [`e11_gauntlet`] | end-to-end invariants under scripted chaos (the survivability gauntlet) |
//! | [`e12_reconvergence`] | per-heal routing reconvergence, measured and bounded |
//! | [`e13_scale`] | event-loop scale: heap vs timer-wheel scheduler at 50–400 gateways |
//! | [`e14_routeguard`] | byzantine blast radius with and without the route-guard defense |
//! | [`e15_fastpath`] | per-packet buffer cost: pooled zero-copy path vs allocate-and-copy |
//! | [`e16_accountability`] | crash-reconcilable usage reports, 10⁵-flow churn, CRC32C vs checksum escapes |
//! | [`e17_parallel`] | sharded parallel execution: speedup vs shard count, dumps byte-identical at every K |
//!
//! [`ablations`] additionally turns individual design choices *off* —
//! congestion control, split horizon, Nagle, source quench — and
//! measures what each was buying (tables A1–A4).
//!
//! Every experiment is deterministic given its seed list; `cargo run
//! --release --bin reproduce` regenerates every table in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
pub mod channel;
pub mod e1_survivability;
pub mod e10_realizations;
pub mod e11_gauntlet;
pub mod e12_reconvergence;
pub mod e13_scale;
pub mod e14_routeguard;
pub mod e15_fastpath;
pub mod e16_accountability;
pub mod e17_parallel;
pub mod e2_type_of_service;
pub mod e3_variety;
pub mod e4_distributed_mgmt;
pub mod e5_cost;
pub mod e6_host_cost;
pub mod e7_accounting;
pub mod e8_soft_state;
pub mod e9_byte_sequencing;
pub mod table;

pub use table::Table;

/// The default seed set experiments average over.
pub const SEEDS: [u64; 5] = [11, 23, 37, 41, 53];
