//! E9 — Byte sequencing vs packet sequencing (paper, "TCP" section).
//!
//! **Claim.** "TCP was originally designed to \[sequence\] packets ...
//! \[switching to bytes\] permits the packets to be broken up and
//! repacketized ... and permits a number of small packets to be gathered
//! together into one." The paper recounts this as a hard-won design
//! decision; this experiment prices the alternative.
//!
//! **Experiment.** Two workloads cross an identical seeded lossy channel
//! (see [`crate::channel`]) under both transports:
//!
//! - **tinygrams**: many small application writes (remote-login style).
//!   Byte sequencing (with Nagle) coalesces them; packet sequencing must
//!   carry one packet per write forever.
//! - **lossy bulk**: fixed-size writes under loss. Byte sequencing may
//!   repacketize on retransmission; packet sequencing retransmits the
//!   original packets only.

use crate::channel::{run_pktseq, run_tcp, ChannelParams, TransferReport};
use crate::table::Table;

/// Both transports' reports for one workload.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// TCP (byte sequencing).
    pub tcp: TransferReport,
    /// The packet-sequenced baseline.
    pub pktseq: TransferReport,
}

/// Tinygram workload: `count` writes of `size` bytes.
pub fn run_tinygrams(seed: u64, count: usize, size: usize, loss: f64) -> Comparison {
    let writes: Vec<Vec<u8>> = (0..count).map(|i| vec![(i % 251) as u8; size]).collect();
    let params = ChannelParams {
        loss,
        seed,
        ..ChannelParams::default()
    };
    Comparison {
        tcp: run_tcp(params, &writes, true, 536),
        pktseq: run_pktseq(params, &writes, 8),
    }
}

/// Bulk workload under loss: `count` writes of 512 bytes.
pub fn run_lossy_bulk(seed: u64, count: usize, loss: f64) -> Comparison {
    let writes: Vec<Vec<u8>> = (0..count).map(|i| vec![(i % 251) as u8; 512]).collect();
    let params = ChannelParams {
        loss,
        seed,
        ..ChannelParams::default()
    };
    Comparison {
        tcp: run_tcp(params, &writes, true, 536),
        pktseq: run_pktseq(params, &writes, 8),
    }
}

/// Render the paper table.
pub fn default_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "E9 — Byte vs packet sequencing over an identical lossy channel (40 ms RTT)",
        &[
            "workload",
            "transport",
            "segments sent",
            "wire kB",
            "retransmits",
            "completion (s)",
        ],
    );
    let mut emit = |workload: &str, label: &str, reports: &[TransferReport]| {
        let n = reports.len() as f64;
        let mean_u = |f: fn(&TransferReport) -> u64| reports.iter().map(f).sum::<u64>() as f64 / n;
        let mean_t = reports
            .iter()
            .map(|r| r.finished_at.secs_f64())
            .sum::<f64>()
            / n;
        let all_done = reports.iter().all(|r| r.completed);
        table.row(vec![
            workload.into(),
            label.into(),
            format!("{:.0}", mean_u(|r| r.segs_sent)),
            format!("{:.1}", mean_u(|r| r.wire_bytes) / 1000.0),
            format!("{:.0}", mean_u(|r| r.retransmits)),
            if all_done {
                format!("{mean_t:.2}")
            } else {
                "DNF".into()
            },
        ]);
    };
    // Tinygrams, lossless: pure coalescing comparison.
    let tiny: Vec<Comparison> = seeds
        .iter()
        .map(|&seed| run_tinygrams(seed, 400, 8, 0.0))
        .collect();
    emit(
        "400 × 8 B writes, 0% loss",
        "TCP bytes (paper)",
        &tiny.iter().map(|c| c.tcp).collect::<Vec<_>>(),
    );
    emit(
        "400 × 8 B writes, 0% loss",
        "pkt-seq (baseline)",
        &tiny.iter().map(|c| c.pktseq).collect::<Vec<_>>(),
    );
    // Bulk under loss: retransmission efficiency.
    for loss in [0.05, 0.15] {
        let bulk: Vec<Comparison> = seeds
            .iter()
            .map(|&seed| run_lossy_bulk(seed, 200, loss))
            .collect();
        let label = format!("200 × 512 B writes, {:.0}% loss", loss * 100.0);
        emit(
            &label,
            "TCP bytes (paper)",
            &bulk.iter().map(|c| c.tcp).collect::<Vec<_>>(),
        );
        emit(
            &label,
            "pkt-seq (baseline)",
            &bulk.iter().map(|c| c.pktseq).collect::<Vec<_>>(),
        );
    }
    table.note(
        "Paper's claim: byte sequencing 'permits a number of small packets to be \
         gathered together into one' and repacketization on retransmit. Expected \
         shape: on tinygrams TCP sends far fewer segments and wire bytes; under loss \
         TCP's window+coalescing finish faster at comparable wire cost.",
    );
    table
}

/// Small configuration for criterion.
pub fn quick(seed: u64) -> Comparison {
    run_tinygrams(seed, 100, 8, 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sequencing_wins_tinygrams() {
        let c = run_tinygrams(11, 300, 8, 0.0);
        assert!(c.tcp.completed && c.pktseq.completed);
        assert!(
            c.tcp.segs_sent * 4 < c.pktseq.segs_sent,
            "tcp {} vs pktseq {} segments",
            c.tcp.segs_sent,
            c.pktseq.segs_sent
        );
        assert!(c.tcp.wire_bytes < c.pktseq.wire_bytes);
    }

    #[test]
    fn both_complete_lossy_bulk() {
        let c = run_lossy_bulk(11, 100, 0.10);
        assert!(c.tcp.completed, "tcp finished");
        assert!(c.pktseq.completed, "pktseq finished");
        assert!(c.tcp.retransmits > 0 && c.pktseq.retransmits > 0);
    }
}
