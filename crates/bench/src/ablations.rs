//! Ablations: turn the architecture's individual design choices off,
//! one at a time, and measure what each one was buying.
//!
//! | ID | Choice ablated | Where the paper argues for it |
//! |----|----------------|-------------------------------|
//! | A1 | Congestion control (Tahoe/Reno vs none) | §7 admits end-to-end retransmission is dangerous; Jacobson's fix shipped the same year |
//! | A2 | Split horizon + poisoned reverse | §6's distributed routing only works if it converges — this is the counting-to-infinity demo |
//! | A3 | Nagle's algorithm | the "TCP" section's small-packet coalescing argument |
//! | A4 | ICMP source quench | RFC 792's congestion signal, the era's only in-network feedback |

use crate::channel::{run_tcp, ChannelParams};
use crate::table::Table;
use catenet_core::app::{BulkSender, SinkServer};
use catenet_core::iface::Framing;
use catenet_core::{Endpoint, Network, TcpConfig};
use catenet_routing::{DvConfig, DvEngine, ExportPolicy, INFINITY_METRIC};
use catenet_sim::{Duration, Instant, LinkClass, LinkParams};
use catenet_tcp::CongestionAlgo;
use catenet_wire::{Ipv4Address, Ipv4Cidr};


// ===================================================================
// A1 — congestion collapse
// ===================================================================

/// Aggregate outcome of several senders sharing one bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct CollapseReport {
    /// Transfers that completed within the limit.
    pub completed: usize,
    /// Total senders.
    pub senders: usize,
    /// Aggregate goodput over the run (bits/second).
    pub aggregate_goodput_bps: f64,
    /// Fraction of frames offered to the bottleneck that were delivered
    /// (1 − drop rate): the "useful work" of the shared link.
    pub link_efficiency: f64,
    /// Total retransmitted segments across senders.
    pub retransmits: u64,
}

/// `senders` hosts each push `bytes` through one 56 kb/s trunk with a
/// short queue, all running the given congestion algorithm.
pub fn run_collapse(seed: u64, senders: usize, bytes: usize, algo: CongestionAlgo) -> CollapseReport {
    let mut net = Network::new(seed);
    let g1 = net.add_gateway("g1");
    let g2 = net.add_gateway("g2");
    net.connect_with(
        g1,
        g2,
        LinkParams {
            queue_limit: 8,
            loss: 0.0,
            corruption: 0.0,
            ..LinkClass::ArpanetTrunk.params()
        },
        Framing::RawIp,
    );
    let mut results = Vec::new();
    let mut receivers = Vec::new();
    for i in 0..senders {
        let src = net.add_host(format!("src{i}"));
        let dst = net.add_host(format!("dst{i}"));
        net.connect(src, g1, LinkClass::EthernetLan);
        net.connect(dst, g2, LinkClass::EthernetLan);
        receivers.push((src, dst));
    }
    net.converge_routing(Duration::from_secs(60));
    let start = net.now();
    let config = TcpConfig {
        congestion: algo,
        delayed_ack: None,
        ..TcpConfig::default()
    };
    for &(src, dst) in &receivers {
        let dst_addr = net.node(dst).primary_addr();
        let sink = SinkServer::new(80, config.clone());
        net.attach_app(dst, Box::new(sink));
        let sender = BulkSender::new(
            Endpoint::new(dst_addr, 80),
            bytes,
            config.clone(),
            start + Duration::from_millis(100),
        );
        results.push(sender.result_handle());
        net.attach_app(src, Box::new(sender));
    }
    let limit = Duration::from_secs(600);
    net.run_until(start + limit);

    let completed = results
        .iter()
        .filter(|r| r.lock().unwrap().completed_at.is_some())
        .count();
    let goodput_bytes: usize = results
        .iter()
        .map(|r| if r.lock().unwrap().completed_at.is_some() { bytes } else { 0 })
        .sum();
    let elapsed = results
        .iter()
        .filter_map(|r| r.lock().unwrap().completed_at)
        .map(|t| t.duration_since(start).secs_f64())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let retransmits = results.iter().map(|r| r.lock().unwrap().retransmits).sum();
    // Efficiency of the network's work: frames delivered over frames
    // *presented* (including the ones the queue turned away).
    let (offered, delivered, _, overflowed) = net.link_totals();
    let presented = offered + overflowed;
    CollapseReport {
        completed,
        senders,
        aggregate_goodput_bps: goodput_bytes as f64 * 8.0 / elapsed,
        link_efficiency: if presented == 0 {
            0.0
        } else {
            delivered as f64 / presented as f64
        },
        retransmits,
    }
}

/// Render the A1 table.
pub fn collapse_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "A1 — Congestion-control ablation: 4 senders share a 56 kb/s trunk (40 kB each)",
        &[
            "algorithm",
            "completed",
            "aggregate goodput (kb/s)",
            "link efficiency",
            "total retransmits",
        ],
    );
    for (name, algo) in [
        ("none (pre-1988 TCP)", CongestionAlgo::None),
        ("Tahoe (VJ 1988)", CongestionAlgo::Tahoe),
        ("Reno (+fast recovery)", CongestionAlgo::Reno),
    ] {
        let mut completed = 0;
        let mut goodput = 0.0;
        let mut efficiency = 0.0;
        let mut retransmits = 0;
        for &seed in seeds {
            let report = run_collapse(seed, 4, 40_000, algo);
            completed += report.completed;
            goodput += report.aggregate_goodput_bps;
            efficiency += report.link_efficiency;
            retransmits += report.retransmits;
        }
        let n = seeds.len() as f64;
        table.row(vec![
            name.into(),
            format!("{completed}/{}", 4 * seeds.len()),
            format!("{:.1}", goodput / n / 1000.0),
            format!("{:.2}", efficiency / n),
            format!("{:.0}", retransmits as f64 / n),
        ]);
    }
    table.note(
        "Clark's paper predates Jacobson's fix by months and §7 frankly admits the \
         danger. Expected shape: without congestion control the shared trunk drowns \
         in retransmissions (low link efficiency, massive retransmit counts); Tahoe \
         and Reno keep the link doing useful work.",
    );
    table
}

// ===================================================================
// A2 — counting to infinity
// ===================================================================

/// Outcome of the route-withdrawal propagation race.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePathology {
    /// Advertisement rounds until the far gateway marks the dead route
    /// unreachable (or `None` if it never did within the bound).
    pub rounds_to_purge: Option<u32>,
    /// Total route-entry updates exchanged while converging.
    pub entries_exchanged: u64,
}

/// Two gateways in a line learn a stub prefix, the stub dies, and we
/// count advertisement rounds until both agree it is unreachable.
/// With split horizon off, the gateways reassure each other and count
/// metrics upward toward infinity — the classic DV pathology.
pub fn run_count_to_infinity(split_horizon: bool) -> ConvergencePathology {
    let mut config = DvConfig::fast();
    config.split_horizon = split_horizon;
    config.poisoned_reverse = split_horizon;
    let mut a = DvEngine::new(config.clone());
    let mut b = DvEngine::new(config);
    let stub: Ipv4Cidr = "10.9.0.0/16".parse().expect("valid");
    let a_addr: Ipv4Address = "10.0.0.1".parse().expect("valid");
    let b_addr: Ipv4Address = "10.0.0.2".parse().expect("valid");
    // a is attached to the stub (iface 0) and to b (iface 1).
    a.add_connected(stub, 0);
    let mut now = Instant::ZERO;
    let mut entries_exchanged = 0u64;
    // Converge: a tells b.
    for _ in 0..4 {
        let ads = a.advertisement_for(1, &ExportPolicy::All, true);
        entries_exchanged += ads.len() as u64;
        b.handle_update(a_addr, 0, &ads, now);
        let ads = b.advertisement_for(0, &ExportPolicy::All, true);
        entries_exchanged += ads.len() as u64;
        a.handle_update(b_addr, 1, &ads, now);
        now += Duration::from_secs(1);
    }
    assert!(b.lookup("10.9.0.1".parse().expect("valid")).is_some());
    // The stub dies. Crucially, b's periodic advertisement goes out
    // FIRST each round (before it has heard the bad news) — the timing
    // race that makes counting-to-infinity possible at all.
    a.remove_connected(&stub);
    let mut rounds_to_purge = None;
    for round in 1..=64u32 {
        let ads = b.advertisement_for(0, &ExportPolicy::All, true);
        entries_exchanged += ads.len() as u64;
        a.handle_update(b_addr, 1, &ads, now);
        let ads = a.advertisement_for(1, &ExportPolicy::All, true);
        entries_exchanged += ads.len() as u64;
        b.handle_update(a_addr, 0, &ads, now);
        now += Duration::from_secs(1);
        let a_dead = a.lookup("10.9.0.1".parse().expect("valid")).is_none();
        let b_dead = b.lookup("10.9.0.1".parse().expect("valid")).is_none();
        let a_purged = a
            .routes()
            .find(|(p, _)| **p == stub.network())
            .is_none_or(|(_, r)| r.metric >= INFINITY_METRIC);
        let b_purged = b
            .routes()
            .find(|(p, _)| **p == stub.network())
            .is_none_or(|(_, r)| r.metric >= INFINITY_METRIC);
        if a_dead && b_dead && a_purged && b_purged {
            rounds_to_purge = Some(round);
            break;
        }
    }
    ConvergencePathology {
        rounds_to_purge,
        entries_exchanged,
    }
}

/// Render the A2 table.
pub fn count_to_infinity_table() -> Table {
    let mut table = Table::new(
        "A2 — Split-horizon ablation: advertisement rounds to purge a dead route (2 gateways)",
        &["split horizon + poison", "rounds to purge", "route entries exchanged"],
    );
    for (label, on) in [("ON (the design)", true), ("OFF (ablated)", false)] {
        let report = run_count_to_infinity(on);
        table.row(vec![
            label.into(),
            report
                .rounds_to_purge
                .map(|r| r.to_string())
                .unwrap_or_else(|| "never (>64)".into()),
            report.entries_exchanged.to_string(),
        ]);
    }
    table.note(
        "Without split horizon the two gateways mutually reassure each other about the \
         dead prefix and count metrics up to 16 one advertisement at a time — the \
         classic counting-to-infinity pathology that makes infinity=16 necessary at \
         all. Expected shape: ON purges in ~1 round; OFF needs ≈ INFINITY rounds and \
         proportionally more chatter.",
    );
    table
}

// ===================================================================
// A3 — Nagle's algorithm
// ===================================================================

/// Render the A3 table.
pub fn nagle_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "A3 — Nagle ablation: 400 × 8 B interactive writes over a 40 ms-RTT channel",
        &["Nagle", "segments", "wire kB", "completion (s)"],
    );
    for (label, nagle) in [("ON (the design)", true), ("OFF (ablated)", false)] {
        let mut segs = 0u64;
        let mut bytes = 0u64;
        let mut time = 0.0f64;
        for &seed in seeds {
            let writes: Vec<Vec<u8>> = (0..400).map(|i| vec![(i % 251) as u8; 8]).collect();
            let report = run_tcp(
                ChannelParams {
                    seed,
                    // A fast typist: one 8-byte write every 5 ms.
                    write_interval: Duration::from_millis(5),
                    ..ChannelParams::default()
                },
                &writes,
                nagle,
                536,
            );
            segs += report.segs_sent;
            bytes += report.wire_bytes;
            time += report.finished_at.secs_f64();
        }
        let n = seeds.len() as f64;
        table.row(vec![
            label.into(),
            format!("{:.0}", segs as f64 / n),
            format!("{:.1}", bytes as f64 / n / 1000.0),
            format!("{:.2}", time / n),
        ]);
    }
    table.note(
        "Nagle's algorithm (1984) is the mechanized form of the paper's small-packet \
         coalescing argument. Expected shape: ON collapses hundreds of tinygrams into \
         a handful of segments at a modest latency cost; OFF ships one header-dominated \
         packet per keystroke.",
    );
    table
}

// ===================================================================
// A4 — source quench
// ===================================================================

/// Outcome of the overload scenario with/without the congestion signal.
#[derive(Debug, Clone, Copy)]
pub struct QuenchReport {
    /// Transfer completed.
    pub completed: bool,
    /// Completion time in seconds (if completed).
    pub duration_s: Option<f64>,
    /// Frames the bottleneck tail-dropped.
    pub queue_drops: u64,
    /// Quenches the gateway emitted.
    pub quenches: u64,
}

/// One sender over a tiny-queue 56 kb/s trunk, with the gateway's
/// source-quench generation enabled or ablated.
pub fn run_quench(seed: u64, quench_enabled: bool) -> QuenchReport {
    let mut net = Network::new(seed);
    let h1 = net.add_host("h1");
    let g = net.add_gateway("g");
    let h2 = net.add_host("h2");
    net.connect(h1, g, LinkClass::EthernetLan);
    net.connect_with(
        g,
        h2,
        LinkParams {
            queue_limit: 4,
            loss: 0.0,
            corruption: 0.0,
            ..LinkClass::ArpanetTrunk.params()
        },
        Framing::RawIp,
    );
    net.node_mut(g).source_quench_enabled = quench_enabled;
    net.converge_routing(Duration::from_secs(30));
    let start = net.now();
    let dst = net.node(h2).primary_addr();
    let config = TcpConfig {
        delayed_ack: None,
        ..TcpConfig::default()
    };
    let sink = SinkServer::new(80, config.clone());
    net.attach_app(h2, Box::new(sink));
    let sender = BulkSender::new(
        Endpoint::new(dst, 80),
        60_000,
        config,
        start + Duration::from_millis(50),
    );
    let result = sender.result_handle();
    net.attach_app(h1, Box::new(sender));
    net.run_for(Duration::from_secs(300));
    let (_, _, _, overflowed) = net.link_totals();
    let result = result.lock().unwrap();
    QuenchReport {
        completed: result.completed_at.is_some(),
        duration_s: result.duration().map(|d| d.secs_f64()),
        queue_drops: overflowed,
        quenches: net.node(g).stats.quench_sent,
    }
}

/// Render the A4 table.
pub fn quench_table(seeds: &[u64]) -> Table {
    let mut table = Table::new(
        "A4 — Source-quench ablation: 60 kB through a 4-packet-queue 56 kb/s trunk",
        &[
            "gateway quench",
            "completed",
            "mean completion (s)",
            "mean queue drops",
            "mean quenches sent",
        ],
    );
    for (label, on) in [("ON (RFC 792)", true), ("OFF (ablated)", false)] {
        let reports: Vec<QuenchReport> = seeds.iter().map(|&s| run_quench(s, on)).collect();
        let n = reports.len() as f64;
        let completed = reports.iter().filter(|r| r.completed).count();
        let mean_time = reports.iter().filter_map(|r| r.duration_s).sum::<f64>()
            / reports.iter().filter(|r| r.duration_s.is_some()).count().max(1) as f64;
        table.row(vec![
            label.into(),
            format!("{completed}/{}", reports.len()),
            format!("{mean_time:.1}"),
            format!("{:.1}", reports.iter().map(|r| r.queue_drops).sum::<u64>() as f64 / n),
            format!("{:.1}", reports.iter().map(|r| r.quenches).sum::<u64>() as f64 / n),
        ]);
    }
    table.note(
        "Source quench was the 1988 architecture's only explicit congestion signal. \
         Expected shape: with quench ON the sender backs off before the RTO, dropping \
         fewer frames at the bottleneck; completion time is similar or better (Tahoe's \
         own loss response already covers much of the benefit — which is WHY quench \
         was eventually retired by RFC 6633).",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_without_cc_is_worse() {
        let none = run_collapse(11, 4, 30_000, CongestionAlgo::None);
        let tahoe = run_collapse(11, 4, 30_000, CongestionAlgo::Tahoe);
        assert!(
            none.retransmits > tahoe.retransmits * 2,
            "none {} vs tahoe {} retransmits",
            none.retransmits,
            tahoe.retransmits
        );
        assert!(
            tahoe.link_efficiency > none.link_efficiency,
            "tahoe {} vs none {}",
            tahoe.link_efficiency,
            none.link_efficiency
        );
        assert_eq!(tahoe.completed, 4, "Tahoe finishes everything");
    }

    #[test]
    fn counting_to_infinity_without_split_horizon() {
        let with = run_count_to_infinity(true);
        let without = run_count_to_infinity(false);
        let with_rounds = with.rounds_to_purge.expect("purges fast");
        assert!(with_rounds <= 3, "split horizon purges in {with_rounds} rounds");
        if let Some(rounds) = without.rounds_to_purge {
            // (None = never purged within the bound: the pathology in full.)
            assert!(rounds >= 5, "counting to infinity took only {rounds} rounds?");
        }
        assert!(without.entries_exchanged > with.entries_exchanged);
    }

    #[test]
    fn nagle_reduces_segments_for_paced_writes() {
        let writes: Vec<Vec<u8>> = (0..200).map(|_| vec![0u8; 8]).collect();
        let paced = ChannelParams {
            write_interval: Duration::from_millis(5),
            ..ChannelParams::default()
        };
        let on = run_tcp(paced, &writes, true, 536);
        let off = run_tcp(paced, &writes, false, 536);
        assert!(on.completed && off.completed, "on={on:?} off={off:?}");
        assert!(
            on.segs_sent * 3 < off.segs_sent,
            "nagle on {} vs off {}",
            on.segs_sent,
            off.segs_sent
        );
        assert!(on.wire_bytes < off.wire_bytes);
    }

    #[test]
    fn quench_reduces_queue_drops() {
        let on = run_quench(11, true);
        let off = run_quench(11, false);
        assert!(on.completed && off.completed);
        assert!(on.quenches > 0);
        assert_eq!(off.quenches, 0);
        assert!(
            on.queue_drops <= off.queue_drops,
            "quench on {} drops vs off {}",
            on.queue_drops,
            off.queue_drops
        );
    }
}
